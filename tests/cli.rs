//! End-to-end tests of the `spsep-cli` binary: build a graph file, run
//! every subcommand, check outputs and exit codes.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spsep-cli"))
}

fn write_demo_graph(dir: &std::path::Path) -> std::path::PathBuf {
    // A 4-cycle plus a chord, 1-based DIMACS.
    let path = dir.join("demo.gr");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "c tiny demo").unwrap();
    writeln!(f, "p sp 4 5").unwrap();
    writeln!(f, "a 1 2 1.0").unwrap();
    writeln!(f, "a 2 3 1.0").unwrap();
    writeln!(f, "a 3 4 1.0").unwrap();
    writeln!(f, "a 4 1 1.0").unwrap();
    writeln!(f, "a 1 3 5.0").unwrap();
    path
}

#[test]
fn info_and_sssp() {
    let dir = std::env::temp_dir().join("spsep-cli-test-1");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);

    let out = cli().arg("info").arg(&graph).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n = 4"));
    assert!(text.contains("E+"));

    let out = cli()
        .args(["sssp"])
        .arg(&graph)
        .args(["-s", "0", "--print-dists"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("4 reachable of 4"));
    // dist(0→2) = 2 via the cycle, beating the chord weight 5.
    assert!(text.lines().any(|l| l.trim() == "2 2"), "{text}");
}

#[test]
fn tree_roundtrip_through_cli() {
    let dir = std::env::temp_dir().join("spsep-cli-test-2");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let tree = dir.join("demo.st");

    let out = cli()
        .arg("tree")
        .arg(&graph)
        .arg("-o")
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(tree.exists());

    // Reuse the saved tree for a query with algorithm 4.4.
    let out = cli()
        .arg("sssp")
        .arg(&graph)
        .args(["-s", "1", "-a", "44", "-t"])
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 reachable"));
}

#[test]
fn reach_and_centroid_builder() {
    let dir = std::env::temp_dir().join("spsep-cli-test-3");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let out = cli()
        .arg("reach")
        .arg(&graph)
        .args(["-s", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 of 4"));

    // Centroid builder on a path-shaped graph.
    let path_graph = dir.join("path.gr");
    let mut f = std::fs::File::create(&path_graph).unwrap();
    writeln!(f, "p sp 5 8").unwrap();
    for v in 1..5 {
        writeln!(f, "a {} {} 1.0", v, v + 1).unwrap();
        writeln!(f, "a {} {} 1.0", v + 1, v).unwrap();
    }
    drop(f);
    let out = cli()
        .arg("info")
        .arg(&path_graph)
        .args(["-b", "centroid"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn observability_flags_produce_artifacts() {
    let dir = std::env::temp_dir().join("spsep-cli-test-5");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");

    let out = cli()
        .arg("sssp")
        .arg(&graph)
        .args(["-s", "0", "-a", "43", "--metrics", "--trace"])
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // --metrics: uniform report + ledger on stdout.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics: work="), "{text}");
    assert!(text.contains("work ledger (PathDoubling)"), "{text}");
    assert!(text.contains("augment work"), "{text}");
    assert!(!text.contains("OVER BUDGET"), "{text}");

    // --trace: human span tree on stderr.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("preprocess.augment"), "{err}");
    assert!(err.contains("alg43.round"), "{err}");

    // --metrics-out: spsep-metrics/v1 document.
    let mjson = std::fs::read_to_string(&metrics).unwrap();
    assert!(mjson.contains("\"schema\": \"spsep-metrics/v1\""), "{mjson}");
    assert!(mjson.contains("\"ledger\""), "{mjson}");
    assert!(mjson.contains("\"within\": true"), "{mjson}");

    // --trace-out: structurally valid Chrome trace-event JSON.
    let tjson = std::fs::read_to_string(&trace).unwrap();
    let events = spsep::trace::validate_chrome_json(&tjson)
        .unwrap_or_else(|e| panic!("invalid trace export: {e}\n{tjson}"));
    assert!(events >= 3, "expected preprocess spans, got {events}");
    assert!(tjson.contains("pool_stats"), "{tjson}");
}

#[test]
fn metrics_flag_is_uniform_across_subcommands() {
    let dir = std::env::temp_dir().join("spsep-cli-test-6");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let tree = dir.join("demo.st");
    for argv in [
        vec!["info"],
        vec!["tree"],
        vec!["sssp", "-s", "1"],
        vec!["reach", "-s", "0"],
    ] {
        let mut cmd = cli();
        cmd.arg(argv[0]).arg(&graph).args(&argv[1..]).arg("--metrics");
        if argv[0] == "tree" {
            cmd.arg("-o").arg(&tree);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}: {}",
            argv[0],
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains("metrics: work="),
            "`{}` lacks the metrics epilogue: {text}",
            argv[0]
        );
    }
}

#[test]
fn prepare_then_serve_roundtrip() {
    let dir = std::env::temp_dir().join("spsep-cli-test-7");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let snapshot = dir.join("demo.sps");
    let queries = dir.join("q.txt");
    let mut f = std::fs::File::create(&queries).unwrap();
    writeln!(f, "c demo query stream").unwrap();
    writeln!(f, "p 0 2").unwrap();
    writeln!(f, "p 1 3").unwrap();
    writeln!(f, "s 0").unwrap();
    writeln!(f, "p 0 2").unwrap();
    drop(f);

    let out = cli()
        .arg("prepare")
        .arg(&graph)
        .arg("-o")
        .arg(&snapshot)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("prepared oracle"), "{text}");
    // The default prepare format is the v2 mmap snapshot.
    assert!(text.contains("snapshot (v2):"), "{text}");
    assert!(snapshot.exists());

    // Serve, one query at a time: answers + latency + cache report.
    let out = cli()
        .arg("serve")
        .arg(&snapshot)
        .arg("--queries")
        .arg(&queries)
        .args(["--print-dists", "--metrics"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // dist(0→2) = 2 via the cycle, beating the chord weight 5.
    assert!(text.lines().any(|l| l.trim() == "p 0 2 2"), "{text}");
    assert!(text.contains("s 0 reachable=4"), "{text}");
    assert!(text.contains("4 queries (3 pairs, 1 sources)"), "{text}");
    assert!(text.contains("latency: p50"), "{text}");
    // The repeated `p 0 2` and the `s 0` hit the cached row of source 0.
    assert!(text.contains("hits = 2, misses = 2"), "{text}");
    // The uniform observability epilogue also covers serve.
    assert!(text.contains("metrics: work="), "{text}");

    // Batched mode answers identically.
    let out = cli()
        .arg("serve")
        .arg(&snapshot)
        .arg("--queries")
        .arg(&queries)
        .args(["--batch", "--print-dists"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().any(|l| l.trim() == "p 0 2 2"), "{text}");
    assert!(text.contains("batch: 3 pairs + 1 sources"), "{text}");
}

#[test]
fn serve_error_paths_are_messages_not_panics() {
    let dir = std::env::temp_dir().join("spsep-cli-test-8");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let snapshot = dir.join("demo.sps");
    let out = cli()
        .arg("prepare")
        .arg(&graph)
        .arg("-o")
        .arg(&snapshot)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // prepare without -o.
    let out = cli().arg("prepare").arg(&graph).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("-o <oracle.sps>"));

    // serve without --queries.
    let out = cli().arg("serve").arg(&snapshot).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--queries"));

    // A corrupted snapshot is a typed parse error, not a panic.
    let mut bytes = std::fs::read(&snapshot).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    let bad = dir.join("bad.sps");
    std::fs::write(&bad, &bytes).unwrap();
    let queries = dir.join("q.txt");
    std::fs::write(&queries, "p 0 1\n").unwrap();
    let out = cli()
        .arg("serve")
        .arg(&bad)
        .arg("--queries")
        .arg(&queries)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    // An out-of-range query in the stream is reported, not panicked on.
    std::fs::write(&queries, "p 0 99\n").unwrap();
    let out = cli()
        .arg("serve")
        .arg(&snapshot)
        .arg("--queries")
        .arg(&queries)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    // A malformed query record names its line.
    std::fs::write(&queries, "p 0 1\nx 2 3\n").unwrap();
    let out = cli()
        .arg("serve")
        .arg(&snapshot)
        .arg("--queries")
        .arg(&queries)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains(":2:"), "{err}");
}

#[test]
fn error_paths() {
    let out = cli().arg("info").arg("/nonexistent.gr").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    let dir = std::env::temp_dir().join("spsep-cli-test-4");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let out = cli()
        .arg("sssp")
        .arg(&graph)
        .args(["-s", "99"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    let out = cli().arg("bogus").arg(&graph).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn mkroad_regenerates_the_committed_instance_bit_exactly() {
    // data/README.md's provenance claim: the committed road instance is
    // a pure function of (w, h, seed), so regenerating it reproduces
    // the checked-in bytes exactly — nobody edited the file by hand.
    let dir = std::env::temp_dir().join("spsep-cli-test-mkroad");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("regen.gr");
    let out = Command::new(env!("CARGO_BIN_EXE_spsep-mkroad"))
        .args(["160", "150", "20260808"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/data/road-160x150.gr");
    let want = std::fs::read(committed).unwrap();
    let got = std::fs::read(&out_path).unwrap();
    assert_eq!(
        got.len(),
        want.len(),
        "regenerated instance differs in size from data/road-160x150.gr"
    );
    assert!(got == want, "regenerated instance differs from data/road-160x150.gr");
}

#[test]
fn committed_road_instance_parses_and_certifies_near_planar() {
    // Importer smoke on the real committed instance (CI runs this):
    // the file parses through the hardened DIMACS reader, is strongly
    // connected (largest-SCC extraction keeps everything), and the
    // near-planar certificate that drives `-b auto` holds.
    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/data/road-160x150.gr");
    let g = spsep::graph::io::read_dimacs(std::fs::File::open(committed).map(std::io::BufReader::new).unwrap())
        .unwrap();
    assert_eq!((g.n(), g.m()), (24_000, 142_762));
    let (_, report) = spsep::graph::import::import(&g, Default::default()).unwrap();
    assert_eq!(report.scc_count, 1, "road instance must be strongly connected");
    assert_eq!(report.nodes_kept, g.n());
    let check = spsep::separator::certify_near_planar(&g.undirected_skeleton());
    assert!(check.near_planar, "{check:?}");
}

#[test]
fn import_subcommand_ingests_csv_and_writes_canonical_gr() {
    let dir = std::env::temp_dir().join("spsep-cli-test-import");
    std::fs::create_dir_all(&dir).unwrap();
    // A 3-cycle plus a dangling sink vertex: largest-SCC extraction
    // must drop vertex 3 and renumber, and the report must say so.
    let csv = dir.join("edges.csv");
    std::fs::write(&csv, "from,to,weight\n0,1,1.5\n1,2,2.25\n2,0,0.5\n2,3,9.0\n").unwrap();
    let gr = dir.join("edges.gr");
    let out = cli().arg("import").arg(&csv).arg("-o").arg(&gr).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n = 4"), "{text}");
    assert!(text.contains("dropped 1 vert"), "{text}");
    let g = spsep::graph::io::read_dimacs(std::fs::read(&gr).unwrap().as_slice()).unwrap();
    assert_eq!((g.n(), g.m()), (3, 3));

    // The emitted .gr is canonical: importing it again is a fixed point.
    let gr2 = dir.join("edges2.gr");
    let out = cli().arg("import").arg(&gr).arg("-o").arg(&gr2).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::read(&gr).unwrap(), std::fs::read(&gr2).unwrap());

    // Malformed input: typed line-numbered error on stderr, no panic.
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "from,to,weight\n0,1,NaN\n").unwrap();
    let out = cli().arg("import").arg(&bad).arg("-o").arg(dir.join("bad.gr")).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn daemon_serves_load_and_exits_zero_on_shutdown() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = std::env::temp_dir().join("spsep-cli-test-9");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_demo_graph(&dir);
    let snapshot = dir.join("demo.sps");
    let out = cli()
        .arg("prepare")
        .arg(&graph)
        .arg("-o")
        .arg(&snapshot)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Start the daemon on an ephemeral port; its first stdout line
    // announces the resolved address (stdout is line-buffered).
    let mut daemon = cli()
        .arg("serve")
        .arg(&snapshot)
        .args(["--listen", "127.0.0.1:0", "--workers", "2", "--queue-depth", "16"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(daemon.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    // Chaos load with bit-identity verification against the snapshot,
    // the spsep-serve-bench/v1 artifact, and a final shutdown request.
    let report_path = dir.join("load.json");
    let out = cli()
        .arg("load")
        .arg(&addr)
        .args(["--rate", "400", "--duration", "1", "--conns", "2"])
        .args(["--chaos", "0.1", "--seed", "7", "--zipf", "0.5"])
        .arg("--verify")
        .arg(&snapshot)
        .arg("--load-out")
        .arg(&report_path)
        .arg("--shutdown")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "load failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("load: scheduled = 400"), "{text}");
    assert!(text.contains("latency (open-loop"), "{text}");
    assert!(text.contains("daemon acknowledged shutdown"), "{text}");

    // The written report is a valid single-entry artifact.
    let json = std::fs::read_to_string(&report_path).unwrap();
    assert_eq!(
        spsep_bench::serve::validate_serve_json(&json),
        Ok(1),
        "{json}"
    );

    // The daemon drains and exits 0, with the final stats separating
    // queue-wait from service time.
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exited {status:?}");
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let tail = rest.join("\n");
    assert!(tail.contains("shutdown: drained"), "{tail}");
    assert!(tail.contains("queue-wait p50"), "{tail}");
    assert!(tail.contains("service p50"), "{tail}");
    assert!(tail.contains("cache shards:"), "{tail}");
}

#[test]
fn load_error_paths_are_messages_not_panics() {
    // No daemon at this address: a connect error, not a panic.
    let out = cli()
        .arg("load")
        .arg("127.0.0.1:1")
        .args(["--duration", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    // Malformed --mix is a usage error.
    let out = cli()
        .arg("load")
        .arg("127.0.0.1:1")
        .args(["--mix", "1:2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--mix"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
