//! End-to-end `spsep-oracle/v2` serving: `spsep-cli prepare --format v2`
//! produces one slab snapshot, TWO independent `spsep-cli serve`
//! daemons mmap that same file concurrently, and both must answer an
//! identical query stream bit-for-bit — matching each other *and* an
//! in-process oracle loaded from the legacy v1 snapshot of the same
//! instance. This is the operational payoff of the v2 format: many
//! server processes sharing one physical copy of the oracle through
//! the page cache, with zero answer drift across format or process
//! boundaries. A chaos load run (`spsep-cli load --verify`) then
//! hammers one of the daemons and must report zero mismatches.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use spsep::core::Oracle;
use spsep::pram::Metrics;
use spsep::serve::{Client, Request, Response};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spsep-cli"))
}

/// A grid big enough that distance tables exercise real scheduling,
/// written as 1-based DIMACS the way `spsep-cli` reads it.
fn write_grid_graph(dir: &std::path::Path) -> (std::path::PathBuf, usize) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(42);
    let (g, _) = spsep::graph::generators::grid(&[12, 12], &mut rng);
    let path = dir.join("grid.gr");
    let mut buf = Vec::new();
    spsep::graph::io::write_dimacs(&g, &mut buf).unwrap();
    std::fs::File::create(&path)
        .unwrap()
        .write_all(&buf)
        .unwrap();
    (path, g.n())
}

/// Spawn `spsep-cli serve --listen 127.0.0.1:0` on `snapshot` and wait
/// for its address announcement. The stdout reader is returned too:
/// dropping it would close the pipe and SIGPIPE the daemon when it
/// prints its shutdown epilogue.
fn spawn_daemon(
    snapshot: &std::path::Path,
) -> (Child, String, std::io::Lines<BufReader<std::process::ChildStdout>>) {
    let mut daemon = cli()
        .arg("serve")
        .arg(snapshot)
        .args(["--listen", "127.0.0.1:0", "--workers", "2", "--queue-depth", "16"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(daemon.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    (daemon, addr, lines)
}

/// The deterministic mixed query stream both daemons are driven with.
fn query_stream(n: usize) -> Vec<Request> {
    let mut reqs = vec![Request::Ping, Request::Info];
    for s in [0, n / 3, n / 2, n - 1] {
        reqs.push(Request::Source { source: s as u64 });
    }
    for i in 0..16u64 {
        // A simple deterministic spread of (source, target) pairs.
        let s = (i * 37) % n as u64;
        let t = (i * 61 + 5) % n as u64;
        reqs.push(Request::Point { source: s, target: t });
    }
    reqs.push(Request::Batch {
        pairs: (0..8u64).map(|i| (i % n as u64, (i * 13 + 1) % n as u64)).collect(),
    });
    reqs
}

/// Bitwise equality for responses carrying floats (`==` on f64 would
/// conflate distinct NaN payloads and is not the contract under test).
fn bits(resp: &Response) -> Vec<u64> {
    match resp {
        Response::Pong => vec![u64::MAX],
        Response::Info { n, m, eplus, algo } => vec![*n, *m, *eplus, *algo as u64],
        Response::Dist(d) => vec![d.to_bits()],
        Response::Table(t) | Response::Batch(t) => t.iter().map(|d| d.to_bits()).collect(),
        other => panic!("unexpected response in the stream: {other:?}"),
    }
}

#[test]
fn two_daemons_on_one_v2_snapshot_answer_bit_identically() {
    let dir = std::env::temp_dir().join("spsep-daemon-v2-test-1");
    std::fs::create_dir_all(&dir).unwrap();
    let (graph, n) = write_grid_graph(&dir);

    // One instance, both snapshot formats.
    let v1 = dir.join("grid.v1.sps");
    let v2 = dir.join("grid.v2.sps");
    for (path, format) in [(&v1, "v1"), (&v2, "v2")] {
        let out = cli()
            .arg("prepare")
            .arg(&graph)
            .arg("-o")
            .arg(path)
            .args(["--format", format])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }

    // Two independent daemon processes mmap the SAME v2 file.
    let (mut daemon_a, addr_a, out_a) = spawn_daemon(&v2);
    let (mut daemon_b, addr_b, out_b) = spawn_daemon(&v2);

    // The cross-format truth: an in-process oracle decoded from v1.
    let truth = Oracle::load_path(&v1).unwrap();
    assert!(!truth.is_slab_backed(), "v1 loads by decoding, not mapping");
    let metrics = Metrics::new();

    let timeout = Duration::from_secs(30);
    let mut client_a = Client::connect(addr_a.as_str(), timeout).unwrap();
    let mut client_b = Client::connect(addr_b.as_str(), timeout).unwrap();

    for req in query_stream(n) {
        let ra = client_a.request(&req).unwrap();
        let rb = client_b.request(&req).unwrap();
        assert_eq!(
            bits(&ra),
            bits(&rb),
            "daemons on the same v2 file diverged on {req:?}"
        );
        // Spot-check the daemons against the v1-decoded oracle too:
        // format must not change a single bit of any answer.
        if let Request::Source { source } = req {
            let want = truth.source_table(source as usize, &metrics).unwrap();
            let got = bits(&ra);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(*g, w.to_bits(), "v2-served table diverged from v1 oracle");
            }
        }
    }

    // Clean shutdown of both daemons through the protocol.
    for client in [&mut client_a, &mut client_b] {
        match client.request(&Request::Shutdown).unwrap() {
            Response::ShutdownAck => {}
            other => panic!("expected ShutdownAck, got {other:?}"),
        }
    }
    for (daemon, out) in [(&mut daemon_a, out_a), (&mut daemon_b, out_b)] {
        let tail: Vec<String> = out.map(|l| l.unwrap()).collect();
        assert!(daemon.wait().unwrap().success(), "{}", tail.join("\n"));
        assert!(tail.iter().any(|l| l.contains("shutdown: drained")));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_load_against_a_v2_daemon_has_zero_mismatches() {
    let dir = std::env::temp_dir().join("spsep-daemon-v2-test-2");
    std::fs::create_dir_all(&dir).unwrap();
    let (graph, _n) = write_grid_graph(&dir);

    let v2 = dir.join("grid.v2.sps");
    let out = cli()
        .arg("prepare")
        .arg(&graph)
        .arg("-o")
        .arg(&v2)
        .args(["--format", "v2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let (mut daemon, addr, daemon_out) = spawn_daemon(&v2);

    // The load harness verifies every data answer bit-for-bit against
    // its own copy of the snapshot (which it mmaps too — the `--verify`
    // path goes through the same `Oracle::load_path`). Any mismatch or
    // unhandled chaos injection makes `load` exit nonzero.
    let out = cli()
        .arg("load")
        .arg(&addr)
        .args(["--rate", "400", "--duration", "1", "--conns", "2"])
        .args(["--chaos", "0.1", "--seed", "20", "--zipf", "0.5"])
        .arg("--verify")
        .arg(&v2)
        .arg("--shutdown")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos load failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("load: scheduled = 400"), "{text}");
    assert!(text.contains("daemon acknowledged shutdown"), "{text}");

    let tail: Vec<String> = daemon_out.map(|l| l.unwrap()).collect();
    assert!(daemon.wait().unwrap().success(), "{}", tail.join("\n"));
    let _ = std::fs::remove_dir_all(&dir);
}
