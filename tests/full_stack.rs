//! One end-to-end flow through every major feature, the way a power user
//! would chain them: generate → decompose → persist tree → reload →
//! preprocess (all three algorithms) → persist E⁺ → reload → query
//! (single / multi / init / pairs) → SP tree → explain → verify
//! everything against baselines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep::baselines;
use spsep::core::{explain, io as core_io, preprocess, query, Algorithm, Preprocessed};
use spsep::graph::semiring::Tropical;
use spsep::graph::{generators, io as graph_io};
use spsep::pram::Metrics;
use spsep::separator::{builders, io as tree_io, RecursionLimits};

#[test]
fn the_whole_stack() {
    let mut rng = StdRng::seed_from_u64(777);
    let dims = [14usize, 13];
    let (g, _) = generators::grid(&dims, &mut rng);
    let g = generators::skew_by_potentials(&g, 2.0, &mut rng);
    let n = g.n();

    // Graph I/O round-trip.
    let mut gbuf = Vec::new();
    graph_io::write_dimacs(&g, &mut gbuf).unwrap();
    let g = graph_io::read_dimacs(gbuf.as_slice()).unwrap();

    // Decomposition + persistence round-trip.
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    let mut tbuf = Vec::new();
    tree_io::write_tree(&tree, &mut tbuf).unwrap();
    let tree = tree_io::read_tree(tbuf.as_slice()).unwrap();
    tree.validate(&g.undirected_skeleton()).unwrap();

    // All three construction algorithms agree with the baseline.
    let truth = baselines::bellman_ford(&g, 7).unwrap();
    let mut first: Option<Preprocessed<Tropical>> = None;
    for algo in [
        Algorithm::LeavesUp,
        Algorithm::PathDoubling,
        Algorithm::SharedDoubling,
    ] {
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics).unwrap();
        let (dist, _) = pre.distances_seq(7);
        for (v, &d) in dist.iter().enumerate().take(n) {
            if truth.dist[v].is_finite() {
                assert!((d - truth.dist[v]).abs() < 1e-6, "{algo:?} vertex {v}");
            } else {
                assert!(d.is_infinite());
            }
        }
        if first.is_none() {
            first = Some(pre);
        }
    }
    let pre = first.unwrap();

    // E⁺ persistence round-trip, then identical queries.
    let aug = spsep::core::Augmentation {
        eplus: pre.eplus().to_vec(),
        stats: pre.stats(),
    };
    let mut ebuf = Vec::new();
    core_io::write_augmentation(n, &aug, &mut ebuf).unwrap();
    let (n2, aug2) = core_io::read_augmentation(ebuf.as_slice()).unwrap();
    assert_eq!(n2, n);
    let pre2 = Preprocessed::compile(&g, &tree, aug2);
    assert_eq!(pre.distances_seq(7).0, pre2.distances_seq(7).0);

    // Query surface: multi, init, pairs, explicit path, explanation.
    let rows = pre.distances_multi(&[0, 7, n - 1]);
    assert_eq!(rows[1], pre.distances_seq(7).0);

    let mut init = vec![f64::INFINITY; n];
    init[0] = 0.0;
    init[n - 1] = 0.0;
    let (multi, _) = pre.distances_from_init(init);
    for v in 0..n {
        let expect = rows[0][v].min(rows[2][v]);
        if expect.is_finite() {
            assert!((multi[v] - expect).abs() < 1e-6);
        }
    }

    let pairs = [(7usize, 0usize), (7, n - 1), (0, 7)];
    let pw = pre.distances_pairs(&pairs);
    assert!((pw[0] - rows[1][0]).abs() < 1e-6);
    assert!((pw[1] - rows[1][n - 1]).abs() < 1e-6);

    let (w, path) = pre.shortest_path(&g, 7, n - 1).unwrap();
    assert!((w - rows[1][n - 1]).abs() < 1e-6);
    assert_eq!(path[0], 7);

    let sp_tree = query::shortest_path_tree::<Tropical>(&g, 7, &rows[1]);
    let tree_path = query::path_from_tree(&g, &sp_tree, 7, n - 1).unwrap();
    assert_eq!(tree_path[0], 7);

    let exp = explain::explain(&pre, 7, n - 1).unwrap();
    assert!((exp.weight - rows[1][n - 1]).abs() < 1e-9 * (1.0 + exp.weight.abs()));
    assert!(exp.hops.len() <= exp.size_bound);
}
