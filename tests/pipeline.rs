//! Cross-crate integration tests exercising the facade exactly the way a
//! downstream user would: generators → separator builders → core
//! preprocessing → queries → baselines cross-checks, plus the planar and
//! TVPI pipelines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep::baselines;
use spsep::core::{analysis, preprocess, query, reach, Algorithm};
use spsep::graph::semiring::{Boolean, Tropical};
use spsep::graph::{generators, DiGraph};
use spsep::planar;
use spsep::pram::Metrics;
use spsep::separator::{builders, RecursionLimits};
use spsep::tvpi;

/// The quickstart flow, condensed: grid → tree → E⁺ → queries → paths.
#[test]
fn facade_quickstart_flow() {
    let mut rng = StdRng::seed_from_u64(1);
    let dims = [20usize, 20];
    let (g, _) = generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let (dist, _) = pre.distances_seq(0);
    let truth = baselines::dijkstra(&g, 0);
    for (v, &d) in dist.iter().enumerate() {
        assert!((d - truth.dist[v]).abs() < 1e-6);
    }
    let parent = query::shortest_path_tree::<Tropical>(&g, 0, &dist);
    let path = query::path_from_tree(&g, &parent, 0, g.n() - 1).unwrap();
    assert_eq!(path[0], 0);
    assert_eq!(*path.last().unwrap(), g.n() as u32 - 1);
}

/// Serialization round-trip feeding the pipeline: write a graph to
/// DIMACS, read it back, get identical distances.
#[test]
fn io_roundtrip_preserves_distances() {
    let mut rng = StdRng::seed_from_u64(2);
    let (g, _) = generators::grid(&[8, 9], &mut rng);
    let mut buf = Vec::new();
    spsep::graph::io::write_dimacs(&g, &mut buf).unwrap();
    let g2 = spsep::graph::io::read_dimacs(buf.as_slice()).unwrap();
    let tree = builders::bfs_tree(&g2.undirected_skeleton(), RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g2, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let (dist, _) = pre.distances_seq(3);
    let truth = baselines::dijkstra(&g, 3);
    for (v, &d) in dist.iter().enumerate() {
        assert!((d - truth.dist[v]).abs() < 1e-6);
    }
}

/// One decomposition reused across weightings and orientations — paper
/// comment (iv): the tree depends only on the undirected skeleton.
#[test]
fn one_tree_many_weightings() {
    let mut rng = StdRng::seed_from_u64(3);
    let dims = [12usize, 12];
    let (g1, _) = generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    // Re-weight (same skeleton) and re-orient one direction away.
    let g2 = generators::skew_by_potentials(&g1, 4.0, &mut rng);
    let g3 = DiGraph::from_edges(
        g1.n(),
        g1.edges().iter().filter(|e| e.from < e.to).copied().collect(),
    );
    let metrics = Metrics::new();
    for g in [&g1, &g2, &g3] {
        let pre = preprocess::<Tropical>(g, &tree, Algorithm::PathDoubling, &metrics).unwrap();
        let (dist, _) = pre.distances_seq(0);
        let truth = baselines::bellman_ford(g, 0).unwrap();
        for (v, &d) in dist.iter().enumerate() {
            if truth.dist[v].is_finite() {
                assert!((d - truth.dist[v]).abs() < 1e-6);
            } else {
                assert!(d.is_infinite());
            }
        }
    }
}

/// Theorem 3.1 across the facade: augmented diameter within the bound on
/// a geometric instance.
#[test]
fn diameter_bound_on_geometric_graph() {
    let mut rng = StdRng::seed_from_u64(4);
    let (g, coords) = generators::geometric(400, 2, 0.1, &mut rng);
    let adj = g.undirected_skeleton();
    let tree = builders::geometric_tree(&adj, &coords, RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let stats = pre.stats();
    let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
    let diam = analysis::min_weight_diameter::<Tropical>(g.n(), pre.augmented_edges()).unwrap();
    assert!(diam <= bound, "{diam} > {bound}");
}

/// Boolean facade: reachability over a random DAG equals the dense
/// closure row by row.
#[test]
fn reachability_pipeline_matches_dense_closure() {
    let mut rng = StdRng::seed_from_u64(5);
    let dag = generators::layered_dag(8, 12, 2, &mut rng);
    let g = dag.map_weights(|_| true);
    let tree = builders::bfs_tree(&g.undirected_skeleton(), RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = reach::preprocess_reach(&g, &tree, &metrics);
    let closure = baselines::transitive_closure_dense(&g);
    for s in [0usize, 13, 50, 95] {
        let row = pre.distances_seq(s).0;
        for (v, &got) in row.iter().enumerate() {
            let expect = closure.get(s, v);
            assert_eq!(got, expect, "({s},{v})");
        }
    }
    // Generic Boolean semiring agrees too.
    let gen = preprocess::<Boolean>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    assert_eq!(gen.distances_seq(0).0, pre.distances_seq(0).0);
}

/// Planar (Section 6) + TVPI pipelines through the facade.
#[test]
fn planar_and_tvpi_facades() {
    let mut rng = StdRng::seed_from_u64(6);
    let hg = planar::generate_hammock_graph(3, 3, &mut rng);
    let metrics = Metrics::new();
    let sp = planar::HammockSP::preprocess(&hg, &metrics);
    let got = sp.distances(0);
    let want = baselines::dijkstra(&hg.graph, 0).dist;
    for v in 0..hg.graph.n() {
        assert!((got[v] - want[v]).abs() < 1e-6);
    }

    let sys = tvpi::grid_schedule_system(6, 6, 2.0, 1.0, &mut rng);
    match sys.solve(&metrics) {
        tvpi::Solution::Feasible(x) => sys.check(&x, 1e-9).unwrap(),
        tvpi::Solution::Infeasible => panic!("feasible by construction"),
    }
}

/// Negative cycles are reported, not silently mis-solved, across entry
/// points.
#[test]
fn negative_cycle_surfaces_everywhere() {
    let mut rng = StdRng::seed_from_u64(7);
    let (g, _) = generators::grid(&[6, 6], &mut rng);
    let g = g.map_weights(|e| if e.from == 0 || e.to == 0 { -9.0 } else { e.w });
    let tree = builders::grid_tree(&[6, 6], RecursionLimits::default());
    let metrics = Metrics::new();
    assert!(preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).is_err());
    assert!(preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics).is_err());
    assert!(baselines::bellman_ford(&g, 0).is_err());
    assert!(baselines::johnson(&g, &[0]).is_err());
}

/// The PRAM metrics reported by a full run are internally consistent.
#[test]
fn metrics_are_consistent() {
    let mut rng = StdRng::seed_from_u64(8);
    let (g, _) = generators::grid(&[16, 16], &mut rng);
    let tree = builders::grid_tree(&[16, 16], RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let report = metrics.report();
    assert_eq!(report.total_work(), metrics.total_work());
    assert!(report.floyd_warshall > 0, "leaf/H_S FW must be charged");
    assert!(report.limited > 0, "3-limited products must be charged");
    assert!(report.phases as usize >= tree.height() as usize);
    // Query charges relaxations.
    let qm = Metrics::new();
    let _ = pre.distances(0, &qm);
    assert!(qm.work_of(spsep::pram::Counter::Relaxation) > 0);
    assert!(qm.phases() > 0);
}
