//! Markdown link check over the repo's documentation set: every
//! relative link in the orientation docs must point at a file that
//! exists (CI runs this, so a renamed file cannot silently orphan the
//! handbook or the experiment index).

use std::path::{Path, PathBuf};

const DOCS: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/HANDBOOK.md",
    "data/README.md",
];

/// Extract `(link text, target)` pairs from inline markdown links,
/// skipping fenced code blocks (``` … ```) where `[x](y)` is code.
fn links(markdown: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(open) = line[i..].find('[') {
            let open = i + open;
            // Skip image links' leading '!' handling: same target rules.
            let Some(close) = line[open..].find("](") else { break };
            let close = open + close;
            let target_start = close + 2;
            let Some(end) = line[target_start..].find(')') else { break };
            let end = target_start + end;
            // Reference-style checklists like "[ ]" have no "](", so we
            // only land here for real inline links.
            if bytes[open..close].contains(&b'\n') {
                break;
            }
            out.push((
                line[open + 1..close].to_string(),
                line[target_start..end].to_string(),
            ));
            i = end + 1;
        }
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for doc in DOCS {
        let doc_path = root.join(doc);
        let text = std::fs::read_to_string(&doc_path)
            .unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        let base = doc_path.parent().unwrap().to_path_buf();
        for (label, target) in links(&text) {
            // External and in-page links are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.starts_with("mailto:")
            {
                continue;
            }
            // Strip a trailing anchor: FILE.md#section → FILE.md.
            let file_part = target.split('#').next().unwrap();
            if file_part.is_empty() {
                continue;
            }
            let resolved: PathBuf = base.join(file_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!("{doc}: [{label}]({target}) → {}", resolved.display()));
            }
        }
    }
    assert!(
        checked >= 10,
        "only {checked} relative links found — the extractor is probably broken"
    );
    assert!(broken.is_empty(), "broken doc links:\n{}", broken.join("\n"));
}

#[test]
fn orientation_docs_cross_link_the_handbook() {
    // The handbook is only useful if people can find it: README and
    // ARCHITECTURE must link it, and it must link back to data/README.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for doc in ["README.md", "ARCHITECTURE.md"] {
        let text = std::fs::read_to_string(root.join(doc)).unwrap();
        assert!(
            text.contains("docs/HANDBOOK.md"),
            "{doc} does not link docs/HANDBOOK.md"
        );
    }
    let handbook = std::fs::read_to_string(root.join("docs/HANDBOOK.md")).unwrap();
    assert!(handbook.contains("data/README.md"));
}
