//! Regenerate the committed road-network instance under `data/`.
//!
//! ```text
//! spsep-mkroad [<w> <h> <seed> <out.gr>]
//! ```
//!
//! With no arguments, writes the canonical committed instance
//! (`data/road-160x150.gr`, seed 20260808). The instance is a pure
//! function of `(w, h, seed)` — see `spsep_separator::road_network` —
//! so this binary is the provenance proof for the checked-in file:
//! regenerate and `diff` to verify nobody edited it by hand (CI does).

use spsep_graph::io::write_dimacs;
use spsep_separator::road_network;
use std::io::Write as _;

/// The canonical committed instance: 160×150 lattice, 24 000 nodes.
pub const CANONICAL: (usize, usize, u64, &str) = (160, 150, 20260808, "data/road-160x150.gr");

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (w, h, seed, out) = match args.len() {
        0 => {
            let (w, h, seed, out) = CANONICAL;
            (w, h, seed, out.to_string())
        }
        4 => {
            let parse = |s: &str, what: &str| -> usize {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("spsep-mkroad: bad {what} '{s}'");
                    std::process::exit(2);
                })
            };
            (
                parse(&args[0], "width"),
                parse(&args[1], "height"),
                parse(&args[2], "seed") as u64,
                args[3].clone(),
            )
        }
        _ => {
            eprintln!("usage: spsep-mkroad [<w> <h> <seed> <out.gr>]");
            std::process::exit(2);
        }
    };
    let (g, _, tri) = road_network(w, h, seed);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("spsep-mkroad: mkdir {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    let file = match std::fs::File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spsep-mkroad: create {out}: {e}");
            std::process::exit(1);
        }
    };
    let mut buf = std::io::BufWriter::new(file);
    // A comment header makes the file self-describing; read_dimacs
    // skips `c` lines, so the body stays canonical.
    let header = format!(
        "c spsep road-network instance: {w}x{h} jittered triangulated lattice\n\
         c generator: spsep-mkroad {w} {h} {seed} (pure function of these args)\n\
         c weights: travel time, arterial grid every 8th line, 0.1 granularity\n\
         c faces: {} (planar by construction)\n",
        tri.faces.len()
    );
    let write = buf
        .write_all(header.as_bytes())
        .and_then(|()| write_dimacs(&g, &mut buf))
        .and_then(|()| buf.flush());
    if let Err(e) = write {
        eprintln!("spsep-mkroad: write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {out}: n={} m={} faces={} (seed {seed})",
        g.n(),
        g.m(),
        tri.faces.len()
    );
}
