//! `spsep-cli` — command-line front end for the separator shortest-path
//! library.
//!
//! ```text
//! spsep-cli info  <graph.gr>                          graph + decomposition stats
//! spsep-cli tree  <graph.gr> -o <tree.st>             build and save a decomposition
//! spsep-cli sssp  <graph.gr> -s <src> [...]           single-source distances
//! spsep-cli reach <graph.gr> -s <src>                 reachable vertex count
//! ```
//!
//! Common flags (all subcommands):
//!   -t <tree.st>       reuse a saved decomposition (paper comment (iv))
//!   -a 41|43|44        E⁺ construction (default 41 = leaves-up)
//!   -b bfs|centroid    decomposition builder (default bfs; centroid
//!                      for tree-shaped graphs)
//!   --print-dists      dump every distance (default: summary only)
//!   --metrics          print the PRAM work/depth report and, where a
//!                      preprocessing ran, the Theorem 4.1/5.1 work
//!                      ledger (predicted-vs-measured ratios)
//!   --metrics-out <f>  write the same report as JSON (spsep-metrics/v1)
//!   --trace            print the hierarchical span tree to stderr
//!   --trace-out <f>    write a Chrome trace-event JSON (load in
//!                      Perfetto / chrome://tracing), including executor
//!                      pool telemetry
//!
//! Graphs are DIMACS `sp` files (`p sp n m` + `a u v w`, 1-based).

use spsep::core::analysis::{work_ledger, WorkLedger};
use spsep::core::{preprocess, Algorithm};
use spsep::graph::semiring::Tropical;
use spsep::graph::DiGraph;
use spsep::pram::{Metrics, Report};
use spsep::separator::{builders, RecursionLimits, SepTree};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

struct Args {
    command: String,
    graph_path: String,
    source: usize,
    algo: Algorithm,
    builder: String,
    tree_in: Option<String>,
    tree_out: Option<String>,
    print_dists: bool,
    metrics: bool,
    metrics_out: Option<String>,
    trace: bool,
    trace_out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: spsep-cli <info|tree|sssp|reach> <graph.gr> \
         [-s source] [-a 41|43|44] [-t tree.st] [-o tree.st] [--print-dists]\n\
         \x20       [--metrics] [--metrics-out m.json] [--trace] [--trace-out t.json]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let graph_path = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        graph_path,
        source: 0,
        algo: Algorithm::LeavesUp,
        builder: "bfs".into(),
        tree_in: None,
        tree_out: None,
        print_dists: false,
        metrics: false,
        metrics_out: None,
        trace: false,
        trace_out: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "-s" => {
                args.source = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?
            }
            "-a" => {
                args.algo = match argv.next().as_deref() {
                    Some("41") => Algorithm::LeavesUp,
                    Some("43") => Algorithm::PathDoubling,
                    Some("44") => Algorithm::SharedDoubling,
                    _ => return Err(usage()),
                }
            }
            "-b" => args.builder = argv.next().ok_or_else(usage)?,
            "-t" => args.tree_in = Some(argv.next().ok_or_else(usage)?),
            "-o" => args.tree_out = Some(argv.next().ok_or_else(usage)?),
            "--print-dists" => args.print_dists = true,
            "--metrics" => args.metrics = true,
            "--metrics-out" => args.metrics_out = Some(argv.next().ok_or_else(usage)?),
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(argv.next().ok_or_else(usage)?),
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn load_graph(path: &str) -> Result<DiGraph<f64>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    spsep::graph::io::read_dimacs(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn obtain_tree(g: &DiGraph<f64>, args: &Args) -> Result<SepTree, String> {
    let tree = match &args.tree_in {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let tree = spsep::separator::io::read_tree(BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            if tree.n() != g.n() {
                return Err(format!(
                    "tree is over {} vertices but the graph has {}",
                    tree.n(),
                    g.n()
                ));
            }
            tree
        }
        None => {
            let adj = g.undirected_skeleton();
            match args.builder.as_str() {
                "bfs" => builders::bfs_tree(&adj, RecursionLimits::default()),
                "centroid" => builders::centroid_tree(&adj, RecursionLimits::default()),
                other => return Err(format!("unknown builder '{other}' (bfs|centroid)")),
            }
        }
    };
    tree.validate(&g.undirected_skeleton())
        .map_err(|e| format!("invalid decomposition: {e}"))?;
    if let Some(path) = &args.tree_out {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        spsep::separator::io::write_tree(&tree, &mut BufWriter::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote decomposition to {path}");
    }
    Ok(tree)
}

/// Append one JSON string value (with escapes) to `out`.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the `spsep-metrics/v1` JSON document: the PRAM report plus the
/// work-ledger entries (empty array when the command ran no augmentation).
fn metrics_json(command: &str, report: &Report, ledger: Option<&WorkLedger>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"spsep-metrics/v1\",\n  \"command\": ");
    json_str(&mut out, command);
    write!(
        out,
        ",\n  \"work\": {{\n    \"relaxation\": {},\n    \"floyd_warshall\": {},\n    \
         \"doubling\": {},\n    \"limited\": {},\n    \"matmul\": {},\n    \
         \"dijkstra\": {},\n    \"other\": {},\n    \"total\": {}\n  }},\n  \
         \"depth\": {},\n  \"phases\": {},\n  \"ledger\": [",
        report.relaxation,
        report.floyd_warshall,
        report.doubling,
        report.limited,
        report.matmul,
        report.dijkstra,
        report.other,
        report.total_work(),
        report.depth,
        report.phases,
    )
    .unwrap();
    if let Some(ledger) = ledger {
        for (i, e) in ledger.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"label\": ");
            json_str(&mut out, &e.label);
            write!(
                out,
                ", \"measured\": {}, \"predicted\": {}, \"ratio\": {:.6}, \"within\": {}}}",
                e.measured, e.predicted, e.ratio, e.within
            )
            .unwrap();
        }
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The uniform observability epilogue, shared by every subcommand: the
/// `--metrics` report + ledger on stdout, the `--metrics-out` JSON, the
/// `--trace` span tree on stderr, and the `--trace-out` Chrome export
/// joined with the executor pool telemetry.
fn epilogue(args: &Args, metrics: &Metrics, ledger: Option<&WorkLedger>) -> Result<(), String> {
    let report = metrics.report();
    if args.metrics {
        println!("metrics: {report}");
        if let Some(ledger) = ledger {
            print!("{ledger}");
        }
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics_json(&args.command, &report, ledger))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    if args.trace || args.trace_out.is_some() {
        let events = spsep::trace::drain();
        if args.trace {
            eprint!("{}", spsep::trace::render_tree(&events));
        }
        if let Some(path) = &args.trace_out {
            let stats = rayon::pool_stats();
            let pool = spsep::trace::PoolMeta {
                workers: stats
                    .workers
                    .iter()
                    .map(|w| spsep::trace::WorkerMeta {
                        name: w.name.clone(),
                        busy_ns: w.busy_ns,
                        tasks: w.tasks,
                    })
                    .collect(),
                steal_backs: stats.steal_backs,
                reclaimed_handles: stats.reclaimed_handles,
                max_queue_depth: stats.max_queue_depth,
            };
            let json = spsep::trace::chrome_trace_json(&events, Some(&pool));
            spsep::trace::validate_chrome_json(&json)
                .map_err(|e| format!("internal error: invalid trace export: {e}"))?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote trace to {path}");
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => {
            std::process::exit(if code == ExitCode::SUCCESS { 0 } else { 2 });
        }
    };
    if args.trace || args.trace_out.is_some() {
        spsep::trace::enable();
    }
    let g = load_graph(&args.graph_path)?;
    let metrics = Metrics::new();
    let mut ledger: Option<WorkLedger> = None;
    match args.command.as_str() {
        "info" => {
            let tree = obtain_tree(&g, &args)?;
            println!("graph: n = {}, m = {}", g.n(), g.m());
            println!(
                "tree : {} nodes, height {}, max leaf {}, Σ|S| = {}, root |S| = {}",
                tree.nodes().len(),
                tree.height(),
                tree.max_leaf_size(),
                tree.total_separator_size(),
                tree.node(0).separator.len()
            );
            let pre = preprocess::<Tropical>(&g, &tree, args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            println!(
                "E+   : {} shortcut edges; preprocessing {}",
                pre.stats().eplus_edges,
                metrics.report()
            );
            ledger = Some(work_ledger(&tree, args.algo, &metrics.report(), None));
        }
        "tree" => {
            if args.tree_out.is_none() {
                return Err("tree command needs -o <out.st>".into());
            }
            let tree = obtain_tree(&g, &args)?;
            println!(
                "built decomposition: {} nodes, height {}",
                tree.nodes().len(),
                tree.height()
            );
        }
        "sssp" => {
            if args.source >= g.n() {
                return Err(format!("source {} out of range", args.source));
            }
            let tree = obtain_tree(&g, &args)?;
            let pre = preprocess::<Tropical>(&g, &tree, args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            // Ledger snapshot before the query: the Theorem 4.1/5.1
            // envelopes cover preprocessing work only.
            ledger = Some(work_ledger(&tree, args.algo, &metrics.report(), None));
            let (dist, stats) = pre.distances_seq(args.source);
            let reachable = dist.iter().filter(|d| d.is_finite()).count();
            let max = dist
                .iter()
                .filter(|d| d.is_finite())
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            println!(
                "sssp from {}: {} reachable of {}, max distance {:.6}, {} relaxations",
                args.source,
                reachable,
                g.n(),
                max,
                stats.relaxations
            );
            if args.print_dists {
                let mut out = String::new();
                for (v, d) in dist.iter().enumerate() {
                    use std::fmt::Write;
                    if d.is_finite() {
                        writeln!(out, "{v} {d}").unwrap();
                    } else {
                        writeln!(out, "{v} inf").unwrap();
                    }
                }
                print!("{out}");
            }
        }
        "reach" => {
            if args.source >= g.n() {
                return Err(format!("source {} out of range", args.source));
            }
            let tree = obtain_tree(&g, &args)?;
            let gb = g.map_weights(|_| true);
            let pre = spsep::core::reach::preprocess_reach(&gb, &tree, &metrics);
            let (row, _) = pre.distances_seq(args.source);
            let count = row.iter().filter(|&&r| r).count();
            println!("reach from {}: {} of {} vertices", args.source, count, g.n());
            if args.print_dists {
                let ids: Vec<String> = row
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r)
                    .map(|(v, _)| v.to_string())
                    .collect();
                println!("{}", ids.join(" "));
            }
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    epilogue(&args, &metrics, ledger.as_ref())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
