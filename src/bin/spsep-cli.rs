//! `spsep-cli` — command-line front end for the separator shortest-path
//! library.
//!
//! ```text
//! spsep-cli import  <raw>       -o <out.gr>           ingest a raw instance
//! spsep-cli info    <graph.gr>                        graph + decomposition stats
//! spsep-cli tree    <graph.gr>  -o <tree.st>          build and save a decomposition
//! spsep-cli sssp    <graph.gr>  -s <src> [...]        single-source distances
//! spsep-cli reach   <graph.gr>  -s <src>              reachable vertex count
//! spsep-cli prepare <graph.gr>  -o <oracle.sps>       preprocess once, save snapshot
//! spsep-cli serve   <oracle.sps> --queries <q.txt>    answer a query stream (replay)
//! spsep-cli serve   <oracle.sps> --listen <addr>      long-lived TCP query daemon
//! spsep-cli load    <host:port>  [--rate r --chaos p]  open-loop load harness
//! ```
//!
//! `import` accepts DIMACS `.gr`, CSV edge lists (`from,to,weight`,
//! 0-based), or a binary CSR directory (`first_out`/`head`/`weight`
//! little-endian `u32` files); it extracts the largest strongly
//! connected component (`--keep-all` to skip), optionally rescales
//! weights (`--normalize`), and writes a canonical `.gr` plus a
//! provenance report. Every other subcommand also sniffs these formats
//! when loading `<graph.gr>`, so `spsep-cli prepare roads.csv …` works
//! directly on a clean extract.
//!
//! `prepare` + `serve` are the deployment mode the paper's cost model
//! targets: run the expensive Sections 3–5 preprocessing once, persist
//! the result as a versioned `spsep-oracle/v1` snapshot, then serve any
//! number of cheap scheduled queries from it (DESIGN.md §10). Query
//! files hold one query per line: `p <u> <v>` for a point-to-point
//! distance, `s <u>` for a full single-source table, `c ...` comments
//! (0-based vertex ids).
//!
//! Common flags (all subcommands):
//!
//! ```text
//! -t <tree.st>          reuse a saved decomposition (paper comment (iv))
//! -a 41|43|44           E⁺ construction (default 41 = leaves-up)
//! -b auto|bfs|centroid|planar
//!                       decomposition builder (default auto: the
//!                       BFS-level + fundamental-cycle planar builder
//!                       when the skeleton certifies near-planar —
//!                       road networks, grids, meshes — else plain BFS
//!                       levels; centroid for tree-shaped graphs)
//! --print-dists         dump every distance (default: summary only)
//! --metrics             print the PRAM work/depth report and, where a
//!                       preprocessing ran, the Theorem 4.1/5.1 work
//!                       ledger (predicted-vs-measured ratios)
//! --metrics-out <file>  write the same report as JSON (spsep-metrics/v1)
//! --trace               print the hierarchical span tree to stderr
//! --trace-out <file>    write a Chrome trace-event JSON (load in
//!                       Perfetto / chrome://tracing), including executor
//!                       pool telemetry
//! ```
//!
//! `serve` additionally accepts:
//!
//! ```text
//! --queries <q.txt>     one-shot replay: answer the stream through the
//!                       daemon codec (`answer_query`) and exit
//! --listen <addr>       daemon mode: bind a TCP listener (port 0 picks a
//!                       free port), serve until SIGINT/SIGTERM or a
//!                       Shutdown request, then drain and print final stats
//! --workers <k>         daemon worker threads (default 4)
//! --queue-depth <d>     admission-control bound on queued connections;
//!                       excess connections get a typed Overloaded error
//! --cache <rows>        LRU capacity of the per-source table cache
//! --batch               replay: answer all point queries as one batch
//! --metrics-listen <a>  bind a plain-HTTP side port answering
//!                       `GET /metrics` with the Prometheus exposition
//! --slow-us <t>         flight-recorder slow threshold: any request
//!                       served slower than t µs dumps the surrounding
//!                       window (errors always trigger)
//! --no-telemetry        runtime switch: skip all registry and flight
//!                       recording (counters for wire Stats still run)
//! --flight-out <file>   write captured flight-recorder dumps on exit
//! ```
//!
//! `load` drives an open-loop chaos load against a running daemon
//! (latency is measured from the *scheduled* arrival, so coordinated
//! omission cannot flatter the tail):
//!
//! ```text
//! --rate <r>            offered arrivals per second (default 500)
//! --duration <s>        seconds of load (default 2)
//! --conns <k>           concurrent connections (default 4)
//! --mix <p:s:b>         point : source : batch request weights
//! --batch-size <k>      pairs per batch request
//! --zipf <t>            source-skew exponent (0 = uniform)
//! --chaos <p>           probability a request becomes a protocol
//!                       corruption or mid-stream disconnect
//! --seed <s>            deterministic schedule seed
//! --verify <oracle.sps> check every answer bit-for-bit vs this snapshot
//! --load-out <p.json>   write the validated spsep-serve-bench/v1 report
//! --json <report.json>  write the validated spsep-load-report/v1 report
//!                       (client + daemon view + scraped metrics delta)
//! --shutdown            ask the daemon to drain and exit afterwards
//! ```
//!
//! `load` also scrapes the daemon's metrics (wire `Metrics` opcode)
//! before and after the run, validates the exposition, and prints the
//! counter delta summary.
//!
//! Graphs are DIMACS `sp` files (`p sp n m` + `a u v w`, 1-based).

use spsep::core::analysis::{work_ledger, WorkLedger};
use spsep::core::{preprocess, Algorithm, Oracle};
use spsep::serve;
use spsep::graph::semiring::Tropical;
use spsep::graph::DiGraph;
use spsep::pram::{Metrics, Report};
use spsep::separator::{builders, RecursionLimits, SepTree};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

struct Args {
    command: String,
    graph_path: String,
    source: usize,
    algo: Algorithm,
    builder: String,
    keep_all: bool,
    normalize: bool,
    tree_in: Option<String>,
    tree_out: Option<String>,
    print_dists: bool,
    metrics: bool,
    metrics_out: Option<String>,
    trace: bool,
    trace_out: Option<String>,
    queries: Option<String>,
    cache: Option<usize>,
    batch: bool,
    listen: Option<String>,
    metrics_listen: Option<String>,
    slow_us: Option<u64>,
    no_telemetry: bool,
    flight_out: Option<String>,
    workers: usize,
    queue_depth: usize,
    rate: f64,
    duration_s: f64,
    conns: usize,
    mix: Option<String>,
    batch_size: Option<usize>,
    zipf: Option<f64>,
    chaos: f64,
    seed: Option<u64>,
    verify: Option<String>,
    load_out: Option<String>,
    json_out: Option<String>,
    shutdown_after: bool,
    format: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: spsep-cli <info|tree|sssp|reach|prepare> <graph.gr|.csv|csr-dir> \
         [-s source] [-a 41|43|44] [-b auto|bfs|centroid|planar] [-t tree.st] [-o out] \
         [--format v1|v2] [--print-dists]\n\
         \x20      spsep-cli import <raw.gr|.csv|csr-dir> -o <out.gr> \
         [--keep-all] [--normalize]\n\
         \x20       [--metrics] [--metrics-out m.json] [--trace] [--trace-out t.json]\n\
         \x20      spsep-cli serve <oracle.sps> --queries q.txt \
         [--cache rows] [--batch] [--print-dists]\n\
         \x20      spsep-cli serve <oracle.sps> --listen host:port \
         [--workers k] [--queue-depth d] [--cache rows]\n\
         \x20       [--metrics-listen host:port] [--slow-us t] \
         [--no-telemetry] [--flight-out dump.txt]\n\
         \x20      spsep-cli load <host:port> [--rate r] [--duration s] \
         [--conns k] [--mix p:s:b] [--batch-size k]\n\
         \x20       [--zipf t] [--chaos p] [--seed s] [--verify oracle.sps] \
         [--load-out p.json] [--json report.json] [--shutdown]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let graph_path = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        graph_path,
        source: 0,
        algo: Algorithm::LeavesUp,
        builder: "auto".into(),
        keep_all: false,
        normalize: false,
        tree_in: None,
        tree_out: None,
        print_dists: false,
        metrics: false,
        metrics_out: None,
        trace: false,
        trace_out: None,
        queries: None,
        cache: None,
        batch: false,
        listen: None,
        metrics_listen: None,
        slow_us: None,
        no_telemetry: false,
        flight_out: None,
        workers: 4,
        queue_depth: 64,
        rate: 500.0,
        duration_s: 2.0,
        conns: 4,
        mix: None,
        batch_size: None,
        zipf: None,
        chaos: 0.0,
        seed: None,
        verify: None,
        load_out: None,
        json_out: None,
        shutdown_after: false,
        format: "v2".into(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "-s" => {
                args.source = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?
            }
            "-a" => {
                args.algo = match argv.next().as_deref() {
                    Some("41") => Algorithm::LeavesUp,
                    Some("43") => Algorithm::PathDoubling,
                    Some("44") => Algorithm::SharedDoubling,
                    _ => return Err(usage()),
                }
            }
            "-b" => args.builder = argv.next().ok_or_else(usage)?,
            "-t" => args.tree_in = Some(argv.next().ok_or_else(usage)?),
            "-o" => args.tree_out = Some(argv.next().ok_or_else(usage)?),
            "--print-dists" => args.print_dists = true,
            "--metrics" => args.metrics = true,
            "--metrics-out" => args.metrics_out = Some(argv.next().ok_or_else(usage)?),
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(argv.next().ok_or_else(usage)?),
            "--queries" => args.queries = Some(argv.next().ok_or_else(usage)?),
            "--cache" => {
                args.cache = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(usage)?,
                )
            }
            "--batch" => args.batch = true,
            "--listen" => args.listen = Some(argv.next().ok_or_else(usage)?),
            "--metrics-listen" => args.metrics_listen = Some(argv.next().ok_or_else(usage)?),
            "--slow-us" => {
                args.slow_us = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(usage)?,
                )
            }
            "--no-telemetry" => args.no_telemetry = true,
            "--keep-all" => args.keep_all = true,
            "--normalize" => args.normalize = true,
            "--flight-out" => args.flight_out = Some(argv.next().ok_or_else(usage)?),
            "--workers" => {
                args.workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w: &usize| w >= 1)
                    .ok_or_else(usage)?
            }
            "--queue-depth" => {
                args.queue_depth = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&d: &usize| d >= 1)
                    .ok_or_else(usage)?
            }
            "--rate" => {
                args.rate = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| *r > 0.0 && r.is_finite())
                    .ok_or_else(usage)?
            }
            "--duration" => {
                args.duration_s = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|d: &f64| *d > 0.0 && d.is_finite())
                    .ok_or_else(usage)?
            }
            "--conns" => {
                args.conns = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&c: &usize| c >= 1)
                    .ok_or_else(usage)?
            }
            "--mix" => args.mix = Some(argv.next().ok_or_else(usage)?),
            "--batch-size" => {
                args.batch_size = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&b: &usize| b >= 1)
                        .ok_or_else(usage)?,
                )
            }
            "--zipf" => {
                args.zipf = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|t: &f64| *t >= 0.0 && t.is_finite())
                        .ok_or_else(usage)?,
                )
            }
            "--chaos" => {
                args.chaos = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| (0.0..=1.0).contains(p))
                    .ok_or_else(usage)?
            }
            "--seed" => {
                args.seed = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(usage)?,
                )
            }
            "--format" => {
                args.format = match argv.next().as_deref() {
                    Some("v1") => "v1".into(),
                    Some("v2") => "v2".into(),
                    _ => return Err(usage()),
                }
            }
            "--verify" => args.verify = Some(argv.next().ok_or_else(usage)?),
            "--load-out" => args.load_out = Some(argv.next().ok_or_else(usage)?),
            "--json" => args.json_out = Some(argv.next().ok_or_else(usage)?),
            "--shutdown" => args.shutdown_after = true,
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn load_graph(path: &str) -> Result<DiGraph<f64>, String> {
    // Sniffs the container: `.gr`/`.dimacs` text, `.csv` edge list, or
    // a binary CSR directory — so every subcommand ingests raw
    // road-network extracts directly.
    spsep::graph::import::read_instance_path(std::path::Path::new(path)).map_err(|e| match e {
        spsep::core::SpsepError::Io(io) => format!("cannot open {path}: {io}"),
        other => format!("{path}: {other}"),
    })
}

fn obtain_tree(g: &DiGraph<f64>, args: &Args) -> Result<SepTree, String> {
    let tree = match &args.tree_in {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let tree = spsep::separator::io::read_tree(BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            if tree.n() != g.n() {
                return Err(format!(
                    "tree is over {} vertices but the graph has {}",
                    tree.n(),
                    g.n()
                ));
            }
            tree
        }
        None => {
            let adj = g.undirected_skeleton();
            match args.builder.as_str() {
                "auto" => {
                    let check = spsep::separator::certify_near_planar(&adj);
                    if check.near_planar {
                        eprintln!(
                            "builder auto: near-planar certificate holds (m = {} ≤ 3n−6, \
                             degeneracy {} ≤ 5) → planar level builder",
                            check.undirected_edges, check.degeneracy
                        );
                        spsep::separator::planar_level_tree(&adj, RecursionLimits::default())
                    } else {
                        eprintln!(
                            "builder auto: near-planar certificate fails (edge bound {}, \
                             degeneracy {}) → bfs builder",
                            if check.edge_bound_ok { "ok" } else { "violated" },
                            check.degeneracy
                        );
                        builders::bfs_tree(&adj, RecursionLimits::default())
                    }
                }
                "bfs" => builders::bfs_tree(&adj, RecursionLimits::default()),
                "centroid" => builders::centroid_tree(&adj, RecursionLimits::default()),
                "planar" => {
                    spsep::separator::planar_level_tree(&adj, RecursionLimits::default())
                }
                other => {
                    return Err(format!(
                        "unknown builder '{other}' (auto|bfs|centroid|planar)"
                    ))
                }
            }
        }
    };
    tree.validate(&g.undirected_skeleton())
        .map_err(|e| format!("invalid decomposition: {e}"))?;
    if let Some(path) = &args.tree_out {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        spsep::separator::io::write_tree(&tree, &mut BufWriter::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote decomposition to {path}");
    }
    Ok(tree)
}

/// Append one JSON string value (with escapes) to `out`.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the `spsep-metrics/v1` JSON document: the PRAM report plus the
/// work-ledger entries (empty array when the command ran no augmentation).
fn metrics_json(command: &str, report: &Report, ledger: Option<&WorkLedger>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"spsep-metrics/v1\",\n  \"command\": ");
    json_str(&mut out, command);
    write!(
        out,
        ",\n  \"work\": {{\n    \"relaxation\": {},\n    \"floyd_warshall\": {},\n    \
         \"doubling\": {},\n    \"limited\": {},\n    \"matmul\": {},\n    \
         \"dijkstra\": {},\n    \"other\": {},\n    \"total\": {}\n  }},\n  \
         \"depth\": {},\n  \"phases\": {},\n  \"ledger\": [",
        report.relaxation,
        report.floyd_warshall,
        report.doubling,
        report.limited,
        report.matmul,
        report.dijkstra,
        report.other,
        report.total_work(),
        report.depth,
        report.phases,
    )
    .unwrap();
    if let Some(ledger) = ledger {
        for (i, e) in ledger.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"label\": ");
            json_str(&mut out, &e.label);
            write!(
                out,
                ", \"measured\": {}, \"predicted\": {}, \"ratio\": {:.6}, \"within\": {}}}",
                e.measured, e.predicted, e.ratio, e.within
            )
            .unwrap();
        }
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The uniform observability epilogue, shared by every subcommand: the
/// `--metrics` report + ledger on stdout, the `--metrics-out` JSON, the
/// `--trace` span tree on stderr, and the `--trace-out` Chrome export
/// joined with the executor pool telemetry.
fn epilogue(args: &Args, metrics: &Metrics, ledger: Option<&WorkLedger>) -> Result<(), String> {
    let report = metrics.report();
    if args.metrics {
        println!("metrics: {report}");
        if let Some(ledger) = ledger {
            print!("{ledger}");
        }
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics_json(&args.command, &report, ledger))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    if args.trace || args.trace_out.is_some() {
        let events = spsep::trace::drain();
        if args.trace {
            eprint!("{}", spsep::trace::render_tree(&events));
        }
        if let Some(path) = &args.trace_out {
            let stats = rayon::pool_stats();
            let pool = spsep::trace::PoolMeta {
                workers: stats
                    .workers
                    .iter()
                    .map(|w| spsep::trace::WorkerMeta {
                        name: w.name.clone(),
                        busy_ns: w.busy_ns,
                        tasks: w.tasks,
                    })
                    .collect(),
                steal_backs: stats.steal_backs,
                reclaimed_handles: stats.reclaimed_handles,
                max_queue_depth: stats.max_queue_depth,
            };
            let json = spsep::trace::chrome_trace_json(&events, Some(&pool));
            spsep::trace::validate_chrome_json(&json)
                .map_err(|e| format!("internal error: invalid trace export: {e}"))?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote trace to {path}");
        }
    }
    Ok(())
}

/// One record of a `serve` query stream.
enum Query {
    /// `p u v` — point-to-point distance.
    Pair(usize, usize),
    /// `s u` — full single-source table.
    Source(usize),
}

/// Parse a query file: `c` comments, `p u v` pairs, `s u` sources
/// (0-based ids). Unknown records and malformed fields are
/// line-numbered errors.
fn read_queries(path: &str) -> Result<Vec<Query>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut queries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let field = |f: Option<&str>, what: &str| -> Result<usize, String> {
            f.ok_or_else(|| format!("{path}:{lineno}: missing {what}"))?
                .parse()
                .map_err(|_| format!("{path}:{lineno}: bad {what}"))
        };
        match parts.next() {
            Some("p") => {
                let u = field(parts.next(), "query source")?;
                let v = field(parts.next(), "query target")?;
                queries.push(Query::Pair(u, v));
            }
            Some("s") => queries.push(Query::Source(field(parts.next(), "query source")?)),
            Some(other) => {
                return Err(format!(
                    "{path}:{lineno}: unknown query record '{other}' (expected p, s, or c)"
                ));
            }
            None => {}
        }
    }
    Ok(queries)
}

fn fmt_dist(d: f64) -> String {
    if d.is_finite() {
        format!("{d}")
    } else {
        "inf".into()
    }
}

/// `p`-th percentile of sorted nanosecond latencies, in microseconds.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1000.0
}

/// Load an `spsep-oracle` snapshot (v2 is memory-mapped and borrowed
/// zero-copy; v1 is streamed and decoded) and apply the `--cache`
/// override.
fn load_snapshot(args: &Args) -> Result<Oracle, String> {
    let snap_path = &args.graph_path;
    let t0 = std::time::Instant::now();
    let oracle = Oracle::load_path(std::path::Path::new(snap_path))
        .map_err(|e| format!("{snap_path}: {e}"))?;
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    if let Some(capacity) = args.cache {
        oracle.set_cache_capacity(capacity);
    }
    println!(
        "loaded {snap_path}: n = {}, m = {}, |E+| = {}, algo = {:?}, {} {load_ms:.1} ms",
        oracle.n(),
        oracle.m(),
        oracle.stats().eplus_edges,
        oracle.algo(),
        if oracle.is_slab_backed() {
            "(v2, mmap)"
        } else {
            "(v1, decoded)"
        }
    );
    Ok(oracle)
}

/// Answer one replay query through the daemon codec (`answer_query`),
/// so one-shot replay and the TCP daemon share the exact same request
/// routing, vertex validation, and cache path — bit-identical answers.
fn replay_query(
    oracle: &Oracle,
    req: &serve::Request,
    metrics: &Metrics,
) -> Result<serve::Response, String> {
    match serve::answer_query(oracle, req, metrics) {
        Some(serve::Response::Error { message, .. }) => Err(message),
        Some(resp) => Ok(resp),
        None => Err("internal: unroutable replay request".into()),
    }
}

/// `serve`: load a snapshot, then either run the long-lived TCP daemon
/// (`--listen`) or replay a query file (`--queries`), reporting
/// throughput, latency percentiles, and cache behavior.
fn cmd_serve(args: &Args, metrics: &Metrics) -> Result<(), String> {
    if args.listen.is_some() {
        let oracle = load_snapshot(args)?;
        return cmd_daemon(args, oracle);
    }
    let q_path = args
        .queries
        .as_ref()
        .ok_or("serve needs --queries <q.txt> or --listen <addr>")?;
    let oracle = load_snapshot(args)?;
    let queries = read_queries(q_path)?;
    let num_pairs = queries
        .iter()
        .filter(|q| matches!(q, Query::Pair(..)))
        .count();
    let num_sources = queries.len() - num_pairs;

    let t1 = std::time::Instant::now();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries.len());
    if args.batch {
        // All point queries as one parallel batch; source queries
        // individually (they already produce whole tables).
        let pairs: Vec<(usize, usize)> = queries
            .iter()
            .filter_map(|q| match *q {
                Query::Pair(u, v) => Some((u, v)),
                Query::Source(_) => None,
            })
            .collect();
        let wire_pairs: Vec<(u64, u64)> =
            pairs.iter().map(|&(u, v)| (u as u64, v as u64)).collect();
        let req = serve::Request::Batch { pairs: wire_pairs };
        let answers = match replay_query(&oracle, &req, metrics)? {
            serve::Response::Batch(answers) => answers,
            other => return Err(format!("internal: batch answered with {other:?}")),
        };
        if args.print_dists {
            let mut out = String::new();
            for (&(u, v), d) in pairs.iter().zip(&answers) {
                use std::fmt::Write;
                let _ = writeln!(out, "p {u} {v} {}", fmt_dist(*d));
            }
            print!("{out}");
        }
        for q in &queries {
            if let Query::Source(u) = *q {
                let req = serve::Request::Source { source: u as u64 };
                let row = match replay_query(&oracle, &req, metrics)? {
                    serve::Response::Table(row) => row,
                    other => return Err(format!("internal: source answered with {other:?}")),
                };
                let reachable = row.iter().filter(|d| d.is_finite()).count();
                if args.print_dists {
                    println!("s {u} reachable={reachable}");
                }
            }
        }
        let batch_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "batch: {} pairs + {} sources in {batch_ms:.1} ms",
            pairs.len(),
            num_sources
        );
    } else {
        for q in &queries {
            let q0 = std::time::Instant::now();
            match *q {
                Query::Pair(u, v) => {
                    let req = serve::Request::Point {
                        source: u as u64,
                        target: v as u64,
                    };
                    let d = match replay_query(&oracle, &req, metrics)? {
                        serve::Response::Dist(d) => d,
                        other => return Err(format!("internal: point answered with {other:?}")),
                    };
                    if args.print_dists {
                        println!("p {u} {v} {}", fmt_dist(d));
                    }
                }
                Query::Source(u) => {
                    let req = serve::Request::Source { source: u as u64 };
                    let row = match replay_query(&oracle, &req, metrics)? {
                        serve::Response::Table(row) => row,
                        other => return Err(format!("internal: source answered with {other:?}")),
                    };
                    let reachable = row.iter().filter(|d| d.is_finite()).count();
                    if args.print_dists {
                        println!("s {u} reachable={reachable}");
                    }
                }
            }
            latencies_ns.push(q0.elapsed().as_nanos() as u64);
        }
    }
    let total_s = t1.elapsed().as_secs_f64();
    let throughput = if total_s > 0.0 {
        queries.len() as f64 / total_s
    } else {
        0.0
    };
    println!(
        "serve: {} queries ({num_pairs} pairs, {num_sources} sources) in {:.1} ms, {throughput:.0} q/s",
        queries.len(),
        total_s * 1e3
    );
    if !latencies_ns.is_empty() {
        latencies_ns.sort_unstable();
        println!(
            "latency: p50 = {:.1} us, p90 = {:.1} us, p99 = {:.1} us \
             (service time; queue-wait = 0 in one-shot replay)",
            percentile_us(&latencies_ns, 50.0),
            percentile_us(&latencies_ns, 90.0),
            percentile_us(&latencies_ns, 99.0)
        );
    }
    print_cache_stats(&oracle);
    Ok(())
}

/// The cache report shared by replay and daemon epilogues: aggregate
/// counters plus the per-shard breakdown of the sharded-lock row cache.
fn print_cache_stats(oracle: &Oracle) {
    let cs = oracle.cache_stats();
    println!(
        "cache: hits = {}, misses = {}, evictions = {}, entries = {}/{}",
        cs.hits, cs.misses, cs.evictions, cs.entries, cs.capacity
    );
    let per_shard: Vec<String> = cs
        .shards
        .iter()
        .map(|s| format!("{}/{}/{}", s.hits, s.misses, s.evictions))
        .collect();
    println!(
        "cache shards: {} (hits/misses/evictions per shard: {})",
        cs.shards.len(),
        per_shard.join(" ")
    );
}

/// `serve --listen`: the long-lived daemon. Binds, announces the bound
/// address on stdout (port 0 resolves to a real port), serves until a
/// SIGINT/SIGTERM or a wire `Shutdown` request starts the drain, then
/// prints the final stats — queue-wait separated from service time —
/// and returns cleanly (exit 0).
fn cmd_daemon(args: &Args, mut oracle: Oracle) -> Result<(), String> {
    let listen = args.listen.as_deref().unwrap_or("127.0.0.1:0");
    // A `<snapshot>.ledger` sidecar written by `prepare` carries the
    // Theorem 4.1/5.1 work/depth ledger into the daemon, where the
    // telemetry plane exports it as `spsep_ledger_*` gauges. Absence is
    // fine (old snapshots); a corrupt sidecar is a hard error rather
    // than silently serving without the paper's envelopes.
    let sidecar = format!("{}.ledger", args.graph_path);
    match std::fs::read_to_string(&sidecar) {
        Ok(text) => {
            let ledger = spsep::core::analysis::ledger_from_text(&text)
                .map_err(|e| format!("{sidecar}: {e}"))?;
            oracle.set_ledger(ledger);
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot read {sidecar}: {e}")),
    }
    let oracle = std::sync::Arc::new(oracle);
    serve::install_signal_handlers();
    let server = serve::Server::bind(
        std::sync::Arc::clone(&oracle),
        serve::ServeConfig {
            addr: listen.to_string(),
            workers: args.workers,
            queue_depth: args.queue_depth,
            telemetry: !args.no_telemetry,
            metrics_addr: args.metrics_listen.clone(),
            slow_us: args.slow_us,
            ..serve::ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    // Stdout is line-buffered: this announcement is visible to a parent
    // process (or test harness) as soon as it is printed.
    println!(
        "listening on {addr} ({} workers, queue depth {})",
        args.workers, args.queue_depth
    );
    if let Some(maddr) = server.metrics_addr() {
        println!("metrics on http://{maddr}/metrics");
    }
    let stats = server.run().map_err(|e| format!("daemon failed: {e}"))?;
    println!("shutdown: drained, final stats follow");
    print_wire_stats(&stats);
    print_cache_stats(&oracle);
    let dumps = handle.flight_dumps();
    if !dumps.is_empty() {
        println!("flight recorder: {} dump(s) captured", dumps.len());
    }
    if let Some(path) = &args.flight_out {
        let mut out = String::new();
        for dump in &dumps {
            out.push_str(&spsep::telemetry::render_dump(dump));
            out.push('\n');
        }
        std::fs::write(path, &out).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("flight dumps written to {path}");
    }
    Ok(())
}

/// Render a [`serve::WireStats`] snapshot: admission counters, the
/// error taxonomy, and the queue-wait vs service-time split.
fn print_wire_stats(stats: &serve::WireStats) {
    println!(
        "daemon: workers = {}, accepted = {}, shed = {}, served = {}, io_errors = {}",
        stats.workers, stats.accepted, stats.shed, stats.served, stats.io_errors
    );
    println!(
        "errors: parse = {}, invalid_query = {}, overloaded = {}, \
         shutting_down = {}, internal = {}",
        stats.errors[0], stats.errors[1], stats.errors[2], stats.errors[3], stats.errors[4]
    );
    println!(
        "latency: queue-wait p50 = {:.1} us, p99 = {:.1} us, p999 = {:.1} us; \
         service p50 = {:.1} us, p99 = {:.1} us, p999 = {:.1} us",
        stats.queue_wait_us[0],
        stats.queue_wait_us[1],
        stats.queue_wait_us[2],
        stats.service_us[0],
        stats.service_us[1],
        stats.service_us[2]
    );
}

/// Parse a `--mix p:s:b` weight triple.
fn parse_mix(text: &str) -> Result<serve::Mix, String> {
    let parts: Vec<&str> = text.split(':').collect();
    let [p, s, b] = parts.as_slice() else {
        return Err(format!("--mix wants point:source:batch, got '{text}'"));
    };
    let w = |t: &str, what: &str| -> Result<u32, String> {
        t.parse()
            .map_err(|_| format!("--mix: bad {what} weight '{t}'"))
    };
    let mix = serve::Mix {
        point: w(p, "point")?,
        source: w(s, "source")?,
        batch: w(b, "batch")?,
    };
    if mix.point + mix.source + mix.batch == 0 {
        return Err("--mix: at least one weight must be positive".into());
    }
    Ok(mix)
}

/// `load`: drive the open-loop chaos load harness against a running
/// daemon, print the report, optionally write the validated
/// `spsep-serve-bench/v1` artifact, and optionally ask the daemon to
/// shut down. Exits non-zero when any answer diverged from the
/// verification oracle or a chaos injection went unhandled.
fn cmd_load(args: &Args) -> Result<(), String> {
    let addr = &args.graph_path;
    // Reject malformed flags before touching the network.
    let mix = match &args.mix {
        Some(text) => Some(parse_mix(text)?),
        None => None,
    };
    // The sampling range: from the --verify snapshot when given (which
    // then also checks every answer bit-for-bit), else from the
    // daemon's own Info response.
    let (n, verify) = match &args.verify {
        Some(path) => {
            let oracle = Oracle::load_path(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            (oracle.n(), Some(std::sync::Arc::new(oracle)))
        }
        None => {
            let mut client = serve::Client::connect(addr.as_str(), std::time::Duration::from_secs(5))
                .map_err(|e| format!("cannot reach daemon at {addr}: {e}"))?;
            match client.request(&serve::Request::Info) {
                Ok(serve::Response::Info { n, .. }) => (n as usize, None),
                Ok(other) => return Err(format!("daemon Info answered with {other:?}")),
                Err(e) => return Err(format!("daemon Info failed: {e}")),
            }
        }
    };
    let defaults = serve::LoadConfig::default();
    let config = serve::LoadConfig {
        addr: addr.clone(),
        rate: args.rate,
        duration: std::time::Duration::from_secs_f64(args.duration_s),
        connections: args.conns,
        mix: mix.unwrap_or(defaults.mix),
        batch_size: args.batch_size.unwrap_or(defaults.batch_size),
        zipf_theta: args.zipf.unwrap_or(defaults.zipf_theta),
        n,
        chaos: args.chaos,
        seed: args.seed.unwrap_or(defaults.seed),
        verify,
        ..defaults
    };
    let report = serve::run_load(&config).map_err(|e| format!("load against {addr}: {e}"))?;

    println!(
        "load: scheduled = {}, ok = {}, chaos handled = {}/{}, {:.2} s elapsed, {:.0} q/s",
        report.scheduled,
        report.ok,
        report.chaos_handled,
        report.chaos_sent,
        report.elapsed.as_secs_f64(),
        report.qps
    );
    println!(
        "latency (open-loop, from scheduled arrival): p50 = {:.1} us, \
         p99 = {:.1} us, p999 = {:.1} us",
        report.latency_us[0], report.latency_us[1], report.latency_us[2]
    );
    if report.errors.is_empty() {
        println!("errors: none");
    } else {
        let parts: Vec<String> = report
            .errors
            .iter()
            .map(|(name, count)| format!("{name} = {count}"))
            .collect();
        println!("errors: {}", parts.join(", "));
    }
    if let Some(stats) = &report.daemon {
        print_wire_stats(stats);
        println!(
            "cache (daemon): hits = {}, misses = {}, evictions = {}, shards = {}",
            stats.cache_hits, stats.cache_misses, stats.cache_evictions, stats.cache_shards
        );
    }
    match report.metrics_valid {
        Some(true) => println!(
            "metrics: exposition valid, {} counter(s) moved during the run",
            report.metrics_delta.len()
        ),
        Some(false) => println!("metrics: exposition INVALID (validator rejected it)"),
        None => println!("metrics: scrape unavailable (telemetry off or old daemon)"),
    }

    if let Some(path) = &args.load_out {
        let stats = report
            .daemon
            .as_ref()
            .ok_or("--load-out needs the daemon's final stats, but Stats failed")?;
        let record = spsep_bench::serve::ServeRecord {
            workers: stats.workers as usize,
            rate: args.rate,
            duration_s: args.duration_s,
            connections: args.conns,
            scheduled: report.scheduled,
            ok: report.ok,
            chaos_sent: report.chaos_sent,
            chaos_handled: report.chaos_handled,
            qps: report.qps,
            latency_us: report.latency_us,
            errors: report.errors.clone(),
            served: stats.served,
            shed: stats.shed,
            // The wire carries p50/p99/p999; the v1 artifact schema
            // keeps its original two-percentile shape.
            queue_wait_us: [stats.queue_wait_us[0], stats.queue_wait_us[1]],
            service_us: [stats.service_us[0], stats.service_us[1]],
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_shards: stats.cache_shards as u64,
        };
        let json = spsep_bench::serve::serve_json(&[record]);
        spsep_bench::serve::validate_serve_json(&json)
            .map_err(|e| format!("load report failed validation: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote load report to {path}");
    }

    if let Some(path) = &args.json_out {
        let json = spsep_bench::loadrep::load_report_json(
            addr,
            args.rate,
            args.duration_s,
            args.conns,
            &report,
        );
        spsep_bench::loadrep::validate_load_report_json(&json)
            .map_err(|e| format!("load report failed validation: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote spsep-load-report/v1 to {path}");
    }

    if args.shutdown_after {
        let mut client = serve::Client::connect(addr.as_str(), std::time::Duration::from_secs(5))
            .map_err(|e| format!("cannot reach daemon for shutdown: {e}"))?;
        match client.request(&serve::Request::Shutdown) {
            Ok(serve::Response::ShutdownAck) => println!("daemon acknowledged shutdown"),
            Ok(other) => return Err(format!("shutdown answered with {other:?}")),
            Err(e) => return Err(format!("shutdown request failed: {e}")),
        }
    }

    let mismatches = *report.errors.get("verify_mismatch").unwrap_or(&0);
    let unhandled = *report.errors.get("chaos_unhandled").unwrap_or(&0);
    if mismatches > 0 || unhandled > 0 {
        return Err(format!(
            "load failed: {mismatches} verification mismatches, \
             {unhandled} unhandled chaos injections"
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(code) => {
            std::process::exit(if code == ExitCode::SUCCESS { 0 } else { 2 });
        }
    };
    if args.trace || args.trace_out.is_some() {
        spsep::trace::enable();
    }
    let metrics = Metrics::new();
    if args.command == "serve" {
        // `serve` takes a snapshot, not a DIMACS graph.
        cmd_serve(&args, &metrics)?;
        return epilogue(&args, &metrics, None);
    }
    if args.command == "load" {
        // `load` takes a daemon address, not a file at all.
        cmd_load(&args)?;
        return epilogue(&args, &metrics, None);
    }
    if args.command == "import" {
        // `import` reads a *raw* instance (any sniffable format) and
        // writes the cleaned canonical `.gr`.
        let out_path = args
            .tree_out
            .take()
            .ok_or("import needs -o <out.gr>")?;
        let opts = spsep::graph::import::ImportOptions {
            largest_scc: !args.keep_all,
            normalize: args.normalize,
        };
        let (g, report) = spsep::graph::import::import_path(
            std::path::Path::new(&args.graph_path),
            opts,
        )
        .map_err(|e| format!("{}: {e}", args.graph_path))?;
        let file = File::create(&out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
        let mut out = BufWriter::new(file);
        spsep::graph::io::write_dimacs(&g, &mut out).map_err(|e| format!("{out_path}: {e}"))?;
        println!(
            "parsed : n = {}, m = {}, {} strongly connected component{}",
            report.nodes_parsed,
            report.arcs_parsed,
            report.scc_count,
            if report.scc_count == 1 { "" } else { "s" }
        );
        println!(
            "kept   : n = {}, m = {} ({})",
            report.nodes_kept,
            report.arcs_kept,
            if args.keep_all {
                "all vertices".to_string()
            } else {
                format!(
                    "largest SCC, dropped {} vertices",
                    report.nodes_parsed - report.nodes_kept
                )
            }
        );
        if report.weight_scale != 1.0 {
            println!("scale  : weights divided by {}", report.weight_scale);
        }
        let check = spsep::separator::certify_near_planar(&g.undirected_skeleton());
        println!(
            "planar : {} (m = {}, degeneracy = {}) → builder auto picks {}",
            if check.near_planar {
                "near-planar certificate holds"
            } else {
                "near-planar certificate fails"
            },
            check.undirected_edges,
            check.degeneracy,
            if check.near_planar { "planar" } else { "bfs" }
        );
        println!("wrote  : {out_path}");
        return epilogue(&args, &metrics, None);
    }
    let g = load_graph(&args.graph_path)?;
    let mut ledger: Option<WorkLedger> = None;
    match args.command.as_str() {
        "info" => {
            let tree = obtain_tree(&g, &args)?;
            println!("graph: n = {}, m = {}", g.n(), g.m());
            // One shared implementation with the E23 bench (satellite
            // of ISSUE 10): the c·√k claim is measured here and there
            // by the same code.
            let q = spsep::separator::separator_quality(&tree);
            println!(
                "tree : {} nodes, height {}, max leaf {}, Σ|S| = {}, root |S| = {}",
                q.nodes, q.height, q.max_leaf, q.total_separator, q.root_separator
            );
            println!(
                "sep  : max |S| = {}, c = max |S(t)|/√|V(t)| = {:.3}, balance = {:.3}, \
                 E+ candidates = {}",
                q.max_separator, q.sqrt_coefficient, q.balance, q.eplus_candidates
            );
            let pre = preprocess::<Tropical>(&g, &tree, args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            println!(
                "E+   : {} shortcut edges; preprocessing {}",
                pre.stats().eplus_edges,
                metrics.report()
            );
            ledger = Some(work_ledger(&tree, args.algo, &metrics.report(), None));
        }
        "tree" => {
            if args.tree_out.is_none() {
                return Err("tree command needs -o <out.st>".into());
            }
            let tree = obtain_tree(&g, &args)?;
            println!(
                "built decomposition: {} nodes, height {}",
                tree.nodes().len(),
                tree.height()
            );
        }
        "sssp" => {
            if args.source >= g.n() {
                return Err(format!("source {} out of range", args.source));
            }
            let tree = obtain_tree(&g, &args)?;
            let pre = preprocess::<Tropical>(&g, &tree, args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            // Ledger snapshot before the query: the Theorem 4.1/5.1
            // envelopes cover preprocessing work only.
            ledger = Some(work_ledger(&tree, args.algo, &metrics.report(), None));
            let (dist, stats) = pre.distances_seq(args.source);
            let reachable = dist.iter().filter(|d| d.is_finite()).count();
            let max = dist
                .iter()
                .filter(|d| d.is_finite())
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            println!(
                "sssp from {}: {} reachable of {}, max distance {:.6}, {} relaxations",
                args.source,
                reachable,
                g.n(),
                max,
                stats.relaxations
            );
            if args.print_dists {
                let mut out = String::new();
                for (v, d) in dist.iter().enumerate() {
                    use std::fmt::Write;
                    if d.is_finite() {
                        writeln!(out, "{v} {d}").unwrap();
                    } else {
                        writeln!(out, "{v} inf").unwrap();
                    }
                }
                print!("{out}");
            }
        }
        "prepare" => {
            // `-o` names the snapshot here; take it so obtain_tree does
            // not also write a text tree to the same path.
            let out_path = args
                .tree_out
                .take()
                .ok_or("prepare needs -o <oracle.sps>")?;
            let tree = obtain_tree(&g, &args)?;
            let t0 = std::time::Instant::now();
            let (n, m) = (g.n(), g.m());
            let oracle = Oracle::prepare(g, tree.clone(), args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            let prepare_ms = t0.elapsed().as_secs_f64() * 1e3;
            ledger = Some(work_ledger(&tree, args.algo, &metrics.report(), None));
            // Sidecar for the daemon's telemetry plane: `serve --listen`
            // reads `<snapshot>.ledger` and exports the Theorem 4.1/5.1
            // envelopes as gauges.
            if let Some(l) = &ledger {
                let sidecar = format!("{out_path}.ledger");
                std::fs::write(&sidecar, spsep::core::analysis::ledger_to_text(l))
                    .map_err(|e| format!("cannot write {sidecar}: {e}"))?;
            }
            let mut buf = Vec::new();
            if args.format == "v1" {
                oracle.save(&mut buf).map_err(|e| e.to_string())?;
            } else {
                oracle.save_v2(&mut buf).map_err(|e| e.to_string())?;
            }
            std::fs::write(&out_path, &buf)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            println!(
                "prepared oracle: n = {n}, m = {m}, |E+| = {}, algo = {:?}",
                oracle.stats().eplus_edges,
                oracle.algo()
            );
            println!(
                "snapshot ({}): {} bytes → {out_path} ({prepare_ms:.1} ms preprocessing)",
                args.format,
                buf.len()
            );
        }
        "reach" => {
            if args.source >= g.n() {
                return Err(format!("source {} out of range", args.source));
            }
            let tree = obtain_tree(&g, &args)?;
            let gb = g.map_weights(|_| true);
            let pre = spsep::core::reach::preprocess_reach(&gb, &tree, &metrics);
            let (row, _) = pre.distances_seq(args.source);
            let count = row.iter().filter(|&&r| r).count();
            println!("reach from {}: {} of {} vertices", args.source, count, g.n());
            if args.print_dists {
                let ids: Vec<String> = row
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r)
                    .map(|(v, _)| v.to_string())
                    .collect();
                println!("{}", ids.join(" "));
            }
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    epilogue(&args, &metrics, ledger.as_ref())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
