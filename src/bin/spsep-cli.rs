//! `spsep-cli` — command-line front end for the separator shortest-path
//! library.
//!
//! ```text
//! spsep-cli info  <graph.gr>                          graph + decomposition stats
//! spsep-cli tree  <graph.gr> -o <tree.st>             build and save a decomposition
//! spsep-cli sssp  <graph.gr> -s <src> [...]           single-source distances
//! spsep-cli reach <graph.gr> -s <src>                 reachable vertex count
//! ```
//!
//! Common flags:
//!   -t <tree.st>       reuse a saved decomposition (paper comment (iv))
//!   -a 41|43|44        E⁺ construction (default 41 = leaves-up)
//!   -b bfs|centroid    decomposition builder (default bfs; centroid
//!                      for tree-shaped graphs)
//!   --print-dists      dump every distance (default: summary only)
//!
//! Graphs are DIMACS `sp` files (`p sp n m` + `a u v w`, 1-based).

use spsep::core::{preprocess, Algorithm};
use spsep::graph::semiring::Tropical;
use spsep::graph::DiGraph;
use spsep::pram::Metrics;
use spsep::separator::{builders, RecursionLimits, SepTree};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

struct Args {
    command: String,
    graph_path: String,
    source: usize,
    algo: Algorithm,
    builder: String,
    tree_in: Option<String>,
    tree_out: Option<String>,
    print_dists: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: spsep-cli <info|tree|sssp|reach> <graph.gr> \
         [-s source] [-a 41|43|44] [-t tree.st] [-o tree.st] [--print-dists]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let graph_path = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        graph_path,
        source: 0,
        algo: Algorithm::LeavesUp,
        builder: "bfs".into(),
        tree_in: None,
        tree_out: None,
        print_dists: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "-s" => {
                args.source = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?
            }
            "-a" => {
                args.algo = match argv.next().as_deref() {
                    Some("41") => Algorithm::LeavesUp,
                    Some("43") => Algorithm::PathDoubling,
                    Some("44") => Algorithm::SharedDoubling,
                    _ => return Err(usage()),
                }
            }
            "-b" => args.builder = argv.next().ok_or_else(usage)?,
            "-t" => args.tree_in = Some(argv.next().ok_or_else(usage)?),
            "-o" => args.tree_out = Some(argv.next().ok_or_else(usage)?),
            "--print-dists" => args.print_dists = true,
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn load_graph(path: &str) -> Result<DiGraph<f64>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    spsep::graph::io::read_dimacs(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn obtain_tree(g: &DiGraph<f64>, args: &Args) -> Result<SepTree, String> {
    let tree = match &args.tree_in {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let tree = spsep::separator::io::read_tree(BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            if tree.n() != g.n() {
                return Err(format!(
                    "tree is over {} vertices but the graph has {}",
                    tree.n(),
                    g.n()
                ));
            }
            tree
        }
        None => {
            let adj = g.undirected_skeleton();
            match args.builder.as_str() {
                "bfs" => builders::bfs_tree(&adj, RecursionLimits::default()),
                "centroid" => builders::centroid_tree(&adj, RecursionLimits::default()),
                other => return Err(format!("unknown builder '{other}' (bfs|centroid)")),
            }
        }
    };
    tree.validate(&g.undirected_skeleton())
        .map_err(|e| format!("invalid decomposition: {e}"))?;
    if let Some(path) = &args.tree_out {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        spsep::separator::io::write_tree(&tree, &mut BufWriter::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote decomposition to {path}");
    }
    Ok(tree)
}

fn run() -> Result<(), String> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => {
            std::process::exit(if code == ExitCode::SUCCESS { 0 } else { 2 });
        }
    };
    let g = load_graph(&args.graph_path)?;
    match args.command.as_str() {
        "info" => {
            let tree = obtain_tree(&g, &args)?;
            println!("graph: n = {}, m = {}", g.n(), g.m());
            println!(
                "tree : {} nodes, height {}, max leaf {}, Σ|S| = {}, root |S| = {}",
                tree.nodes().len(),
                tree.height(),
                tree.max_leaf_size(),
                tree.total_separator_size(),
                tree.node(0).separator.len()
            );
            let metrics = Metrics::new();
            let pre = preprocess::<Tropical>(&g, &tree, args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            println!(
                "E+   : {} shortcut edges; preprocessing {}",
                pre.stats().eplus_edges,
                metrics.report()
            );
        }
        "tree" => {
            if args.tree_out.is_none() {
                return Err("tree command needs -o <out.st>".into());
            }
            let tree = obtain_tree(&g, &args)?;
            println!(
                "built decomposition: {} nodes, height {}",
                tree.nodes().len(),
                tree.height()
            );
        }
        "sssp" => {
            if args.source >= g.n() {
                return Err(format!("source {} out of range", args.source));
            }
            let tree = obtain_tree(&g, &args)?;
            let metrics = Metrics::new();
            let pre = preprocess::<Tropical>(&g, &tree, args.algo, &metrics)
                .map_err(|e| e.to_string())?;
            let (dist, stats) = pre.distances_seq(args.source);
            let reachable = dist.iter().filter(|d| d.is_finite()).count();
            let max = dist
                .iter()
                .filter(|d| d.is_finite())
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            println!(
                "sssp from {}: {} reachable of {}, max distance {:.6}, {} relaxations",
                args.source,
                reachable,
                g.n(),
                max,
                stats.relaxations
            );
            if args.print_dists {
                let mut out = String::new();
                for (v, d) in dist.iter().enumerate() {
                    use std::fmt::Write;
                    if d.is_finite() {
                        writeln!(out, "{v} {d}").unwrap();
                    } else {
                        writeln!(out, "{v} inf").unwrap();
                    }
                }
                print!("{out}");
            }
        }
        "reach" => {
            if args.source >= g.n() {
                return Err(format!("source {} out of range", args.source));
            }
            let tree = obtain_tree(&g, &args)?;
            let metrics = Metrics::new();
            let gb = g.map_weights(|_| true);
            let pre = spsep::core::reach::preprocess_reach(&gb, &tree, &metrics);
            let (row, _) = pre.distances_seq(args.source);
            let count = row.iter().filter(|&&r| r).count();
            println!("reach from {}: {} of {} vertices", args.source, count, g.n());
            if args.print_dists {
                let ids: Vec<String> = row
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r)
                    .map(|(v, _)| v.to_string())
                    .collect();
                println!("{}", ids.join(" "));
            }
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
