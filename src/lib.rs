//! `spsep` — facade crate re-exporting the whole workspace.
//!
//! A faithful, parallel Rust implementation of
//! *Efficient Parallel Shortest-Paths in Digraphs with a Separator
//! Decomposition* (Edith Cohen, SPAA 1993 / J. Algorithms 21(2), 1996).
//!
//! Downstream users depend on this crate and get:
//!
//! * [`graph`] — digraphs, semirings, generators, bit-matrices;
//! * [`separator`] — separator decomposition trees and builders;
//! * [`core`] — the paper's algorithms: `E⁺` augmentation (Algorithms 4.1
//!   and 4.3), the scheduled Bellman–Ford query engine, reachability;
//! * [`baselines`] — Dijkstra/Bellman–Ford/Johnson/Floyd–Warshall for
//!   comparison;
//! * [`planar`] — the Section 6 few-faces pipeline;
//! * [`tvpi`] — the difference-constraint application;
//! * [`pram`] — work/depth accounting under the EREW PRAM cost model;
//! * [`trace`] — hierarchical spans, the Chrome trace-event exporter, and
//!   the human span-tree report (DESIGN.md §9);
//! * [`serve`] — the long-lived TCP query daemon: framed protocol,
//!   admission control, graceful shutdown, and the fault-injecting
//!   load harness (DESIGN.md §11);
//! * [`telemetry`] — the lock-free metrics registry, Prometheus text
//!   exposition, and the slow-query flight recorder behind the
//!   daemon's live telemetry plane (DESIGN.md §14).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use spsep_baselines as baselines;
pub use spsep_core as core;
pub use spsep_graph as graph;
pub use spsep_planar as planar;
pub use spsep_pram as pram;
pub use spsep_separator as separator;
pub use spsep_serve as serve;
pub use spsep_telemetry as telemetry;
pub use spsep_trace as trace;
pub use spsep_tvpi as tvpi;
