//! Dispatch planning on a synthetic road network.
//!
//! ```text
//! cargo run --release --example road_network
//! ```
//!
//! The scenario the paper's introduction motivates: a planar-like
//! road network (random geometric graph — a 2-D overlap graph in the
//! Miller–Teng–Vavasis sense), many shortest-path queries from a set of
//! depots, and real-valued edge weights — here travel times skewed by a
//! potential (altitude) term, so some edges are *negative* (regenerative
//! braking, one-way descents): Dijkstra alone is out, Johnson's algorithm
//! or this paper are the contenders.
//!
//! The example is *tested*: `cargo test --example road_network` runs
//! the same dispatch pipeline on an 800-intersection network, so the
//! negative-arc story stays verified against Johnson forever.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep::core::{preprocess, Algorithm};
use spsep::graph::semiring::Tropical;
use spsep::graph::generators;
use spsep::pram::Metrics;
use spsep::separator::{builders, RecursionLimits};
use std::time::Instant;

/// Run the dispatch scenario on an `n`-intersection network with
/// `n_depots` depots; returns the worst absolute deviation from
/// Johnson's algorithm (asserted < 1e-6 inside).
fn run(n: usize, n_depots: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(42);

    // A road network: n intersections scattered in the unit square,
    // roads between intersections closer than the connection radius.
    let radius = (2.5 / n as f64).sqrt();
    let (roads, coords) = generators::geometric(n, 2, radius, &mut rng);
    // Altitude potential makes some directed travel times negative while
    // keeping every cycle nonnegative (physics!).
    let roads = generators::skew_by_potentials(&roads, 0.02, &mut rng);
    let negative = roads.edges().iter().filter(|e| e.w < 0.0).count();
    println!(
        "road network: n = {}, m = {}, negative arcs = {}",
        roads.n(),
        roads.m(),
        negative
    );

    // Depots: random intersections.
    let depots: Vec<usize> = (0..n_depots).map(|_| rng.gen_range(0..n)).collect();

    // Separator pipeline.
    let t0 = Instant::now();
    let adj = roads.undirected_skeleton();
    let tree = builders::geometric_tree(&adj, &coords, RecursionLimits::default());
    let t_tree = t0.elapsed();
    let metrics = Metrics::new();
    let t1 = Instant::now();
    let pre = preprocess::<Tropical>(&roads, &tree, Algorithm::LeavesUp, &metrics)
        .expect("no negative cycles (potential-skewed)");
    let t_pre = t1.elapsed();
    let t2 = Instant::now();
    let sep_results = pre.distances_multi(&depots);
    let t_query = t2.elapsed();
    println!(
        "separator: tree {:.0?} + E+ {:.0?} ({} shortcuts) + {} queries {:.0?}",
        t_tree,
        t_pre,
        pre.stats().eplus_edges,
        depots.len(),
        t_query
    );

    // Baseline: Johnson's algorithm (Bellman–Ford potentials + Dijkstra
    // per depot) — the sequential bound the paper's intro cites.
    let t3 = Instant::now();
    let johnson = spsep::baselines::johnson(&roads, &depots).expect("feasible");
    let t_johnson = t3.elapsed();
    println!("johnson:   {} queries in {:.0?}", depots.len(), t_johnson);

    // Agreement.
    let mut worst = 0.0f64;
    for (i, row) in sep_results.iter().enumerate() {
        for (v, &a) in row.iter().enumerate().take(n) {
            let b = johnson[i].dist[v];
            if a.is_finite() && b.is_finite() {
                worst = worst.max((a - b).abs());
            } else {
                assert_eq!(a.is_finite(), b.is_finite());
            }
        }
    }
    println!("max |Δ| across all depots: {worst:.2e}");
    assert!(worst < 1e-6);

    // Dispatch decision: nearest depot per intersection.
    let mut assigned = vec![usize::MAX; n];
    let mut best = vec![f64::INFINITY; n];
    for (i, row) in sep_results.iter().enumerate() {
        for v in 0..n {
            if row[v] < best[v] {
                best[v] = row[v];
                assigned[v] = i;
            }
        }
    }
    let covered = best.iter().filter(|d| d.is_finite()).count();
    println!(
        "dispatch table: {}/{} intersections covered; sample: intersection {} ← depot #{} ({:.3})",
        covered,
        n,
        n / 2,
        assigned[n / 2],
        best[n / 2]
    );
    worst
}

fn main() {
    run(20_000, 24);
}

#[cfg(test)]
mod tests {
    #[test]
    fn dispatch_agrees_with_johnson_on_a_small_network() {
        assert!(super::run(800, 6) < 1e-6);
    }
}
