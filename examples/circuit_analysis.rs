//! Static timing + reachability analysis of a synthetic logic circuit —
//! the path-algebra face of the paper (comment (iii)) plus the
//! reachability specialization of Sections 4–5.
//!
//! ```text
//! cargo run --release --example circuit_analysis
//! ```
//!
//! The circuit is a layered DAG (gates in pipeline stages). Three
//! analyses run on the *same* preprocessed decomposition:
//!
//! * **reachability** (cone-of-influence): boolean semiring with
//!   bit-matrix kernels;
//! * **critical path** (max, +): the longest delay from the input pins;
//! * **minimum slack routing** (min, +): the classic tropical algebra.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep::core::{preprocess, reach, Algorithm};
use spsep::graph::semiring::{MaxPlus, Tropical};
use spsep::graph::{generators, DiGraph};
use spsep::pram::Metrics;
use spsep::separator::{builders, RecursionLimits};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // A 24-stage pipeline, 48 gates per stage, fan-out 3; delays in
    // [0.8ns, 2.4ns].
    let (layers, width, fanout) = (24, 48, 3);
    let dag = generators::layered_dag(layers, width, fanout, &mut rng);
    let circuit: DiGraph<f64> = dag.map_weights(|_| rng.gen_range(0.8..2.4));
    println!(
        "circuit: {} gates in {layers} stages, {} wires",
        circuit.n(),
        circuit.m()
    );

    // One decomposition serves all three algebras (paper comment (iv):
    // the tree depends only on the undirected skeleton).
    let adj = circuit.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits::default());
    tree.validate(&adj).expect("valid decomposition");
    println!(
        "decomposition: {} nodes, height {}",
        tree.nodes().len(),
        tree.height()
    );

    // 1. Cone of influence from input pin 0 (boolean, bit-matrix kernels).
    let metrics = Metrics::new();
    let bool_circuit = circuit.map_weights(|_| true);
    let reach_pre = reach::preprocess_reach(&bool_circuit, &tree, &metrics);
    let cone: usize = reach_pre
        .distances_seq(0)
        .0
        .iter()
        .filter(|&&r| r)
        .count();
    println!(
        "cone of influence of pin 0: {cone} gates (bitmatrix work = {} word-ops)",
        metrics.work_of(spsep::pram::Counter::MatMul)
    );
    // Cross-check against BFS.
    let bfs: usize = spsep::baselines::reachable_from(&circuit, 0)
        .iter()
        .filter(|&&r| r)
        .count();
    assert_eq!(cone, bfs);

    // 2. Critical path from every input pin (max-plus on the DAG).
    let metrics = Metrics::new();
    let timing = preprocess::<MaxPlus>(&circuit, &tree, Algorithm::LeavesUp, &metrics)
        .expect("DAGs have no positive cycles");
    let inputs: Vec<usize> = (0..width).collect();
    let arrival = timing.distances_multi(&inputs);
    let mut worst = (0usize, 0usize, f64::NEG_INFINITY);
    for (pin, row) in arrival.iter().enumerate() {
        for (gate, &t) in row.iter().enumerate() {
            if t.is_finite() && t > worst.2 {
                worst = (pin, gate, t);
            }
        }
    }
    println!(
        "critical path: input pin {} → gate {} with delay {:.2} ns",
        worst.0, worst.1, worst.2
    );
    // Cross-check one pin against the generic reference.
    let reference = spsep::baselines::bellman_ford_semiring::<MaxPlus>(&circuit, worst.0)
        .expect("DAG");
    assert!((reference[worst.1] - worst.2).abs() < 1e-6);

    // 3. Fastest propagation (tropical), e.g. for clock-skew budgeting.
    let metrics = Metrics::new();
    let fastest = preprocess::<Tropical>(&circuit, &tree, Algorithm::PathDoubling, &metrics)
        .expect("nonnegative delays");
    let (dist, stats) = fastest.distances_seq(worst.0);
    let reachable = dist.iter().filter(|d| d.is_finite()).count();
    println!(
        "fastest propagation from pin {}: {reachable} reachable gates, \
         min arrival at critical gate {:.2} ns vs max {:.2} ns ({} relaxations)",
        worst.0, dist[worst.1], worst.2, stats.relaxations
    );
    assert!(dist[worst.1] <= worst.2 + 1e-9);
}
