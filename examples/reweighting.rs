//! Reusing one decomposition across many weightings — paper comment (iv):
//! "the separator decomposition for a graph G depends only on the
//! undirected unweighted skeleton of G, and hence needs to be computed
//! only once for a group of instances which differ in the weights and
//! direction on edges."
//!
//! ```text
//! cargo run --release --example reweighting
//! ```
//!
//! Scenario: a traffic network re-planned every few minutes as congestion
//! changes. The decomposition tree is built (and serialized) once; each
//! re-plan only re-runs the `E⁺` construction with fresh weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep::core::{preprocess, Algorithm};
use spsep::graph::semiring::Tropical;
use spsep::graph::DiGraph;
use spsep::pram::Metrics;
use spsep::separator::{builders, io as tree_io, RecursionLimits};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let dims = [48usize, 48];
    let (base, _) = spsep::graph::generators::grid(&dims, &mut rng);

    // Build the decomposition ONCE and round-trip it through the on-disk
    // format (what a deployed system would load at startup).
    let t0 = Instant::now();
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    let build_time = t0.elapsed();
    let mut blob = Vec::new();
    tree_io::write_tree(&tree, &mut blob).expect("serialize");
    let tree = tree_io::read_tree(blob.as_slice()).expect("deserialize");
    println!(
        "decomposition: {} nodes, height {}, built in {:.1?}, {} bytes serialized",
        tree.nodes().len(),
        tree.height(),
        build_time,
        blob.len()
    );

    // Five "traffic epochs": same skeleton, different weights — including
    // one epoch with reversed rush-hour directions.
    let depots = [0usize, 1000, 2303];
    for epoch in 0..5 {
        let congestion: Vec<f64> = (0..base.m()).map(|_| rng.gen_range(1.0..4.0)).collect();
        let reversed = epoch == 3;
        let g: DiGraph<f64> = if reversed {
            DiGraph::from_edges(
                base.n(),
                base.edges()
                    .iter()
                    .enumerate()
                    .map(|(i, e)| {
                        spsep::graph::Edge::new(e.to as usize, e.from as usize, e.w * congestion[i])
                    })
                    .collect(),
            )
        } else {
            let mut i = 0;
            base.map_weights(|e| {
                let w = e.w * congestion[i];
                i += 1;
                w
            })
        };
        let metrics = Metrics::new();
        let t1 = Instant::now();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
            .expect("positive weights");
        let rows = pre.distances_multi(&depots);
        let replan = t1.elapsed();
        // Sanity: agree with Dijkstra on one depot.
        let truth = spsep::baselines::dijkstra(&g, depots[0]);
        let worst = rows[0]
            .iter()
            .zip(&truth.dist)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-6);
        println!(
            "epoch {epoch}{}: re-plan {:.1?} ({} shortcuts), mean travel time from depot 0 = {:.2}",
            if reversed { " (rush-hour reversal)" } else { "" },
            replan,
            pre.stats().eplus_edges,
            rows[0].iter().filter(|d| d.is_finite()).sum::<f64>() / g.n() as f64
        );
    }
    println!("one tree, five weightings — no re-decomposition needed.");
}
