//! Quickstart: the five-minute tour of the separator shortest-path
//! pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a weighted 64×64 grid digraph (the paper's flagship
//! `k^{1/2}`-separator family), decomposes it, computes the `E⁺`
//! augmentation, answers distance queries with the scheduled
//! Bellman–Ford, and cross-checks against Dijkstra.
//!
//! The example is *tested*: `cargo test --example quickstart` runs the
//! same pipeline on a 12×12 grid, so this file can never rot into
//! documentation that no longer compiles or no longer agrees with
//! Dijkstra.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep::core::{analysis, preprocess, query, Algorithm};
use spsep::graph::semiring::Tropical;
use spsep::graph::generators;
use spsep::pram::Metrics;
use spsep::separator::{builders, RecursionLimits};

/// Run the whole tour on a `side`×`side` grid; returns the worst
/// absolute deviation from Dijkstra (asserted < 1e-6 inside).
fn run(side: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A graph with a known separator structure: a side×side grid with
    //    random weights in [1, 2) on every directed edge.
    let dims = [side, side];
    let (g, _coords) = generators::grid(&dims, &mut rng);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // 2. The separator decomposition tree (hyperplane separators; this is
    //    what the paper's Figure 1 shows for the 9×9 grid).
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    println!(
        "tree:  {} nodes, height d_G = {}, root |S| = {}",
        tree.nodes().len(),
        tree.height(),
        tree.node(0).separator.len()
    );

    // 3. Preprocess: compute E⁺ (Algorithm 4.1) and compile the phase
    //    schedule of Section 3.2.
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
        .expect("no negative cycles in this graph");
    let stats = pre.stats();
    println!(
        "E+:    {} shortcut edges (raw candidate pairs {}), preprocessing {}",
        stats.eplus_edges,
        stats.raw_pairs,
        metrics.report()
    );

    // 4. Theorem 3.1 in action: the augmented graph has a tiny
    //    minimum-weight diameter.
    let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
    println!("diam bound: 4·d_G + 2l + 1 = {bound}");

    // 5. Query: distances from a corner, scheduled Bellman–Ford.
    let source = 0usize;
    let (dist, qstats) = pre.distances_seq(source);
    println!(
        "query: {} relaxations over {} nominal phases",
        qstats.relaxations, qstats.phases
    );

    // 6. Cross-check against Dijkstra and rebuild one explicit path.
    let truth = spsep::baselines::dijkstra(&g, source);
    let worst = dist
        .iter()
        .zip(&truth.dist)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |Δ| vs Dijkstra: {worst:.2e}");
    assert!(worst < 1e-6, "distances must agree");

    let target = g.n() - 1; // opposite corner
    let parent = query::shortest_path_tree::<Tropical>(&g, source, &dist);
    let path = query::path_from_tree(&g, &parent, source, target).expect("grid is connected");
    println!(
        "path 0 → {}: {} hops, weight {:.3}",
        target,
        path.len() - 1,
        dist[target]
    );

    // 7. Multi-source: the per-source work is what Table 1 prices.
    let sources: Vec<usize> = (0..16).map(|i| (i * g.n() / 16).min(g.n() - 1)).collect();
    let all = pre.distances_multi(&sources);
    println!(
        "multi-source: {} sources, per-source arc bound = {}",
        all.len(),
        pre.arcs_per_query()
    );
    let _ = analysis::fit_exponent(&[1.0, 2.0], &[1.0, 2.0]); // see benches for the Table 1 sweeps
    println!("done.");
    worst
}

fn main() {
    run(64);
}

#[cfg(test)]
mod tests {
    #[test]
    fn quickstart_pipeline_agrees_with_dijkstra() {
        assert!(super::run(12) < 1e-6);
    }
}
