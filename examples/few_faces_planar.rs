//! Section 6 end-to-end: shortest paths on a planar graph whose vertices
//! lie on few faces, via the hammock pipeline.
//!
//! ```text
//! cargo run --release --example few_faces_planar
//! ```
//!
//! A `side × side` skeleton with ladder hammocks on every skeleton edge
//! gives `q = side² ≪ n` — the regime where reducing to `G′` (on the
//! attachment vertices) and solving `G′` with its grid separator tree
//! beats running the main algorithm on all of `G`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep::core::{preprocess, Algorithm};
use spsep::graph::semiring::Tropical;
use spsep::planar::{generate_hammock_graph, HammockSP};
use spsep::pram::Metrics;
use spsep::separator::{builders, RecursionLimits};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let (side, ladder) = (8, 40);
    let hg = generate_hammock_graph(side, ladder, &mut rng);
    let n = hg.graph.n();
    println!(
        "few-faces planar graph: n = {n}, m = {}, q = {} attachment vertices, {} hammocks",
        hg.graph.m(),
        hg.q_vertices,
        hg.hammocks.len()
    );

    // Pipeline A (Section 6): hammock tables → G′ → core on G′.
    let metrics_a = Metrics::new();
    let t0 = Instant::now();
    let sp = HammockSP::preprocess(&hg, &metrics_a);
    let t_hammock_pre = t0.elapsed();
    let sources: Vec<usize> = (0..8).map(|i| i * (n / 8)).collect();
    let t1 = Instant::now();
    let rows_a = sp.distances_multi(&sources);
    let t_hammock_q = t1.elapsed();
    println!(
        "hammock pipeline: preprocess {:.0?} (G′ has {} shortcuts), {} queries {:.0?}",
        t_hammock_pre,
        sp.gprime_stats().eplus_edges,
        sources.len(),
        t_hammock_q
    );

    // Pipeline B: the main algorithm directly on all of G.
    let metrics_b = Metrics::new();
    let t2 = Instant::now();
    let adj = hg.graph.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits::default());
    let pre = preprocess::<Tropical>(&hg.graph, &tree, Algorithm::LeavesUp, &metrics_b)
        .expect("positive weights");
    let t_direct_pre = t2.elapsed();
    let t3 = Instant::now();
    let rows_b = pre.distances_multi(&sources);
    let t_direct_q = t3.elapsed();
    println!(
        "direct pipeline:  preprocess {:.0?} ({} shortcuts), {} queries {:.0?}",
        t_direct_pre,
        pre.stats().eplus_edges,
        sources.len(),
        t_direct_q
    );

    // Both must agree with each other (and with Dijkstra on one source).
    let mut worst = 0.0f64;
    for (ra, rb) in rows_a.iter().zip(&rows_b) {
        for (a, b) in ra.iter().zip(rb) {
            if a.is_finite() && b.is_finite() {
                worst = worst.max((a - b).abs());
            }
        }
    }
    let dj = spsep::baselines::dijkstra(&hg.graph, sources[0]);
    for (a, b) in rows_a[0].iter().zip(&dj.dist) {
        if a.is_finite() {
            worst = worst.max((a - b).abs());
        }
    }
    println!("max |Δ| across pipelines and Dijkstra: {worst:.2e}");
    assert!(worst < 1e-6);

    // Point queries through the cached G′ rows.
    let mut cache = sp.gprime_cache();
    let pairs = [(0usize, n - 1), (n / 3, 2 * n / 3), (1, n / 2)];
    for (u, v) in pairs {
        let d = sp.distance(u, v, &mut cache);
        println!("d({u} → {v}) = {d:.3}");
    }
}
