//! Solving a wafer-fab style scheduling problem as a system of difference
//! constraints — the paper's "linear inequalities with two variables per
//! inequality" application.
//!
//! ```text
//! cargo run --release --example task_scheduling
//! ```
//!
//! Each processing station on a `rows × cols` fab floor gets a start
//! time; neighbouring stations have precedence ("downstream starts after
//! upstream finishes") and max-lag constraints ("buffers overflow if the
//! downstream start drifts more than `slack` behind"). The constraint
//! graph is exactly a 2-D grid — the paper's `μ = 1/2` family — so the
//! separator engine solves it with `Õ(n²)`-ish preprocessing instead of
//! the `Õ(n³)` Floyd–Warshall term in the generic Cohen–Megiddo bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep::pram::Metrics;
use spsep::tvpi::{grid_schedule_system, Solution};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let (rows, cols) = (40, 50);
    let sys = grid_schedule_system(rows, cols, 10.0, 3.0, &mut rng);
    println!(
        "scheduling system: {} variables, {} constraints",
        sys.num_vars(),
        sys.len()
    );

    // Solve through the separator pipeline.
    let metrics = Metrics::new();
    let t0 = Instant::now();
    let solution = sys.solve(&metrics);
    let t_sep = t0.elapsed();
    let x = match solution {
        Solution::Feasible(x) => x,
        Solution::Infeasible => panic!("generator plants a feasible schedule"),
    };
    sys.check(&x, 1e-9).expect("assignment satisfies every constraint");
    println!(
        "separator solve: {:.0?}, {} (pram cost model)",
        t_sep,
        metrics.report()
    );

    // Reference: plain Bellman–Ford on the constraint graph.
    let t1 = Instant::now();
    let reference = sys.solve_bellman_ford();
    let t_bf = t1.elapsed();
    println!("bellman–ford solve: {:.0?}", t_bf);
    match reference {
        Solution::Feasible(y) => {
            sys.check(&y, 1e-9).unwrap();
            let worst = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            println!("solutions agree to {worst:.2e}");
        }
        Solution::Infeasible => unreachable!(),
    }

    // Read the schedule: the critical (latest) and earliest stations.
    let (argmax, max) = x
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let (argmin, min) = x
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "schedule span: station {} starts first ({:.2}), station {} last ({:.2}); makespan {:.2}",
        argmin,
        min,
        argmax,
        max,
        max - min
    );

    // Tightening the buffers until the system breaks:
    // (slack = 0 exactly sits on the feasibility boundary, where float
    // rounding decides; stay clear of it.)
    for slack in [1.0, 0.25, 0.01, -0.05] {
        let mut rng = StdRng::seed_from_u64(2026);
        let sys = grid_schedule_system(rows, cols, 10.0, slack, &mut rng);
        let metrics = Metrics::new();
        let feasible = matches!(sys.solve(&metrics), Solution::Feasible(_));
        println!("max-lag slack {slack:>6.2} → {}", if feasible { "feasible" } else { "INFEASIBLE (negative cycle found in preprocessing)" });
    }
}
