//! Separator decomposition trees (Section 2.3 of the paper).
//!
//! A *separator decomposition tree* `T_G` of a graph `G` is a rooted binary
//! tree whose nodes `t` carry a vertex set `V(t)` and a separator
//! `S(t) ⊆ V(t)` of the induced subgraph `G(t)`; the children partition
//! `G(t) \ S(t)` (each child additionally receives the separator vertices,
//! see DESIGN.md §5). Derived per node is the *boundary*
//! `B(t) = (S(parent) ∪ B(parent)) ∩ V(t)`, and per vertex the *level*
//! (depth of the shallowest separator containing it) and *node* maps used
//! throughout Section 3 of the paper.
//!
//! The decomposition depends only on the **undirected unweighted skeleton**
//! of `G` (paper comment (iv)), so builders consume the skeleton adjacency
//! and the same tree can be reused across weightings/orientations.
//!
//! Builders provided:
//!
//! * [`builders::grid_tree`] — exact hyperplane separators for d-dimensional
//!   grids: the `k^((d-1)/d)` family of the paper's introduction (and its
//!   Figure 1);
//! * [`builders::geometric_tree`] — coordinate-median separators for embedded
//!   (overlap-style) graphs, standing in for Miller–Teng–Vavasis /
//!   Gazit–Miller (see DESIGN.md substitution table);
//! * [`builders::centroid_tree`] — single-vertex centroid separators for trees
//!   (`μ → 0`);
//! * [`builders::bfs_tree`] — BFS-level separators for arbitrary
//!   graphs (no size guarantee in general; tight on bounded-genus/grid
//!   inputs).
//!
//! [`SepTree::validate`] checks every structural invariant (Prop. 2.1 of
//! the paper) and is exercised by the property tests.

// Library code must stay panic-free on untrusted input: unwraps and
// expects are confined to #[cfg(test)] code (internal invariants use
// let-else + unreachable!, which documents *why* they cannot fire).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod builders;
pub mod engine;
pub mod io;
pub mod order;
pub mod planar;
pub mod tree;
pub mod treewidth;

pub use engine::{RecursionLimits, Separation, SubProblem};
pub use order::separator_locality_order;
pub use planar::{
    certify_near_planar, planar_level_tree, road_network, separator_quality, NearPlanarCheck,
    QualityReport,
};
pub use tree::{NodeId, SepNode, SepTree, UNDEFINED_LEVEL};
