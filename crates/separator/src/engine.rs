//! Generic recursive decomposition engine.
//!
//! Builders supply a *separator finder* — a function that, given one
//! subproblem (an induced subgraph plus optional payload such as
//! coordinates), returns a [`Separation`]. The engine handles everything
//! else: disconnected subgraphs, recursion (in parallel via
//! `rayon::join`), progress guarantees, child-subproblem extraction, and
//! final assembly into a [`SepTree`].
//!
//! Per DESIGN.md §5, every separator vertex is placed in **both**
//! children (`V(tᵢ) = Vᵢ ∪ S(t)`), which guarantees
//! `S(t) ⊆ B(t₁) ∩ B(t₂)` — the property Algorithm 4.1 relies on.

use crate::tree::{SepNode, SepTree};
use crate::builders::components_split;

/// A subproblem handed to a separator finder: the induced subgraph on
/// `global` (local ids are positions in `global`), with adjacency `adj`
/// and per-vertex payload rows `payload` (e.g. coordinates;
/// `payload_width` values per vertex, possibly 0).
pub struct SubProblem {
    /// Global vertex id of each local vertex.
    pub global: Vec<u32>,
    /// Induced undirected adjacency over local ids.
    pub adj: Vec<Vec<u32>>,
    /// Row-major payload, `payload_width` values per local vertex.
    pub payload: Vec<f64>,
    /// Number of payload values per vertex (0 = no payload).
    pub payload_width: usize,
}

impl SubProblem {
    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// `true` if the subproblem is empty.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Payload row of local vertex `v`.
    pub fn payload_of(&self, v: usize) -> &[f64] {
        &self.payload[v * self.payload_width..(v + 1) * self.payload_width]
    }
}

/// Output of a separator finder, all in **local** ids of the subproblem:
/// `separator` must separate `side1` from `side2`, and the three sets must
/// partition the subproblem's vertices.
pub struct Separation {
    /// `S(t)` (local ids).
    pub separator: Vec<u32>,
    /// One side of the cut (local ids).
    pub side1: Vec<u32>,
    /// The other side (local ids).
    pub side2: Vec<u32>,
}

/// Knobs for the recursion.
#[derive(Copy, Clone, Debug)]
pub struct RecursionLimits {
    /// Subproblems of at most this many vertices become leaves.
    pub leaf_size: usize,
    /// Hard recursion-depth cap; deeper subproblems become leaves.
    /// `None` (default) auto-computes `8·⌈log₂ n⌉ + 32` at [`decompose`]
    /// time — far above any balanced builder's height, a safety net
    /// against adversarial finders that would otherwise recurse `O(n)`
    /// deep (e.g. a universal vertex defeating BFS levels).
    pub max_depth: Option<usize>,
}

impl Default for RecursionLimits {
    fn default() -> Self {
        RecursionLimits {
            leaf_size: 4,
            max_depth: None,
        }
    }
}

/// Raw recursion output, flattened later.
enum RawTree {
    Leaf {
        vertices: Vec<u32>, // global, sorted
    },
    Internal {
        vertices: Vec<u32>,  // global, sorted
        separator: Vec<u32>, // global, sorted
        children: Box<(RawTree, RawTree)>,
    },
}

/// Run the engine: decompose the graph whose undirected skeleton is `adj`
/// (global adjacency), with `payload_width` payload values per vertex from
/// `payload`, using `finder` to split connected subproblems.
///
/// The finder is only invoked on **connected** subproblems with more than
/// `limits.leaf_size` vertices; disconnected subproblems are split by
/// components with an empty separator. If a finder fails to make progress
/// (a child as large as the parent), the subproblem becomes a leaf — this
/// keeps the engine total on adversarial inputs at the price of a large
/// `l` (tests assert builders never trigger it on their target families).
pub fn decompose<F>(
    adj: &[Vec<u32>],
    payload: &[f64],
    payload_width: usize,
    limits: RecursionLimits,
    finder: &F,
) -> SepTree
where
    F: Fn(&SubProblem) -> Separation + Sync,
{
    let n = adj.len();
    assert!(n > 0, "cannot decompose the empty graph");
    if payload_width > 0 {
        assert_eq!(payload.len(), n * payload_width);
    }
    let limits = RecursionLimits {
        max_depth: Some(limits.max_depth.unwrap_or_else(|| {
            8 * (usize::BITS - n.leading_zeros()) as usize + 32
        })),
        ..limits
    };
    let root_sub = SubProblem {
        global: (0..n as u32).collect(),
        adj: adj.to_vec(),
        payload: payload.to_vec(),
        payload_width,
    };
    let raw = recurse(root_sub, limits, finder, 0);
    let mut nodes = Vec::new();
    flatten(raw, None, 0, &mut nodes);
    SepTree::assemble(n, nodes)
}

fn recurse<F>(sub: SubProblem, limits: RecursionLimits, finder: &F, depth: usize) -> RawTree
where
    F: Fn(&SubProblem) -> Separation + Sync,
{
    if sub.len() <= limits.leaf_size || depth >= limits.max_depth.unwrap_or(usize::MAX) {
        return leaf_from(&sub);
    }
    // Disconnected subproblems split along components with S = ∅.
    let sep = match components_split(&sub.adj) {
        Some((side1, side2)) => Separation {
            separator: Vec::new(),
            side1,
            side2,
        },
        None => finder(&sub),
    };
    debug_assert_eq!(
        sep.separator.len() + sep.side1.len() + sep.side2.len(),
        sub.len(),
        "separation must partition the subproblem"
    );
    // Progress guard.
    let c1 = sep.side1.len() + sep.separator.len();
    let c2 = sep.side2.len() + sep.separator.len();
    if c1 >= sub.len() || c2 >= sub.len() {
        return leaf_from(&sub);
    }
    let separator_global: Vec<u32> = {
        let mut s: Vec<u32> = sep.separator.iter().map(|&v| sub.global[v as usize]).collect();
        s.sort_unstable();
        s
    };
    let vertices_global = {
        let mut v = sub.global.clone();
        v.sort_unstable();
        v
    };
    let sub1 = extract_child(&sub, &sep.side1, &sep.separator);
    let sub2 = extract_child(&sub, &sep.side2, &sep.separator);
    drop(sub);
    // Weighted by total subproblem size: tiny recursions (small leaves
    // near the bottom of the tree) run inline instead of paying a pool
    // handoff per node.
    let (t1, t2) = rayon::join_weighted(
        sub1.len() + sub2.len(),
        || recurse(sub1, limits, finder, depth + 1),
        || recurse(sub2, limits, finder, depth + 1),
    );
    RawTree::Internal {
        vertices: vertices_global,
        separator: separator_global,
        children: Box::new((t1, t2)),
    }
}

fn leaf_from(sub: &SubProblem) -> RawTree {
    let mut vertices = sub.global.clone();
    vertices.sort_unstable();
    RawTree::Leaf { vertices }
}

/// Build the child subproblem on `side ∪ separator` (local ids of the
/// parent), preserving payload rows and the induced adjacency.
fn extract_child(parent: &SubProblem, side: &[u32], separator: &[u32]) -> SubProblem {
    let mut members: Vec<u32> = side.iter().chain(separator).copied().collect();
    members.sort_unstable();
    let mut local_of = vec![u32::MAX; parent.len()];
    for (i, &v) in members.iter().enumerate() {
        local_of[v as usize] = i as u32;
    }
    let mut adj = Vec::with_capacity(members.len());
    let mut global = Vec::with_capacity(members.len());
    let pw = parent.payload_width;
    let mut payload = Vec::with_capacity(members.len() * pw);
    for &v in &members {
        global.push(parent.global[v as usize]);
        if pw > 0 {
            payload.extend_from_slice(parent.payload_of(v as usize));
        }
        let neigh: Vec<u32> = parent.adj[v as usize]
            .iter()
            .filter_map(|&u| {
                let l = local_of[u as usize];
                (l != u32::MAX).then_some(l)
            })
            .collect();
        adj.push(neigh);
    }
    SubProblem {
        global,
        adj,
        payload,
        payload_width: pw,
    }
}

fn flatten(raw: RawTree, parent: Option<u32>, level: u32, nodes: &mut Vec<SepNode>) -> u32 {
    let id = nodes.len() as u32;
    match raw {
        RawTree::Leaf { vertices } => {
            nodes.push(SepNode {
                vertices,
                separator: Vec::new(),
                boundary: Vec::new(),
                children: None,
                parent,
                level,
            });
        }
        RawTree::Internal {
            vertices,
            separator,
            children,
        } => {
            nodes.push(SepNode {
                vertices,
                separator,
                boundary: Vec::new(),
                children: None,
                parent,
                level,
            });
            let (r1, r2) = *children;
            let c1 = flatten(r1, Some(id), level + 1, nodes);
            let c2 = flatten(r2, Some(id), level + 1, nodes);
            nodes[id as usize].children = Some((c1, c2));
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_adj(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|v| {
                let mut a = Vec::new();
                if v > 0 {
                    a.push(v as u32 - 1);
                }
                if v + 1 < n {
                    a.push(v as u32 + 1);
                }
                a
            })
            .collect()
    }

    /// Midpoint finder for paths: separator = local middle vertex by
    /// global order.
    fn midpoint_finder(sub: &SubProblem) -> Separation {
        let mut order: Vec<u32> = (0..sub.len() as u32).collect();
        order.sort_by_key(|&v| sub.global[v as usize]);
        let mid = order.len() / 2;
        Separation {
            separator: vec![order[mid]],
            side1: order[..mid].to_vec(),
            side2: order[mid + 1..].to_vec(),
        }
    }

    #[test]
    fn decompose_path_is_valid_and_logarithmic() {
        let adj = path_adj(33);
        let tree = decompose(&adj, &[], 0, RecursionLimits::default(), &midpoint_finder);
        tree.validate(&adj).expect("valid decomposition");
        assert!(tree.height() as usize <= 6, "height {}", tree.height());
        assert!(tree.max_leaf_size() <= 4);
        // Every separator of a path must have size ≤ 1.
        assert!(tree.nodes().iter().all(|t| t.separator.len() <= 1));
    }

    #[test]
    fn disconnected_subgraphs_split_on_components() {
        // Two disjoint paths 0–1–2 and 3–4–5.
        let mut adj = path_adj(3);
        adj.extend(path_adj(3).into_iter().map(|l| l.iter().map(|&v| v + 3).collect()));
        let tree = decompose(
            &adj,
            &[],
            0,
            RecursionLimits { leaf_size: 2, ..Default::default() },
            &midpoint_finder,
        );
        tree.validate(&adj).expect("valid");
        // Root must have an empty separator (component split).
        assert!(tree.node(0).separator.is_empty());
    }

    #[test]
    fn payload_rows_follow_vertices() {
        let adj = path_adj(8);
        let payload: Vec<f64> = (0..8).map(|v| v as f64 * 10.0).collect();
        let seen = std::sync::Mutex::new(Vec::new());
        let finder = |sub: &SubProblem| {
            for v in 0..sub.len() {
                let expect = sub.global[v] as f64 * 10.0;
                assert_eq!(sub.payload_of(v), &[expect]);
                seen.lock().unwrap().push(sub.global[v]);
            }
            midpoint_finder(sub)
        };
        let tree = decompose(&adj, &payload, 1, RecursionLimits { leaf_size: 2, ..Default::default() }, &finder);
        tree.validate(&adj).expect("valid");
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn no_progress_becomes_leaf() {
        // Finder that puts everything in side1 — engine must fall back to
        // a leaf instead of recursing forever.
        let adj = path_adj(10);
        let bad = |sub: &SubProblem| Separation {
            separator: vec![],
            side1: (0..sub.len() as u32).collect(),
            side2: vec![],
        };
        let tree = decompose(&adj, &[], 0, RecursionLimits { leaf_size: 2, ..Default::default() }, &bad);
        tree.validate(&adj).expect("valid (single giant leaf)");
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.max_leaf_size(), 10);
    }
}
