//! The [`SepTree`] data structure: nodes, boundaries, levels, validation.

use spsep_graph::SpsepError;

/// Index of a node within a [`SepTree`].
pub type NodeId = u32;

/// Sentinel level for vertices that belong to no separator (the proof of
/// Theorem 3.1 treats their level as `+∞`).
pub const UNDEFINED_LEVEL: u32 = u32::MAX;

/// One node `t` of a separator decomposition tree.
#[derive(Clone, Debug)]
pub struct SepNode {
    /// `V(t)`: vertices of the subgraph at this node (sorted global ids).
    pub vertices: Vec<u32>,
    /// `S(t)`: separator of `G(t)` (sorted; empty at leaves).
    pub separator: Vec<u32>,
    /// `B(t) = (S(parent) ∪ B(parent)) ∩ V(t)` (sorted; empty at root).
    pub boundary: Vec<u32>,
    /// Children, if internal.
    pub children: Option<(NodeId, NodeId)>,
    /// Parent, if not the root.
    pub parent: Option<NodeId>,
    /// Depth of this node (root = 0). The paper calls this `level(t)`.
    pub level: u32,
}

impl SepNode {
    /// `true` if this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A separator decomposition tree of a graph on `n` vertices.
///
/// Nodes are stored in **breadth-first order**: all nodes of depth `d`
/// precede all nodes of depth `d+1`, which lets Algorithm 4.1 process one
/// depth per parallel phase by slicing [`SepTree::nodes_at_level`].
#[derive(Clone, Debug)]
pub struct SepTree {
    n: usize,
    nodes: Vec<SepNode>,
    /// `level_off[d]..level_off[d+1]` indexes the nodes of depth `d`.
    level_off: Vec<u32>,
    /// `level(v)` per vertex ([`UNDEFINED_LEVEL`] if in no separator).
    vertex_level: Vec<u32>,
    /// `node(v)` per vertex: shallowest separator containing `v`, or the
    /// unique leaf containing `v`.
    vertex_node: Vec<NodeId>,
    /// Height `d_G` (max root-to-leaf edge count).
    height: u32,
    /// Max `|V(t)|` over leaves — upper-bounds the leaf min-weight
    /// diameter parameter `l` of Theorem 3.1 by `max_leaf_size - 1`.
    max_leaf_size: usize,
}

impl SepTree {
    /// Assemble a tree from nodes that already have `vertices`,
    /// `separator`, `children`, `parent` and `level` set (builders produce
    /// these via [`crate::engine`]); computes BFS order, boundaries and
    /// vertex maps.
    ///
    /// `n` is the number of vertices of the underlying graph.
    ///
    /// Panics if `nodes` is empty or any child/parent/vertex id is out
    /// of range — builders guarantee these preconditions. Untrusted
    /// node lists (deserialized or fault-injected) should go through
    /// [`SepTree::try_assemble`] instead.
    pub fn assemble(n: usize, nodes: Vec<SepNode>) -> SepTree {
        assert!(!nodes.is_empty(), "tree must have a root");
        // Reorder nodes breadth-first.
        let mut order: Vec<u32> = (0..nodes.len() as u32).collect();
        order.sort_by_key(|&i| nodes[i as usize].level);
        let mut renumber = vec![0u32; nodes.len()];
        for (new, &old) in order.iter().enumerate() {
            renumber[old as usize] = new as u32;
        }
        let mut bfs_nodes: Vec<SepNode> = order
            .iter()
            .map(|&old| {
                let mut node = nodes[old as usize].clone();
                node.children = node
                    .children
                    .map(|(a, b)| (renumber[a as usize], renumber[b as usize]));
                node.parent = node.parent.map(|p| renumber[p as usize]);
                node
            })
            .collect();
        let height = bfs_nodes.last().map(|t| t.level).unwrap_or(0);
        let mut level_off = vec![0u32; height as usize + 2];
        for t in &bfs_nodes {
            level_off[t.level as usize + 1] += 1;
        }
        for d in 0..height as usize + 1 {
            level_off[d + 1] += level_off[d];
        }
        // Boundaries, top-down (BFS order guarantees parents first).
        for i in 0..bfs_nodes.len() {
            let boundary = match bfs_nodes[i].parent {
                None => Vec::new(),
                Some(p) => {
                    let p = &bfs_nodes[p as usize];
                    let merged = sorted_union(&p.separator, &p.boundary);
                    sorted_intersection(&merged, &bfs_nodes[i].vertices)
                }
            };
            bfs_nodes[i].boundary = boundary;
        }
        // Vertex level / node maps: scan nodes in BFS (level) order.
        let mut vertex_level = vec![UNDEFINED_LEVEL; n];
        let mut vertex_node = vec![u32::MAX; n];
        for (i, t) in bfs_nodes.iter().enumerate() {
            for &v in &t.separator {
                if vertex_level[v as usize] == UNDEFINED_LEVEL {
                    vertex_level[v as usize] = t.level;
                    vertex_node[v as usize] = i as u32;
                }
            }
        }
        let mut max_leaf_size = 0usize;
        for (i, t) in bfs_nodes.iter().enumerate() {
            if t.is_leaf() {
                max_leaf_size = max_leaf_size.max(t.vertices.len());
                for &v in &t.vertices {
                    if vertex_level[v as usize] == UNDEFINED_LEVEL
                        && vertex_node[v as usize] == u32::MAX
                    {
                        vertex_node[v as usize] = i as u32;
                    }
                }
            }
        }
        SepTree {
            n,
            nodes: bfs_nodes,
            level_off,
            vertex_level,
            vertex_node,
            height,
            max_leaf_size,
        }
    }

    /// Index-safe variant of [`SepTree::assemble`] for untrusted node
    /// lists: verifies that the list is nonempty and that every
    /// child/parent link and vertex id is in range **before** assembly,
    /// reporting violations as [`SpsepError::InvalidDecomposition`]
    /// instead of panicking. Structural (Prop. 2.1) invariants are
    /// still checked separately by [`SepTree::validate`].
    pub fn try_assemble(n: usize, nodes: Vec<SepNode>) -> Result<SepTree, SpsepError> {
        if nodes.is_empty() {
            return Err(SpsepError::invalid_decomposition("tree must have a root"));
        }
        let len = nodes.len();
        for (i, t) in nodes.iter().enumerate() {
            if let Some((a, b)) = t.children {
                if a as usize >= len || b as usize >= len {
                    return Err(SpsepError::invalid_node(
                        i as u32,
                        format!("child id out of range 0..{len}"),
                    ));
                }
            }
            if let Some(p) = t.parent {
                if p as usize >= len {
                    return Err(SpsepError::invalid_node(
                        i as u32,
                        format!("parent id out of range 0..{len}"),
                    ));
                }
            }
            for &v in t.vertices.iter().chain(&t.separator).chain(&t.boundary) {
                if v as usize >= n {
                    return Err(SpsepError::invalid_node_vertex(
                        i as u32,
                        v,
                        format!("vertex id out of range 0..{n}"),
                    ));
                }
            }
        }
        Ok(SepTree::assemble(n, nodes))
    }

    /// Number of vertices of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All nodes in BFS order.
    pub fn nodes(&self) -> &[SepNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &SepNode {
        &self.nodes[id as usize]
    }

    /// Root id (always 0 after assembly).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Ids of the nodes at depth `d` (contiguous by construction).
    pub fn nodes_at_level(&self, d: u32) -> std::ops::Range<u32> {
        if d as usize + 1 >= self.level_off.len() {
            return 0..0;
        }
        self.level_off[d as usize]..self.level_off[d as usize + 1]
    }

    /// Tree height `d_G`.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Largest leaf `|V(t)|`; `l ≤ max_leaf_size − 1` in Theorem 3.1.
    pub fn max_leaf_size(&self) -> usize {
        self.max_leaf_size
    }

    /// `level(v)` — the paper's per-vertex level ([`UNDEFINED_LEVEL`] when
    /// `v` is in no separator).
    #[inline]
    pub fn vertex_level(&self, v: usize) -> u32 {
        self.vertex_level[v]
    }

    /// The full vertex level table.
    pub fn vertex_levels(&self) -> &[u32] {
        &self.vertex_level
    }

    /// `node(v)` — shallowest node whose separator contains `v`, else the
    /// leaf containing `v`.
    #[inline]
    pub fn vertex_node(&self, v: usize) -> NodeId {
        self.vertex_node[v]
    }

    /// Total `Σ_t |S(t)|` (diagnostics).
    pub fn total_separator_size(&self) -> usize {
        self.nodes.iter().map(|t| t.separator.len()).sum()
    }

    /// Sum over nodes of `|S(t)|² + |B(t)|²` — the size of the `E⁺`
    /// candidate set before deduplication (Theorem 5.1(iii) measures its
    /// growth).
    pub fn eplus_candidate_size(&self) -> usize {
        self.nodes
            .iter()
            .map(|t| t.separator.len().pow(2) + t.boundary.len().pow(2))
            .sum()
    }

    /// Validate every structural invariant against the undirected skeleton
    /// `adj` (as produced by `DiGraph::undirected_skeleton`):
    ///
    /// 1. the root holds all of `0..n`;
    /// 2. `V(t) = V(t₁) ∪ V(t₂)` and `S(t) ⊆ V(t₁) ∩ V(t₂)`;
    /// 3. `S(t)` separates `V(t₁) \ S(t)` from `V(t₂) \ S(t)` in `G(t)`
    ///    (no direct edge — sufficient because children partition `V(t)`);
    /// 4. Prop 2.1(ii): no edge leaves `V(t) \ B(t)` for the subgraph of
    ///    any node `t`;
    /// 5. every vertex's `node(v)`/`level(v)` is consistent.
    ///
    /// Violations are reported as
    /// [`SpsepError::InvalidDecomposition`] with the offending node and
    /// vertex attached, so a corrupted tree surfaces as a typed error
    /// instead of a panic or a silently wrong distance downstream.
    pub fn validate(&self, adj: &[Vec<u32>]) -> Result<(), SpsepError> {
        let n = self.n;
        if adj.len() != n {
            return Err(SpsepError::invalid_decomposition(format!(
                "skeleton has {} vertices, tree has {n}",
                adj.len()
            )));
        }
        for (v, neigh) in adj.iter().enumerate() {
            if let Some(&u) = neigh.iter().find(|&&u| u as usize >= n) {
                return Err(SpsepError::invalid_vertex(
                    v as u32,
                    format!("skeleton neighbor {u} out of range 0..{n}"),
                ));
            }
        }
        let root = &self.nodes[0];
        if root.vertices.len() != n || root.vertices.iter().enumerate().any(|(i, &v)| v != i as u32)
        {
            return Err(SpsepError::invalid_node(0, "root must contain exactly 0..n"));
        }
        if !root.boundary.is_empty() {
            return Err(SpsepError::invalid_node(0, "root boundary must be empty"));
        }
        // Membership scratch: which node's V(t) a vertex was last seen in.
        let mut stamp = vec![u32::MAX; n];
        let mut side = vec![0u8; n];
        for (i, t) in self.nodes.iter().enumerate() {
            let node_id = i as u32;
            if t.vertices.iter().any(|&v| v as usize >= n) {
                return Err(SpsepError::invalid_node(
                    node_id,
                    format!("V(t) contains a vertex outside 0..{n}"),
                ));
            }
            if !t.vertices.windows(2).all(|w| w[0] < w[1]) {
                return Err(SpsepError::invalid_node(node_id, "V(t) not sorted/deduped"));
            }
            if !is_sorted_subset(&t.separator, &t.vertices) {
                return Err(SpsepError::invalid_node(node_id, "S(t) ⊄ V(t)"));
            }
            if !is_sorted_subset(&t.boundary, &t.vertices) {
                return Err(SpsepError::invalid_node(node_id, "B(t) ⊄ V(t)"));
            }
            if let Some((c1, c2)) = t.children {
                if c1 as usize >= self.nodes.len() || c2 as usize >= self.nodes.len() {
                    return Err(SpsepError::invalid_node(node_id, "child id out of range"));
                }
                let (a, b) = (
                    &self.nodes[c1 as usize].vertices,
                    &self.nodes[c2 as usize].vertices,
                );
                if self.nodes[c1 as usize].parent != Some(node_id)
                    || self.nodes[c2 as usize].parent != Some(node_id)
                {
                    return Err(SpsepError::invalid_node(node_id, "child parent link broken"));
                }
                if self.nodes[c1 as usize].level != t.level + 1
                    || self.nodes[c2 as usize].level != t.level + 1
                {
                    return Err(SpsepError::invalid_node(
                        node_id,
                        "child level != parent level + 1",
                    ));
                }
                let union = sorted_union(a, b);
                if union != t.vertices {
                    return Err(SpsepError::invalid_node(node_id, "V(t) != V(t1) ∪ V(t2)"));
                }
                for &s in &t.separator {
                    if a.binary_search(&s).is_err() || b.binary_search(&s).is_err() {
                        return Err(SpsepError::invalid_node_vertex(
                            node_id,
                            s,
                            "separator vertex missing from a child \
                             (include-all policy, DESIGN.md §5)",
                        ));
                    }
                }
                // Separation: mark side of each vertex; S(t) and overlap = 0,
                // side1-only = 1, side2-only = 2. Then scan edges inside V(t).
                for &v in &t.vertices {
                    stamp[v as usize] = node_id;
                    side[v as usize] = 0;
                }
                for &v in a {
                    if t.separator.binary_search(&v).is_err() {
                        side[v as usize] = 1;
                    }
                }
                for &v in b {
                    if t.separator.binary_search(&v).is_err() {
                        let s = &mut side[v as usize];
                        if *s == 1 {
                            return Err(SpsepError::invalid_node_vertex(
                                node_id,
                                v,
                                "vertex in both children but not in S(t)",
                            ));
                        }
                        *s = 2;
                    }
                }
                for &v in &t.vertices {
                    if side[v as usize] == 0 {
                        continue;
                    }
                    for &u in &adj[v as usize] {
                        if stamp[u as usize] != node_id {
                            continue; // edge leaves G(t); checked via boundary below
                        }
                        let (sv, su) = (side[v as usize], side[u as usize]);
                        if sv != 0 && su != 0 && sv != su {
                            return Err(SpsepError::invalid_node_vertex(
                                node_id,
                                v,
                                format!("edge {v}–{u} crosses the separator"),
                            ));
                        }
                    }
                }
            }
            // Prop 2.1(ii): edges from V(t)\B(t) must stay inside V(t).
            if let Some(parent_id) = t.parent {
                if parent_id as usize >= self.nodes.len() {
                    return Err(SpsepError::invalid_node(node_id, "parent id out of range"));
                }
                for &v in &t.vertices {
                    stamp[v as usize] = node_id;
                }
                for &v in &t.vertices {
                    if t.boundary.binary_search(&v).is_ok() {
                        continue;
                    }
                    for &u in &adj[v as usize] {
                        if stamp[u as usize] != node_id {
                            return Err(SpsepError::invalid_node_vertex(
                                node_id,
                                v,
                                format!("interior vertex has edge to {u} outside V(t)"),
                            ));
                        }
                    }
                }
                // Boundary recurrence B(t) = (S(p) ∪ B(p)) ∩ V(t).
                let p = &self.nodes[parent_id as usize];
                let expect = sorted_intersection(&sorted_union(&p.separator, &p.boundary), &t.vertices);
                if expect != t.boundary {
                    return Err(SpsepError::invalid_node(node_id, "boundary recurrence violated"));
                }
            }
            if t.is_leaf() && !t.separator.is_empty() {
                return Err(SpsepError::invalid_node(node_id, "leaf with nonempty separator"));
            }
        }
        // Vertex maps.
        for v in 0..n {
            let nd = self.vertex_node[v];
            if nd == u32::MAX {
                return Err(SpsepError::invalid_vertex(
                    v as u32,
                    "vertex not covered by any node",
                ));
            }
            let t = &self.nodes[nd as usize];
            let lv = self.vertex_level[v];
            if lv == UNDEFINED_LEVEL {
                if !t.is_leaf() || t.vertices.binary_search(&(v as u32)).is_err() {
                    return Err(SpsepError::invalid_vertex(
                        v as u32,
                        "undefined level but node(v) not its leaf",
                    ));
                }
            } else if t.level != lv || t.separator.binary_search(&(v as u32)).is_err() {
                return Err(SpsepError::invalid_vertex(
                    v as u32,
                    "node/level maps inconsistent",
                ));
            }
        }
        Ok(())
    }

    /// Render the tree (sizes only) as indented text — this regenerates
    /// the content of the paper's **Figure 1** when applied to the 9×9
    /// grid decomposition.
    pub fn render(&self, max_depth: u32) -> String {
        let mut out = String::new();
        self.render_node(0, 0, max_depth, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: u32, max_depth: u32, out: &mut String) {
        use std::fmt::Write;
        let t = &self.nodes[id as usize];
        for _ in 0..depth {
            out.push_str("  ");
        }
        match t.children {
            None => {
                // Writes into a String are infallible.
                let _ = writeln!(out, "leaf |V|={} V={:?}", t.vertices.len(), t.vertices);
            }
            Some((c1, c2)) => {
                let _ = writeln!(
                    out,
                    "node |V|={} |S|={} |B|={} S={:?}",
                    t.vertices.len(),
                    t.separator.len(),
                    t.boundary.len(),
                    t.separator
                );
                if depth < max_depth {
                    self.render_node(c1, depth + 1, max_depth, out);
                    self.render_node(c2, depth + 1, max_depth, out);
                }
            }
        }
    }
}

/// Union of two sorted, deduplicated u32 slices.
pub fn sorted_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersection of two sorted, deduplicated u32 slices.
pub fn sorted_intersection(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    if large.len() > 16 * small.len() {
        for &v in small {
            if large.binary_search(&v).is_ok() {
                out.push(v);
            }
        }
        return out;
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(small[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn is_sorted_subset(sub: &[u32], sup: &[u32]) -> bool {
    sub.windows(2).all(|w| w[0] < w[1]) && sub.iter().all(|v| sup.binary_search(v).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built decomposition of the path 0–1–2–3–4 (skeleton edges
    /// between consecutive ids): root separates at vertex 2.
    fn path_tree() -> SepTree {
        let nodes = vec![
            SepNode {
                vertices: vec![0, 1, 2, 3, 4],
                separator: vec![2],
                boundary: vec![],
                children: Some((1, 2)),
                parent: None,
                level: 0,
            },
            SepNode {
                vertices: vec![0, 1, 2],
                separator: vec![],
                boundary: vec![],
                children: None,
                parent: Some(0),
                level: 1,
            },
            SepNode {
                vertices: vec![2, 3, 4],
                separator: vec![],
                boundary: vec![],
                children: None,
                parent: Some(0),
                level: 1,
            },
        ];
        SepTree::assemble(5, nodes)
    }

    fn path_skeleton(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|v| {
                let mut a = Vec::new();
                if v > 0 {
                    a.push(v as u32 - 1);
                }
                if v + 1 < n {
                    a.push(v as u32 + 1);
                }
                a
            })
            .collect()
    }

    #[test]
    fn assemble_computes_boundaries_and_levels() {
        let tree = path_tree();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node(1).boundary, vec![2]);
        assert_eq!(tree.node(2).boundary, vec![2]);
        assert_eq!(tree.vertex_level(2), 0);
        assert_eq!(tree.vertex_level(0), UNDEFINED_LEVEL);
        assert_eq!(tree.vertex_node(2), 0);
        // 0 and 1 live in leaf node 1; 3, 4 in leaf node 2.
        assert_eq!(tree.vertex_node(0), tree.vertex_node(1));
        assert_eq!(tree.vertex_node(3), tree.vertex_node(4));
        assert_ne!(tree.vertex_node(0), tree.vertex_node(3));
        assert_eq!(tree.max_leaf_size(), 3);
    }

    #[test]
    fn validate_accepts_good_tree() {
        let tree = path_tree();
        tree.validate(&path_skeleton(5)).expect("valid tree");
    }

    #[test]
    fn validate_rejects_crossing_edge() {
        // Same tree, but skeleton has an extra edge 1–3 skipping the separator.
        let tree = path_tree();
        let mut adj = path_skeleton(5);
        adj[1].push(3);
        adj[3].push(1);
        let err = tree.validate(&adj).unwrap_err();
        assert!(
            matches!(err, SpsepError::InvalidDecomposition { .. }),
            "unexpected error: {err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("crosses the separator") || msg.contains("edge to"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn validate_rejects_bad_root() {
        let mut nodes = vec![SepNode {
            vertices: vec![0, 1, 2],
            separator: vec![],
            boundary: vec![],
            children: None,
            parent: None,
            level: 0,
        }];
        nodes[0].vertices = vec![0, 1]; // missing vertex 2
        let tree = SepTree::assemble(3, nodes);
        assert!(tree.validate(&path_skeleton(3)).is_err());
    }

    #[test]
    fn nodes_at_level_slices_bfs_order() {
        let tree = path_tree();
        assert_eq!(tree.nodes_at_level(0), 0..1);
        assert_eq!(tree.nodes_at_level(1), 1..3);
        assert_eq!(tree.nodes_at_level(2), 0..0);
        assert_eq!(tree.nodes_at_level(99), 0..0);
    }

    #[test]
    fn set_helpers() {
        assert_eq!(sorted_union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(sorted_intersection(&[1, 3, 5], &[2, 3, 5]), vec![3, 5]);
        assert_eq!(sorted_union(&[], &[7]), vec![7]);
        assert!(sorted_intersection(&[1, 2], &[]).is_empty());
        let big: Vec<u32> = (0..1000).collect();
        assert_eq!(sorted_intersection(&[5, 999, 1005], &big), vec![5, 999]);
    }

    #[test]
    fn render_mentions_sizes() {
        let tree = path_tree();
        let text = tree.render(8);
        assert!(text.contains("|V|=5"));
        assert!(text.contains("leaf |V|=3"));
    }

    #[test]
    fn eplus_candidate_size_counts_squares() {
        let tree = path_tree();
        // root: |S|=1, |B|=0 → 1; leaves: |B|=1 each → 1+1.
        assert_eq!(tree.eplus_candidate_size(), 3);
    }
}
