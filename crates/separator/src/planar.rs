//! Planar cycle separators on triangulations with an explicit embedding.
//!
//! The paper's planar results (Section 6) assume a `k^{1/2}`-separator
//! decomposition computed by Gazit–Miller; the classical mechanism behind
//! all such algorithms is Lipton–Tarjan's **fundamental-cycle separator**:
//! given a planar *triangulation* and any spanning tree `T`, some
//! non-tree edge closes a cycle `C` (tree path + the edge) whose interior
//! and exterior each hold at most a constant fraction of the vertices,
//! and `|C| ≤ 2·height(T) + 1`.
//!
//! This module implements exactly that mechanism on triangulations whose
//! embedding is given as a face list:
//!
//! * [`triangulated_grid`] — a planar mesh family (grid + diagonals) with
//!   its faces, where BFS height is `O(√n)` so fundamental cycles are
//!   `O(√n)` separators without the Lipton–Tarjan level-shrinking phase
//!   (documented simplification; the recursion's progress guard covers
//!   adversarial trees);
//! * [`planar_cycle_tree`] — the recursive decomposition: per region,
//!   pick the balance-optimal fundamental cycle (candidates scored by
//!   flood-filling faces on each side), split into interior/exterior,
//!   and recurse on the sub-regions with their own face lists.
//!
//! Region bookkeeping keeps the decomposition *exact*: edges of the
//! induced subgraph that are not covered by a region's faces (chords of
//! an ancestor cycle routed through the other region) are repaired into
//! the separator, so [`crate::SepTree::validate`] holds unconditionally.

use crate::tree::{SepNode, SepTree};
use rand::Rng;
use spsep_graph::{DiGraph, Edge};
use std::collections::HashMap;

/// A planar triangulation given by its internal faces (CCW triples of
/// vertex ids). The outer face is implicit.
#[derive(Clone, Debug)]
pub struct Triangulation {
    /// Number of vertices.
    pub n: usize,
    /// Internal faces.
    pub faces: Vec<[u32; 3]>,
}

impl Triangulation {
    /// Undirected adjacency derived from the faces.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for f in &self.faces {
            for i in 0..3 {
                let (a, b) = (f[i], f[(i + 1) % 3]);
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }

    /// Sanity check: every face references valid vertices; every edge is
    /// shared by at most two faces.
    pub fn validate(&self) -> Result<(), String> {
        let mut edge_count: HashMap<(u32, u32), usize> = HashMap::new();
        for (fi, f) in self.faces.iter().enumerate() {
            if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
                return Err(format!("face {fi} is degenerate"));
            }
            for &v in f {
                if v as usize >= self.n {
                    return Err(format!("face {fi}: vertex {v} out of range"));
                }
            }
            for i in 0..3 {
                let (a, b) = (f[i].min(f[(i + 1) % 3]), f[i].max(f[(i + 1) % 3]));
                *edge_count.entry((a, b)).or_insert(0) += 1;
            }
        }
        for ((a, b), c) in edge_count {
            if c > 2 {
                return Err(format!("edge {a}–{b} in {c} faces"));
            }
        }
        Ok(())
    }
}

/// A `w × h` grid with one diagonal per cell: a planar triangulation
/// family with `Θ(√n)` BFS height. Directed edge weights uniform in
/// `[1, 2)`; the diagonal orientation alternates to avoid degenerate
/// long chords.
pub fn triangulated_grid(
    w: usize,
    h: usize,
    rng: &mut impl Rng,
) -> (DiGraph<f64>, Triangulation) {
    assert!(w >= 2 && h >= 2);
    let n = w * h;
    let id = |r: usize, c: usize| (r * w + c) as u32;
    let mut faces = Vec::with_capacity(2 * (w - 1) * (h - 1));
    for r in 0..h - 1 {
        for c in 0..w - 1 {
            let (a, b, d, e) = (id(r, c), id(r, c + 1), id(r + 1, c), id(r + 1, c + 1));
            if (r + c) % 2 == 0 {
                faces.push([a, b, e]);
                faces.push([a, e, d]);
            } else {
                faces.push([a, b, d]);
                faces.push([b, e, d]);
            }
        }
    }
    let tri = Triangulation { n, faces };
    let adj = tri.adjacency();
    let mut edges = Vec::new();
    for (v, neigh) in adj.iter().enumerate() {
        for &u in neigh {
            if (u as usize) > v {
                edges.push(Edge::new(v, u as usize, rng.gen_range(1.0..2.0)));
                edges.push(Edge::new(u as usize, v, rng.gen_range(1.0..2.0)));
            }
        }
    }
    (DiGraph::from_edges(n, edges), tri)
}

/// A sub-region of the triangulation during recursion: its vertices
/// (global ids, sorted) and the faces lying inside it.
struct Region {
    vertices: Vec<u32>,
    faces: Vec<[u32; 3]>,
}

/// How many candidate fundamental cycles to score per region.
const CYCLE_CANDIDATES: usize = 48;

/// Build a separator decomposition of a triangulation by recursive
/// fundamental-cycle splitting. `global_adj` must be the skeleton
/// adjacency of the *whole* graph (used for exact chord repair);
/// `leaf_size` as in [`crate::RecursionLimits`].
pub fn planar_cycle_tree(
    global_adj: &[Vec<u32>],
    tri: &Triangulation,
    leaf_size: usize,
) -> SepTree {
    let n = global_adj.len();
    assert_eq!(n, tri.n);
    let root = Region {
        vertices: (0..n as u32).collect(),
        faces: tri.faces.clone(),
    };
    let mut nodes: Vec<SepNode> = Vec::new();
    let mut rng_state = 0x243f6a8885a308d3u64; // deterministic xorshift seed
    recurse(
        global_adj,
        root,
        None,
        0,
        leaf_size.max(4),
        &mut nodes,
        &mut rng_state,
    );
    SepTree::assemble(n, nodes)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn recurse(
    global_adj: &[Vec<u32>],
    region: Region,
    parent: Option<u32>,
    level: u32,
    leaf_size: usize,
    nodes: &mut Vec<SepNode>,
    rng_state: &mut u64,
) -> u32 {
    let id = nodes.len() as u32;
    nodes.push(SepNode {
        vertices: region.vertices.clone(),
        separator: Vec::new(),
        boundary: Vec::new(),
        children: None,
        parent,
        level,
    });
    if region.vertices.len() <= leaf_size {
        return id;
    }
    match split_region(global_adj, &region, rng_state) {
        None => id, // no usable cycle: leaf (progress guard)
        Some((separator, inside, outside)) => {
            if inside.vertices.len() >= region.vertices.len()
                || outside.vertices.len() >= region.vertices.len()
            {
                return id; // no progress: leaf
            }
            nodes[id as usize].separator = separator;
            let c1 = recurse(
                global_adj,
                inside,
                Some(id),
                level + 1,
                leaf_size,
                nodes,
                rng_state,
            );
            let c2 = recurse(
                global_adj,
                outside,
                Some(id),
                level + 1,
                leaf_size,
                nodes,
                rng_state,
            );
            nodes[id as usize].children = Some((c1, c2));
            id
        }
    }
}

/// Find a balanced fundamental-cycle split of `region`. Returns
/// `(separator, inside region, outside region)`, all vertex sets sorted,
/// with the separator included in both children.
#[allow(clippy::needless_range_loop)] // index loops mutate several parallel side arrays
fn split_region(
    global_adj: &[Vec<u32>],
    region: &Region,
    rng_state: &mut u64,
) -> Option<(Vec<u32>, Region, Region)> {
    let nv = region.vertices.len();
    // Local ids.
    let mut local: HashMap<u32, u32> = HashMap::with_capacity(nv);
    for (i, &v) in region.vertices.iter().enumerate() {
        local.insert(v, i as u32);
    }
    // Region adjacency from faces.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nv];
    let add_edge = |a: u32, b: u32, adj: &mut Vec<Vec<u32>>| {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    };
    let mut face_of_edge: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (fi, f) in region.faces.iter().enumerate() {
        for i in 0..3 {
            let a = local[&f[i]];
            let b = local[&f[(i + 1) % 3]];
            let key = (a.min(b), a.max(b));
            let faces = face_of_edge.entry(key).or_default();
            if faces.is_empty() {
                add_edge(a, b, &mut adj);
            }
            faces.push(fi as u32);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    // BFS spanning tree from a pseudo-random root.
    let root = (xorshift(rng_state) % nv as u64) as u32;
    let mut parent = vec![u32::MAX; nv];
    let mut depth = vec![u32::MAX; nv];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v as usize] {
            if depth[u as usize] == u32::MAX {
                depth[u as usize] = depth[v as usize] + 1;
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    if depth.contains(&u32::MAX) {
        // The face complex is disconnected (dropped faces can hide
        // connectivity that the *induced* subgraph still has); fall back
        // to a split that is exact for the induced adjacency.
        return induced_fallback(global_adj, region);
    }
    // Candidate non-tree edges that are interior (two adjacent faces).
    let mut candidates: Vec<(u32, u32)> = face_of_edge
        .iter()
        .filter(|&(&(a, b), faces)| {
            faces.len() == 2
                && parent[a as usize] != b
                && parent[b as usize] != a
        })
        .map(|(&k, _)| k)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // HashMap iteration order is randomized per instance; both the
    // xorshift sampling below and first-best tie-breaking depend on the
    // candidate order, so sort to keep the decomposition a pure
    // function of its inputs (the repo-wide determinism contract).
    candidates.sort_unstable();
    // Score a sample of candidates by flood-fill balance.
    let sample: Vec<(u32, u32)> = if candidates.len() <= CYCLE_CANDIDATES {
        candidates
    } else {
        let mut s = Vec::with_capacity(CYCLE_CANDIDATES);
        for _ in 0..CYCLE_CANDIDATES {
            s.push(candidates[(xorshift(rng_state) % candidates.len() as u64) as usize]);
        }
        s
    };
    let mut best: Option<(usize, Vec<u32>, Vec<bool>)> = None; // (max side, cycle, inside faces mark)
    for &(a, b) in &sample {
        let cycle = fundamental_cycle(a, b, &parent, &depth);
        let (inside_faces, in_count, out_count) =
            flood_sides(region, &local, &cycle, &face_of_edge, a, b)?;
        let score = in_count.max(out_count);
        if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
            best = Some((score, cycle, inside_faces));
        }
    }
    let (_, cycle, inside_faces) = best?;
    // Vertex sides from face sides.
    let mut on_cycle = vec![false; nv];
    for &v in &cycle {
        on_cycle[v as usize] = true;
    }
    let mut side_in = vec![false; nv];
    let mut side_out = vec![false; nv];
    for (fi, f) in region.faces.iter().enumerate() {
        let inside = inside_faces[fi];
        for &gv in f {
            let v = local[&gv] as usize;
            if !on_cycle[v] {
                if inside {
                    side_in[v] = true;
                } else {
                    side_out[v] = true;
                }
            }
        }
    }
    // A non-cycle vertex claimed by both sides means the cycle was not a
    // closed curve here — should be impossible; guard anyway.
    let mut separator_local: Vec<u32> = cycle.clone();
    for v in 0..nv {
        if side_in[v] && side_out[v] {
            separator_local.push(v as u32);
            side_in[v] = false;
            side_out[v] = false;
        }
    }
    // Faceless vertices (all their faces were dropped by an ancestor's
    // filtering) have no side yet; assign them by global connectivity,
    // propagating until stable. A vertex touching both sides joins the
    // separator.
    loop {
        let mut changed = false;
        for v in 0..nv {
            if side_in[v] || side_out[v] || on_cycle[v]
                || separator_local.contains(&(v as u32))
            {
                continue;
            }
            let gv = region.vertices[v];
            let (mut touch_in, mut touch_out) = (false, false);
            for &gu in &global_adj[gv as usize] {
                if let Some(&u) = local.get(&gu) {
                    touch_in |= side_in[u as usize];
                    touch_out |= side_out[u as usize];
                }
            }
            match (touch_in, touch_out) {
                (true, true) => {
                    separator_local.push(v as u32);
                    changed = true;
                }
                (true, false) => {
                    side_in[v] = true;
                    changed = true;
                }
                (false, true) => {
                    side_out[v] = true;
                    changed = true;
                }
                (false, false) => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Still-undecided vertices connect only to cycle/separator/nothing;
    // park them inside (no crossing edges possible by construction).
    for v in 0..nv {
        if !side_in[v] && !side_out[v] && !on_cycle[v]
            && !separator_local.contains(&(v as u32))
        {
            side_in[v] = true;
        }
    }
    // Exact chord repair: induced edges (global) between the two sides
    // promote one endpoint into the separator.
    let in_sep: std::collections::HashSet<u32> = separator_local.iter().copied().collect();
    let mut extra_sep: Vec<u32> = Vec::new();
    for v in 0..nv {
        if !side_in[v] {
            continue;
        }
        let gv = region.vertices[v];
        for &gu in &global_adj[gv as usize] {
            if let Some(&u) = local.get(&gu) {
                if side_out[u as usize] && !in_sep.contains(&(v as u32)) {
                    extra_sep.push(v as u32);
                    side_in[v] = false;
                    break;
                }
            }
        }
    }
    separator_local.extend(extra_sep);
    separator_local.sort_unstable();
    separator_local.dedup();

    // Assemble regions: child faces are the faces on each side; the
    // separator joins both children (include-all policy).
    let sep_set: std::collections::HashSet<u32> = separator_local.iter().copied().collect();
    let mut inside_vertices: Vec<u32> = Vec::new();
    let mut outside_vertices: Vec<u32> = Vec::new();
    for v in 0..nv {
        if sep_set.contains(&(v as u32)) {
            inside_vertices.push(region.vertices[v]);
            outside_vertices.push(region.vertices[v]);
        } else if side_in[v] {
            inside_vertices.push(region.vertices[v]);
        } else if side_out[v] {
            outside_vertices.push(region.vertices[v]);
        } else {
            // Isolated from faces (degenerate); park it inside.
            inside_vertices.push(region.vertices[v]);
        }
    }
    inside_vertices.sort_unstable();
    outside_vertices.sort_unstable();
    let in_v: std::collections::HashSet<u32> = inside_vertices.iter().copied().collect();
    let out_v: std::collections::HashSet<u32> = outside_vertices.iter().copied().collect();
    let mut inside_faces_list = Vec::new();
    let mut outside_faces_list = Vec::new();
    for (fi, f) in region.faces.iter().enumerate() {
        if inside_faces[fi] && f.iter().all(|gv| in_v.contains(gv)) {
            inside_faces_list.push(*f);
        } else if !inside_faces[fi] && f.iter().all(|gv| out_v.contains(gv)) {
            outside_faces_list.push(*f);
        }
    }
    let separator_global: Vec<u32> = {
        let mut s: Vec<u32> = separator_local
            .iter()
            .map(|&v| region.vertices[v as usize])
            .collect();
        s.sort_unstable();
        s
    };
    Some((
        separator_global,
        Region {
            vertices: inside_vertices,
            faces: inside_faces_list,
        },
        Region {
            vertices: outside_vertices,
            faces: outside_faces_list,
        },
    ))
}

/// Tree path `a → lca → b` as a vertex list (local ids), i.e. the
/// fundamental cycle of non-tree edge `(a, b)` minus the closing edge.
fn fundamental_cycle(a: u32, b: u32, parent: &[u32], depth: &[u32]) -> Vec<u32> {
    let (mut x, mut y) = (a, b);
    let mut left = vec![x];
    let mut right = vec![y];
    while depth[x as usize] > depth[y as usize] {
        x = parent[x as usize];
        left.push(x);
    }
    while depth[y as usize] > depth[x as usize] {
        y = parent[y as usize];
        right.push(y);
    }
    while x != y {
        x = parent[x as usize];
        y = parent[y as usize];
        left.push(x);
        right.push(y);
    }
    right.pop(); // lca counted once
    left.extend(right.into_iter().rev());
    left
}

/// Flood-fill the faces on the two sides of the cycle closed by
/// `(a, b)`. Returns `(inside_mark, inside_count, outside_count)` over
/// faces, where "inside" is the side seeded by one face adjacent to the
/// closing edge. `None` if the closing edge has no two adjacent faces.
fn flood_sides(
    region: &Region,
    local: &HashMap<u32, u32>,
    cycle: &[u32],
    face_of_edge: &HashMap<(u32, u32), Vec<u32>>,
    a: u32,
    b: u32,
) -> Option<(Vec<bool>, usize, usize)> {
    let nf = region.faces.len();
    // Cycle edges (local, normalized) block the flood.
    let mut blocked: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for w in cycle.windows(2) {
        blocked.insert((w[0].min(w[1]), w[0].max(w[1])));
    }
    blocked.insert((a.min(b), a.max(b)));
    let seed_faces = face_of_edge.get(&(a.min(b), a.max(b)))?;
    if seed_faces.len() != 2 {
        return None;
    }
    let mut mark = vec![false; nf];
    let mut visited = vec![false; nf];
    let mut stack = vec![seed_faces[0]];
    visited[seed_faces[0] as usize] = true;
    mark[seed_faces[0] as usize] = true;
    while let Some(fi) = stack.pop() {
        let f = region.faces[fi as usize];
        for i in 0..3 {
            let x = local[&f[i]];
            let y = local[&f[(i + 1) % 3]];
            let key = (x.min(y), x.max(y));
            if blocked.contains(&key) {
                continue;
            }
            if let Some(nbrs) = face_of_edge.get(&key) {
                for &nf2 in nbrs {
                    if !visited[nf2 as usize] {
                        visited[nf2 as usize] = true;
                        mark[nf2 as usize] = true;
                        stack.push(nf2);
                    }
                }
            }
        }
    }
    let inside = mark.iter().filter(|&&m| m).count();
    Some((mark, inside, nf - inside))
}

/// Fallback split that is exact for the **induced** subgraph on the
/// region's vertices: component packing when disconnected, otherwise a
/// BFS-order median cut with the crossing-edge endpoints promoted into
/// the separator (cf. `builders::cut_from_partition`).
fn induced_fallback(
    global_adj: &[Vec<u32>],
    region: &Region,
) -> Option<(Vec<u32>, Region, Region)> {
    let nv = region.vertices.len();
    let mut local: HashMap<u32, u32> = HashMap::with_capacity(nv);
    for (i, &v) in region.vertices.iter().enumerate() {
        local.insert(v, i as u32);
    }
    let adj: Vec<Vec<u32>> = region
        .vertices
        .iter()
        .map(|&gv| {
            global_adj[gv as usize]
                .iter()
                .filter_map(|gu| local.get(gu).copied())
                .collect()
        })
        .collect();
    let sep = match crate::builders::components_split(&adj) {
        Some((side1, side2)) => crate::engine::Separation {
            separator: Vec::new(),
            side1,
            side2,
        },
        None => {
            // Connected: median cut in BFS order from vertex 0.
            let active = vec![true; nv];
            let dist = spsep_graph::traversal::bfs_undirected_masked(&adj, 0, &active);
            let mut order: Vec<u32> = (0..nv as u32).collect();
            order.sort_by_key(|&v| dist[v as usize]);
            let mut in_a = vec![false; nv];
            for &v in &order[..nv / 2] {
                in_a[v as usize] = true;
            }
            crate::builders::cut_from_partition(&adj, &in_a)
        }
    };
    if sep.side1.is_empty() && sep.side2.is_empty() {
        return None;
    }
    let to_global = |list: &[u32]| -> Vec<u32> {
        let mut v: Vec<u32> = list.iter().map(|&l| region.vertices[l as usize]).collect();
        v.sort_unstable();
        v
    };
    let separator = to_global(&sep.separator);
    let mut v1 = to_global(&sep.side1);
    let mut v2 = to_global(&sep.side2);
    v1.extend_from_slice(&separator);
    v2.extend_from_slice(&separator);
    v1.sort_unstable();
    v2.sort_unstable();
    let s1: std::collections::HashSet<u32> = v1.iter().copied().collect();
    let s2: std::collections::HashSet<u32> = v2.iter().copied().collect();
    let mut f1 = Vec::new();
    let mut f2 = Vec::new();
    for f in &region.faces {
        if f.iter().all(|v| s1.contains(v)) {
            f1.push(*f);
        } else if f.iter().all(|v| s2.contains(v)) {
            f2.push(*f);
        }
    }
    Some((
        separator,
        Region {
            vertices: v1,
            faces: f1,
        },
        Region {
            vertices: v2,
            faces: f2,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangulated_grid_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, tri) = triangulated_grid(5, 4, &mut rng);
        tri.validate().unwrap();
        assert_eq!(g.n(), 20);
        assert_eq!(tri.faces.len(), 2 * 4 * 3);
        // m = grid edges + diagonals, both directions.
        let grid_pairs = 4 * 4 + 5 * 3; // horizontal + vertical
        let diagonals = 4 * 3;
        assert_eq!(g.m(), 2 * (grid_pairs + diagonals));
    }

    #[test]
    fn cycle_tree_validates_on_meshes() {
        for (w, h, seed) in [(8usize, 8usize, 2u64), (12, 7, 3), (5, 20, 4)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, tri) = triangulated_grid(w, h, &mut rng);
            let adj = g.undirected_skeleton();
            let tree = planar_cycle_tree(&adj, &tri, 4);
            tree.validate(&adj)
                .unwrap_or_else(|e| panic!("{w}x{h}: {e}"));
            assert!(tree.height() >= 2);
        }
    }

    #[test]
    fn separators_are_sqrt_sized() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, tri) = triangulated_grid(16, 16, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = planar_cycle_tree(&adj, &tri, 4);
        tree.validate(&adj).unwrap();
        for t in tree.nodes() {
            let bound = 6.0 * (t.vertices.len() as f64).sqrt() + 8.0;
            assert!(
                (t.separator.len() as f64) <= bound,
                "|S| = {} for |V| = {}",
                t.separator.len(),
                t.vertices.len()
            );
        }
    }

    #[test]
    fn fundamental_cycle_is_simple() {
        // Path tree 0-1-2-3-4 plus edge (0,4).
        let parent = vec![u32::MAX, 0, 1, 2, 3];
        let depth = vec![0, 1, 2, 3, 4];
        let cyc = fundamental_cycle(4, 0, &parent, &depth);
        assert_eq!(cyc.len(), 5);
        let set: std::collections::HashSet<u32> = cyc.iter().copied().collect();
        assert_eq!(set.len(), 5, "cycle vertices must be distinct");
    }
}
