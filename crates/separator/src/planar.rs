//! Planar cycle separators on triangulations with an explicit embedding.
//!
//! The paper's planar results (Section 6) assume a `k^{1/2}`-separator
//! decomposition computed by Gazit–Miller; the classical mechanism behind
//! all such algorithms is Lipton–Tarjan's **fundamental-cycle separator**:
//! given a planar *triangulation* and any spanning tree `T`, some
//! non-tree edge closes a cycle `C` (tree path + the edge) whose interior
//! and exterior each hold at most a constant fraction of the vertices,
//! and `|C| ≤ 2·height(T) + 1`.
//!
//! This module implements exactly that mechanism on triangulations whose
//! embedding is given as a face list:
//!
//! * [`triangulated_grid`] — a planar mesh family (grid + diagonals) with
//!   its faces, where BFS height is `O(√n)` so fundamental cycles are
//!   `O(√n)` separators without the Lipton–Tarjan level-shrinking phase
//!   (documented simplification; the recursion's progress guard covers
//!   adversarial trees);
//! * [`planar_cycle_tree`] — the recursive decomposition: per region,
//!   pick the balance-optimal fundamental cycle (candidates scored by
//!   flood-filling faces on each side), split into interior/exterior,
//!   and recurse on the sub-regions with their own face lists.
//!
//! Region bookkeeping keeps the decomposition *exact*: edges of the
//! induced subgraph that are not covered by a region's faces (chords of
//! an ancestor cycle routed through the other region) are repaired into
//! the separator, so [`crate::SepTree::validate`] holds unconditionally.
//!
//! Three additions make the planar machinery usable on **imported**
//! graphs, which carry no embedding:
//!
//! * [`planar_level_tree`] — an embedding-free BFS-level +
//!   fundamental-cycle separator in the Lipton–Tarjan shape: two thin
//!   BFS levels bracket the median level, and when the middle band
//!   stays too large, a balance-optimal fundamental cycle of a BFS
//!   spanning tree splits it (sides computed by connected components,
//!   no face list needed);
//! * [`certify_near_planar`] — the necessary-condition certificate
//!   (`m ≤ 3n − 6` and 5-degeneracy) that lets the CLI auto-select the
//!   planar builder for road-network inputs;
//! * [`separator_quality`] — the one shared implementation of the
//!   separator-tree quality numbers (max `|S|`, the measured `c` in
//!   `|S(t)| ≤ c·√|V(t)|`, balance, height) used by both the CLI and
//!   the E23 bench, so the c·√n claim is checked by exactly one piece
//!   of math.
//!
//! [`road_network`] generates the committed road-style instance (a
//! jittered triangulated lattice with travel-time weights) together
//! with its face list, so the embedding-dependent and embedding-free
//! heuristics can be measured head-to-head on the same graph.

use crate::engine::{decompose, RecursionLimits, Separation, SubProblem};
use crate::tree::{SepNode, SepTree};
use rand::Rng;
use spsep_graph::generators::Coords;
use spsep_graph::{DiGraph, Edge};
use std::collections::HashMap;

/// A planar triangulation given by its internal faces (CCW triples of
/// vertex ids). The outer face is implicit.
#[derive(Clone, Debug)]
pub struct Triangulation {
    /// Number of vertices.
    pub n: usize,
    /// Internal faces.
    pub faces: Vec<[u32; 3]>,
}

impl Triangulation {
    /// Undirected adjacency derived from the faces.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for f in &self.faces {
            for i in 0..3 {
                let (a, b) = (f[i], f[(i + 1) % 3]);
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }

    /// Sanity check: every face references valid vertices; every edge is
    /// shared by at most two faces.
    pub fn validate(&self) -> Result<(), String> {
        let mut edge_count: HashMap<(u32, u32), usize> = HashMap::new();
        for (fi, f) in self.faces.iter().enumerate() {
            if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
                return Err(format!("face {fi} is degenerate"));
            }
            for &v in f {
                if v as usize >= self.n {
                    return Err(format!("face {fi}: vertex {v} out of range"));
                }
            }
            for i in 0..3 {
                let (a, b) = (f[i].min(f[(i + 1) % 3]), f[i].max(f[(i + 1) % 3]));
                *edge_count.entry((a, b)).or_insert(0) += 1;
            }
        }
        for ((a, b), c) in edge_count {
            if c > 2 {
                return Err(format!("edge {a}–{b} in {c} faces"));
            }
        }
        Ok(())
    }
}

/// A `w × h` grid with one diagonal per cell: a planar triangulation
/// family with `Θ(√n)` BFS height. Directed edge weights uniform in
/// `[1, 2)`; the diagonal orientation alternates to avoid degenerate
/// long chords.
pub fn triangulated_grid(
    w: usize,
    h: usize,
    rng: &mut impl Rng,
) -> (DiGraph<f64>, Triangulation) {
    assert!(w >= 2 && h >= 2);
    let n = w * h;
    let id = |r: usize, c: usize| (r * w + c) as u32;
    let mut faces = Vec::with_capacity(2 * (w - 1) * (h - 1));
    for r in 0..h - 1 {
        for c in 0..w - 1 {
            let (a, b, d, e) = (id(r, c), id(r, c + 1), id(r + 1, c), id(r + 1, c + 1));
            if (r + c) % 2 == 0 {
                faces.push([a, b, e]);
                faces.push([a, e, d]);
            } else {
                faces.push([a, b, d]);
                faces.push([b, e, d]);
            }
        }
    }
    let tri = Triangulation { n, faces };
    let adj = tri.adjacency();
    let mut edges = Vec::new();
    for (v, neigh) in adj.iter().enumerate() {
        for &u in neigh {
            if (u as usize) > v {
                edges.push(Edge::new(v, u as usize, rng.gen_range(1.0..2.0)));
                edges.push(Edge::new(u as usize, v, rng.gen_range(1.0..2.0)));
            }
        }
    }
    (DiGraph::from_edges(n, edges), tri)
}

/// A sub-region of the triangulation during recursion: its vertices
/// (global ids, sorted) and the faces lying inside it.
struct Region {
    vertices: Vec<u32>,
    faces: Vec<[u32; 3]>,
}

/// How many candidate fundamental cycles to score per region.
const CYCLE_CANDIDATES: usize = 48;

/// Build a separator decomposition of a triangulation by recursive
/// fundamental-cycle splitting. `global_adj` must be the skeleton
/// adjacency of the *whole* graph (used for exact chord repair);
/// `leaf_size` as in [`crate::RecursionLimits`].
pub fn planar_cycle_tree(
    global_adj: &[Vec<u32>],
    tri: &Triangulation,
    leaf_size: usize,
) -> SepTree {
    let n = global_adj.len();
    assert_eq!(n, tri.n);
    let root = Region {
        vertices: (0..n as u32).collect(),
        faces: tri.faces.clone(),
    };
    let mut nodes: Vec<SepNode> = Vec::new();
    let mut rng_state = 0x243f6a8885a308d3u64; // deterministic xorshift seed
    recurse(
        global_adj,
        root,
        None,
        0,
        leaf_size.max(4),
        &mut nodes,
        &mut rng_state,
    );
    SepTree::assemble(n, nodes)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn recurse(
    global_adj: &[Vec<u32>],
    region: Region,
    parent: Option<u32>,
    level: u32,
    leaf_size: usize,
    nodes: &mut Vec<SepNode>,
    rng_state: &mut u64,
) -> u32 {
    let id = nodes.len() as u32;
    nodes.push(SepNode {
        vertices: region.vertices.clone(),
        separator: Vec::new(),
        boundary: Vec::new(),
        children: None,
        parent,
        level,
    });
    if region.vertices.len() <= leaf_size {
        return id;
    }
    match split_region(global_adj, &region, rng_state) {
        None => id, // no usable cycle: leaf (progress guard)
        Some((separator, inside, outside)) => {
            if inside.vertices.len() >= region.vertices.len()
                || outside.vertices.len() >= region.vertices.len()
            {
                return id; // no progress: leaf
            }
            nodes[id as usize].separator = separator;
            let c1 = recurse(
                global_adj,
                inside,
                Some(id),
                level + 1,
                leaf_size,
                nodes,
                rng_state,
            );
            let c2 = recurse(
                global_adj,
                outside,
                Some(id),
                level + 1,
                leaf_size,
                nodes,
                rng_state,
            );
            nodes[id as usize].children = Some((c1, c2));
            id
        }
    }
}

/// Find a balanced fundamental-cycle split of `region`. Returns
/// `(separator, inside region, outside region)`, all vertex sets sorted,
/// with the separator included in both children.
#[allow(clippy::needless_range_loop)] // index loops mutate several parallel side arrays
fn split_region(
    global_adj: &[Vec<u32>],
    region: &Region,
    rng_state: &mut u64,
) -> Option<(Vec<u32>, Region, Region)> {
    let nv = region.vertices.len();
    // Local ids.
    let mut local: HashMap<u32, u32> = HashMap::with_capacity(nv);
    for (i, &v) in region.vertices.iter().enumerate() {
        local.insert(v, i as u32);
    }
    // Region adjacency from faces.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nv];
    let add_edge = |a: u32, b: u32, adj: &mut Vec<Vec<u32>>| {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    };
    let mut face_of_edge: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (fi, f) in region.faces.iter().enumerate() {
        for i in 0..3 {
            let a = local[&f[i]];
            let b = local[&f[(i + 1) % 3]];
            let key = (a.min(b), a.max(b));
            let faces = face_of_edge.entry(key).or_default();
            if faces.is_empty() {
                add_edge(a, b, &mut adj);
            }
            faces.push(fi as u32);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    // BFS spanning tree from a pseudo-random root.
    let root = (xorshift(rng_state) % nv as u64) as u32;
    let mut parent = vec![u32::MAX; nv];
    let mut depth = vec![u32::MAX; nv];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v as usize] {
            if depth[u as usize] == u32::MAX {
                depth[u as usize] = depth[v as usize] + 1;
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    if depth.contains(&u32::MAX) {
        // The face complex is disconnected (dropped faces can hide
        // connectivity that the *induced* subgraph still has); fall back
        // to a split that is exact for the induced adjacency.
        return induced_fallback(global_adj, region);
    }
    // Candidate non-tree edges that are interior (two adjacent faces).
    let mut candidates: Vec<(u32, u32)> = face_of_edge
        .iter()
        .filter(|&(&(a, b), faces)| {
            faces.len() == 2
                && parent[a as usize] != b
                && parent[b as usize] != a
        })
        .map(|(&k, _)| k)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // HashMap iteration order is randomized per instance; both the
    // xorshift sampling below and first-best tie-breaking depend on the
    // candidate order, so sort to keep the decomposition a pure
    // function of its inputs (the repo-wide determinism contract).
    candidates.sort_unstable();
    // Score a sample of candidates by flood-fill balance.
    let sample: Vec<(u32, u32)> = if candidates.len() <= CYCLE_CANDIDATES {
        candidates
    } else {
        let mut s = Vec::with_capacity(CYCLE_CANDIDATES);
        for _ in 0..CYCLE_CANDIDATES {
            s.push(candidates[(xorshift(rng_state) % candidates.len() as u64) as usize]);
        }
        s
    };
    let mut best: Option<(usize, Vec<u32>, Vec<bool>)> = None; // (max side, cycle, inside faces mark)
    for &(a, b) in &sample {
        let cycle = fundamental_cycle(a, b, &parent, &depth);
        let (inside_faces, in_count, out_count) =
            flood_sides(region, &local, &cycle, &face_of_edge, a, b)?;
        let score = in_count.max(out_count);
        if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
            best = Some((score, cycle, inside_faces));
        }
    }
    let (_, cycle, inside_faces) = best?;
    // Vertex sides from face sides.
    let mut on_cycle = vec![false; nv];
    for &v in &cycle {
        on_cycle[v as usize] = true;
    }
    let mut side_in = vec![false; nv];
    let mut side_out = vec![false; nv];
    for (fi, f) in region.faces.iter().enumerate() {
        let inside = inside_faces[fi];
        for &gv in f {
            let v = local[&gv] as usize;
            if !on_cycle[v] {
                if inside {
                    side_in[v] = true;
                } else {
                    side_out[v] = true;
                }
            }
        }
    }
    // A non-cycle vertex claimed by both sides means the cycle was not a
    // closed curve here — should be impossible; guard anyway.
    let mut separator_local: Vec<u32> = cycle.clone();
    for v in 0..nv {
        if side_in[v] && side_out[v] {
            separator_local.push(v as u32);
            side_in[v] = false;
            side_out[v] = false;
        }
    }
    // Faceless vertices (all their faces were dropped by an ancestor's
    // filtering) have no side yet; assign them by global connectivity,
    // propagating until stable. A vertex touching both sides joins the
    // separator.
    loop {
        let mut changed = false;
        for v in 0..nv {
            if side_in[v] || side_out[v] || on_cycle[v]
                || separator_local.contains(&(v as u32))
            {
                continue;
            }
            let gv = region.vertices[v];
            let (mut touch_in, mut touch_out) = (false, false);
            for &gu in &global_adj[gv as usize] {
                if let Some(&u) = local.get(&gu) {
                    touch_in |= side_in[u as usize];
                    touch_out |= side_out[u as usize];
                }
            }
            match (touch_in, touch_out) {
                (true, true) => {
                    separator_local.push(v as u32);
                    changed = true;
                }
                (true, false) => {
                    side_in[v] = true;
                    changed = true;
                }
                (false, true) => {
                    side_out[v] = true;
                    changed = true;
                }
                (false, false) => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Still-undecided vertices connect only to cycle/separator/nothing;
    // park them inside (no crossing edges possible by construction).
    for v in 0..nv {
        if !side_in[v] && !side_out[v] && !on_cycle[v]
            && !separator_local.contains(&(v as u32))
        {
            side_in[v] = true;
        }
    }
    // Exact chord repair: induced edges (global) between the two sides
    // promote one endpoint into the separator.
    let in_sep: std::collections::HashSet<u32> = separator_local.iter().copied().collect();
    let mut extra_sep: Vec<u32> = Vec::new();
    for v in 0..nv {
        if !side_in[v] {
            continue;
        }
        let gv = region.vertices[v];
        for &gu in &global_adj[gv as usize] {
            if let Some(&u) = local.get(&gu) {
                if side_out[u as usize] && !in_sep.contains(&(v as u32)) {
                    extra_sep.push(v as u32);
                    side_in[v] = false;
                    break;
                }
            }
        }
    }
    separator_local.extend(extra_sep);
    separator_local.sort_unstable();
    separator_local.dedup();

    // Assemble regions: child faces are the faces on each side; the
    // separator joins both children (include-all policy).
    let sep_set: std::collections::HashSet<u32> = separator_local.iter().copied().collect();
    let mut inside_vertices: Vec<u32> = Vec::new();
    let mut outside_vertices: Vec<u32> = Vec::new();
    for v in 0..nv {
        if sep_set.contains(&(v as u32)) {
            inside_vertices.push(region.vertices[v]);
            outside_vertices.push(region.vertices[v]);
        } else if side_in[v] {
            inside_vertices.push(region.vertices[v]);
        } else if side_out[v] {
            outside_vertices.push(region.vertices[v]);
        } else {
            // Isolated from faces (degenerate); park it inside.
            inside_vertices.push(region.vertices[v]);
        }
    }
    inside_vertices.sort_unstable();
    outside_vertices.sort_unstable();
    let in_v: std::collections::HashSet<u32> = inside_vertices.iter().copied().collect();
    let out_v: std::collections::HashSet<u32> = outside_vertices.iter().copied().collect();
    let mut inside_faces_list = Vec::new();
    let mut outside_faces_list = Vec::new();
    for (fi, f) in region.faces.iter().enumerate() {
        if inside_faces[fi] && f.iter().all(|gv| in_v.contains(gv)) {
            inside_faces_list.push(*f);
        } else if !inside_faces[fi] && f.iter().all(|gv| out_v.contains(gv)) {
            outside_faces_list.push(*f);
        }
    }
    let separator_global: Vec<u32> = {
        let mut s: Vec<u32> = separator_local
            .iter()
            .map(|&v| region.vertices[v as usize])
            .collect();
        s.sort_unstable();
        s
    };
    Some((
        separator_global,
        Region {
            vertices: inside_vertices,
            faces: inside_faces_list,
        },
        Region {
            vertices: outside_vertices,
            faces: outside_faces_list,
        },
    ))
}

/// Tree path `a → lca → b` as a vertex list (local ids), i.e. the
/// fundamental cycle of non-tree edge `(a, b)` minus the closing edge.
fn fundamental_cycle(a: u32, b: u32, parent: &[u32], depth: &[u32]) -> Vec<u32> {
    let (mut x, mut y) = (a, b);
    let mut left = vec![x];
    let mut right = vec![y];
    while depth[x as usize] > depth[y as usize] {
        x = parent[x as usize];
        left.push(x);
    }
    while depth[y as usize] > depth[x as usize] {
        y = parent[y as usize];
        right.push(y);
    }
    while x != y {
        x = parent[x as usize];
        y = parent[y as usize];
        left.push(x);
        right.push(y);
    }
    right.pop(); // lca counted once
    left.extend(right.into_iter().rev());
    left
}

/// Flood-fill the faces on the two sides of the cycle closed by
/// `(a, b)`. Returns `(inside_mark, inside_count, outside_count)` over
/// faces, where "inside" is the side seeded by one face adjacent to the
/// closing edge. `None` if the closing edge has no two adjacent faces.
fn flood_sides(
    region: &Region,
    local: &HashMap<u32, u32>,
    cycle: &[u32],
    face_of_edge: &HashMap<(u32, u32), Vec<u32>>,
    a: u32,
    b: u32,
) -> Option<(Vec<bool>, usize, usize)> {
    let nf = region.faces.len();
    // Cycle edges (local, normalized) block the flood.
    let mut blocked: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for w in cycle.windows(2) {
        blocked.insert((w[0].min(w[1]), w[0].max(w[1])));
    }
    blocked.insert((a.min(b), a.max(b)));
    let seed_faces = face_of_edge.get(&(a.min(b), a.max(b)))?;
    if seed_faces.len() != 2 {
        return None;
    }
    let mut mark = vec![false; nf];
    let mut visited = vec![false; nf];
    let mut stack = vec![seed_faces[0]];
    visited[seed_faces[0] as usize] = true;
    mark[seed_faces[0] as usize] = true;
    while let Some(fi) = stack.pop() {
        let f = region.faces[fi as usize];
        for i in 0..3 {
            let x = local[&f[i]];
            let y = local[&f[(i + 1) % 3]];
            let key = (x.min(y), x.max(y));
            if blocked.contains(&key) {
                continue;
            }
            if let Some(nbrs) = face_of_edge.get(&key) {
                for &nf2 in nbrs {
                    if !visited[nf2 as usize] {
                        visited[nf2 as usize] = true;
                        mark[nf2 as usize] = true;
                        stack.push(nf2);
                    }
                }
            }
        }
    }
    let inside = mark.iter().filter(|&&m| m).count();
    Some((mark, inside, nf - inside))
}

/// Fallback split that is exact for the **induced** subgraph on the
/// region's vertices: component packing when disconnected, otherwise a
/// BFS-order median cut with the crossing-edge endpoints promoted into
/// the separator (cf. `builders::cut_from_partition`).
fn induced_fallback(
    global_adj: &[Vec<u32>],
    region: &Region,
) -> Option<(Vec<u32>, Region, Region)> {
    let nv = region.vertices.len();
    let mut local: HashMap<u32, u32> = HashMap::with_capacity(nv);
    for (i, &v) in region.vertices.iter().enumerate() {
        local.insert(v, i as u32);
    }
    let adj: Vec<Vec<u32>> = region
        .vertices
        .iter()
        .map(|&gv| {
            global_adj[gv as usize]
                .iter()
                .filter_map(|gu| local.get(gu).copied())
                .collect()
        })
        .collect();
    let sep = match crate::builders::components_split(&adj) {
        Some((side1, side2)) => crate::engine::Separation {
            separator: Vec::new(),
            side1,
            side2,
        },
        None => {
            // Connected: median cut in BFS order from vertex 0.
            let active = vec![true; nv];
            let dist = spsep_graph::traversal::bfs_undirected_masked(&adj, 0, &active);
            let mut order: Vec<u32> = (0..nv as u32).collect();
            order.sort_by_key(|&v| dist[v as usize]);
            let mut in_a = vec![false; nv];
            for &v in &order[..nv / 2] {
                in_a[v as usize] = true;
            }
            crate::builders::cut_from_partition(&adj, &in_a)
        }
    };
    if sep.side1.is_empty() && sep.side2.is_empty() {
        return None;
    }
    let to_global = |list: &[u32]| -> Vec<u32> {
        let mut v: Vec<u32> = list.iter().map(|&l| region.vertices[l as usize]).collect();
        v.sort_unstable();
        v
    };
    let separator = to_global(&sep.separator);
    let mut v1 = to_global(&sep.side1);
    let mut v2 = to_global(&sep.side2);
    v1.extend_from_slice(&separator);
    v2.extend_from_slice(&separator);
    v1.sort_unstable();
    v2.sort_unstable();
    let s1: std::collections::HashSet<u32> = v1.iter().copied().collect();
    let s2: std::collections::HashSet<u32> = v2.iter().copied().collect();
    let mut f1 = Vec::new();
    let mut f2 = Vec::new();
    for f in &region.faces {
        if f.iter().all(|v| s1.contains(v)) {
            f1.push(*f);
        } else if f.iter().all(|v| s2.contains(v)) {
            f2.push(*f);
        }
    }
    Some((
        separator,
        Region {
            vertices: v1,
            faces: f1,
        },
        Region {
            vertices: v2,
            faces: f2,
        },
    ))
}

// ---------------------------------------------------------------------------
// Road-style instance generator (graph + coordinates + embedding)
// ---------------------------------------------------------------------------

/// Spacing of the arterial (fast) rows/columns in [`road_network`].
const ARTERIAL_EVERY: usize = 8;

/// Deterministic road-style test instance: a jittered `w × h` lattice
/// (cell pitch 100 m) in which every cell is closed by one
/// pseudo-randomly oriented diagonal — a triangulated irregular network.
/// Every undirected edge becomes two arcs with independent travel-time
/// weights derived from Euclidean length, a road-class speed profile
/// (every `ARTERIAL_EVERY`-th row/column is an arterial at ~1.8× the
/// residential speed), and per-direction congestion jitter; weights are
/// rounded to 0.1 so the DIMACS text form stays compact while still
/// round-tripping bit-exactly.
///
/// Returns the digraph, the vertex coordinates (meters), and the face
/// list of the (planar by construction) embedding. Everything is a pure
/// function of `(w, h, seed)`, so the committed `data/` instance can be
/// regenerated and diffed byte-for-byte.
pub fn road_network(w: usize, h: usize, seed: u64) -> (DiGraph<f64>, Coords, Triangulation) {
    assert!(w >= 2 && h >= 2, "road_network needs at least a 2×2 lattice");
    let n = w * h;
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    // Warm the xorshift state so small seeds decorrelate.
    for _ in 0..4 {
        xorshift(&mut state);
    }
    let unit = |state: &mut u64| (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64;
    // Jittered embedding: grid point (r, c) at ~100 m pitch, ±30 m noise.
    let mut coords = Vec::with_capacity(n * 2);
    for r in 0..h {
        for c in 0..w {
            coords.push(c as f64 * 100.0 + (unit(&mut state) - 0.5) * 60.0);
            coords.push(r as f64 * 100.0 + (unit(&mut state) - 0.5) * 60.0);
        }
    }
    let coords = Coords::new(2, coords);
    let id = |r: usize, c: usize| (r * w + c) as u32;
    let mut faces = Vec::with_capacity(2 * (w - 1) * (h - 1));
    for r in 0..h - 1 {
        for c in 0..w - 1 {
            let (a, b, d, e) = (id(r, c), id(r, c + 1), id(r + 1, c), id(r + 1, c + 1));
            if xorshift(&mut state) & 1 == 0 {
                faces.push([a, b, e]);
                faces.push([a, e, d]);
            } else {
                faces.push([a, b, d]);
                faces.push([b, e, d]);
            }
        }
    }
    let tri = Triangulation { n, faces };
    let adj = tri.adjacency();
    let arterial = |v: u32| {
        let (r, c) = (v as usize / w, v as usize % w);
        r % ARTERIAL_EVERY == 0 || c % ARTERIAL_EVERY == 0
    };
    let mut edges = Vec::new();
    for (v, neigh) in adj.iter().enumerate() {
        let p = coords.point(v);
        for &u in neigh {
            if (u as usize) <= v {
                continue;
            }
            let q = coords.point(u as usize);
            let len = ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt();
            // Both endpoints on an arterial line ⇒ a fast road segment.
            let class = if arterial(v as u32) && arterial(u) { 0.55 } else { 1.0 };
            let dir = |state: &mut u64| {
                let t = len * class * (1.0 + 0.3 * unit(state));
                (t * 10.0).round() / 10.0
            };
            let wf = dir(&mut state);
            let wb = dir(&mut state);
            edges.push(Edge::new(v, u as usize, wf));
            edges.push(Edge::new(u as usize, v, wb));
        }
    }
    (DiGraph::from_edges(n, edges), coords, tri)
}

// ---------------------------------------------------------------------------
// Embedding-free Lipton–Tarjan-shaped separator (BFS levels + cycle)
// ---------------------------------------------------------------------------

/// How many non-tree edges the middle-band refinement scores per region.
const LEVEL_CYCLE_CANDIDATES: usize = 64;

/// Build a separator decomposition with the embedding-free BFS-level +
/// fundamental-cycle finder. This is the Lipton–Tarjan shape without the
/// face list: per region, two thin BFS levels bracket the median level;
/// if the middle band still holds more than ⅔ of the vertices, the best
/// of `LEVEL_CYCLE_CANDIDATES` fundamental cycles of a BFS spanning
/// tree splits it (sides by connected components — no embedding needed).
/// A greedy pass then returns separator vertices touching only one side.
///
/// On planar/near-planar inputs (the [`certify_near_planar`] families:
/// road networks, meshes, grids) the levels are `O(√k)` and the cycle is
/// at most `2·height + 1`, giving `c·√k` separators per node; on
/// arbitrary graphs the output is still an exact separation and the
/// engine's progress guard bounds the recursion.
pub fn planar_level_tree(adj: &[Vec<u32>], limits: RecursionLimits) -> SepTree {
    decompose(adj, &[], 0, limits, &level_cycle_finder)
}

/// Component id per active vertex (`u32::MAX` for inactive), plus the
/// component count, over the masked undirected adjacency.
fn masked_components(adj: &[Vec<u32>], active: &[bool]) -> (Vec<u32>, usize) {
    let n = adj.len();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if !active[s] || comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in &adj[v] {
                let u = u as usize;
                if active[u] && comp[u] == u32::MAX {
                    comp[u] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Pack the components of `G − separator` into two balanced sides
/// (greedy largest-first, deterministic by component id on ties).
fn pack_components(comp: &[u32], k: usize, sep: &[bool]) -> (Vec<u32>, Vec<u32>) {
    let mut sizes = vec![0usize; k];
    for (v, &c) in comp.iter().enumerate() {
        if !sep[v] && c != u32::MAX {
            sizes[c as usize] += 1;
        }
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(sizes[c]), c));
    let mut side_of = vec![0u8; k];
    let (mut w1, mut w2) = (0usize, 0usize);
    for &c in &order {
        if w1 <= w2 {
            side_of[c] = 1;
            w1 += sizes[c];
        } else {
            side_of[c] = 2;
            w2 += sizes[c];
        }
    }
    let mut side1 = Vec::with_capacity(w1);
    let mut side2 = Vec::with_capacity(w2);
    for (v, &c) in comp.iter().enumerate() {
        if sep[v] || c == u32::MAX {
            continue;
        }
        if side_of[c as usize] == 1 {
            side1.push(v as u32);
        } else {
            side2.push(v as u32);
        }
    }
    (side1, side2)
}

/// Median cut in BFS order — the shared last-resort split (cf.
/// `builders::bfs_finder`'s shallow-level fallback).
fn median_cut(adj: &[Vec<u32>], dist: &[u32]) -> Separation {
    let n = adj.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (dist[v as usize], v));
    let mut in_a = vec![false; n];
    for &v in &order[..n / 2] {
        in_a[v as usize] = true;
    }
    crate::builders::cut_from_partition(adj, &in_a)
}

fn level_cycle_finder(sub: &SubProblem) -> Separation {
    let n = sub.len();
    let adj = &sub.adj;
    let active = vec![true; n];
    // Pseudo-peripheral start: farthest vertex from 0 (ties → largest id,
    // fixed by max_by_key's last-wins rule — deterministic).
    let d0 = spsep_graph::traversal::bfs_undirected_masked(adj, 0, &active);
    let start = (0..n).max_by_key(|&v| d0[v]).unwrap_or(0);
    let dist = spsep_graph::traversal::bfs_undirected_masked(adj, start, &active);
    let max_level = dist.iter().copied().max().unwrap_or(0) as usize;
    if max_level < 2 {
        return median_cut(adj, &dist);
    }
    let mut level_sizes = vec![0usize; max_level + 1];
    for &d in &dist {
        level_sizes[d as usize] += 1;
    }
    // Median level: the level containing the ⌈n/2⌉-th vertex.
    let mut cum = 0usize;
    let mut median = 0usize;
    for (l, &s) in level_sizes.iter().enumerate() {
        cum += s;
        if cum * 2 >= n {
            median = l;
            break;
        }
    }
    // Thin bracketing levels: |L(t)| ≤ 2√n + 1 (level 0 always
    // qualifies, so t1 exists; t2 may not when the median sits at the
    // BFS frontier).
    let budget = (2.0 * (n as f64).sqrt()).ceil() as usize + 1;
    let t1 = (0..=median)
        .rev()
        .find(|&t| level_sizes[t] <= budget)
        .unwrap_or(0);
    let t2 = (median + 1..=max_level).find(|&t| level_sizes[t] <= budget).or_else(|| {
        // Every level above the median is fat: take the thinnest one.
        (median + 1..=max_level).min_by_key(|&t| (level_sizes[t], t))
    });
    let Some(t2) = t2 else {
        // The median level is the last level; fall back to the best
        // interior level (both sides nonempty by construction).
        return best_single_level(adj, &dist, &level_sizes, max_level, n);
    };
    let mut sep = vec![false; n];
    for (v, &d) in dist.iter().enumerate() {
        if d as usize == t1 || d as usize == t2 {
            sep[v] = true;
        }
    }
    let not_sep: Vec<bool> = sep.iter().map(|&s| !s).collect();
    let (mut comp, mut k) = masked_components(adj, &not_sep);
    // Middle-band refinement: if one component still exceeds ⅔ of the
    // region, split it with the balance-best fundamental cycle of its
    // BFS spanning tree.
    let mut sizes = vec![0usize; k];
    for (v, &c) in comp.iter().enumerate() {
        if !sep[v] {
            sizes[c as usize] += 1;
        }
    }
    if let Some(giant) = (0..k).find(|&c| 3 * sizes[c] > 2 * n) {
        if let Some(cycle) = best_band_cycle(adj, &comp, giant as u32, n) {
            for &v in &cycle {
                sep[v as usize] = true;
            }
            let not_sep: Vec<bool> = sep.iter().map(|&s| !s).collect();
            let (c2, k2) = masked_components(adj, &not_sep);
            comp = c2;
            k = k2;
        }
    }
    let (side1, side2) = pack_components(&comp, k, &sep);
    // Greedy separator minimization: whole BFS levels entered the
    // separator above, but only the stretch actually between the two
    // sides must stay. Sequentially slide any separator vertex touching
    // at most one side into that side (ties → the smaller side),
    // updating membership immediately — an edge between the sides can
    // never appear because every move checks *current* membership, so
    // the no-crossing invariant is preserved move by move. Iterate to
    // fixpoint (a move can free its separator neighbours).
    let mut in1 = vec![false; n];
    let mut in2 = vec![false; n];
    let mut w1 = side1.len();
    let mut w2 = side2.len();
    for &v in &side1 {
        in1[v as usize] = true;
    }
    for &v in &side2 {
        in2[v as usize] = true;
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            if !sep[v] {
                continue;
            }
            let (mut t1n, mut t2n) = (false, false);
            for &u in &adj[v] {
                let u = u as usize;
                t1n |= in1[u];
                t2n |= in2[u];
            }
            if t1n && t2n {
                continue;
            }
            let to_side1 = if t1n {
                true
            } else if t2n {
                false
            } else {
                w1 <= w2
            };
            sep[v] = false;
            if to_side1 {
                in1[v] = true;
                w1 += 1;
            } else {
                in2[v] = true;
                w2 += 1;
            }
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let side1: Vec<u32> = (0..n as u32).filter(|&v| in1[v as usize]).collect();
    let side2: Vec<u32> = (0..n as u32).filter(|&v| in2[v as usize]).collect();
    let separator: Vec<u32> = (0..n as u32).filter(|&v| sep[v as usize]).collect();
    if side1.is_empty() && side2.is_empty() {
        return median_cut(adj, &dist);
    }
    Separation {
        separator,
        side1,
        side2,
    }
}

/// Single best interior BFS level (minimize the bigger side, ties to the
/// thinner separator) — used when no level exists above the median.
fn best_single_level(
    adj: &[Vec<u32>],
    dist: &[u32],
    level_sizes: &[usize],
    max_level: usize,
    n: usize,
) -> Separation {
    let mut below = level_sizes[0];
    let mut best: Option<(usize, usize, usize)> = None;
    for (l, &s) in level_sizes.iter().enumerate().take(max_level).skip(1) {
        let above = n - below - s;
        let score = below.max(above);
        if best.is_none_or(|(sc, sp, _)| score < sc || (score == sc && s < sp)) {
            best = Some((score, s, l));
        }
        below += s;
    }
    let Some((_, _, l)) = best else {
        return median_cut(adj, dist);
    };
    let mut separator = Vec::new();
    let mut side1 = Vec::new();
    let mut side2 = Vec::new();
    for (v, &d) in dist.iter().enumerate() {
        match (d as usize).cmp(&l) {
            std::cmp::Ordering::Less => side1.push(v as u32),
            std::cmp::Ordering::Equal => separator.push(v as u32),
            std::cmp::Ordering::Greater => side2.push(v as u32),
        }
    }
    Separation {
        separator,
        side1,
        side2,
    }
}

/// Best fundamental cycle of a BFS spanning tree of component `giant`:
/// the one minimizing the largest remaining piece of the band after the
/// cycle's removal (ties → shorter cycle). Candidates are a
/// deterministic even-stride sample of the non-tree edges. Returns the
/// cycle's vertices, or `None` when the band is a tree (no cycle).
fn best_band_cycle(adj: &[Vec<u32>], comp: &[u32], giant: u32, n: usize) -> Option<Vec<u32>> {
    let members: Vec<u32> = (0..n as u32).filter(|&v| comp[v as usize] == giant).collect();
    // Root the BFS tree at the member with the lowest id (deterministic).
    let root = *members.first()?;
    let mut parent = vec![u32::MAX; n];
    let mut depth = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v as usize] {
            if comp[u as usize] == giant && depth[u as usize] == u32::MAX {
                depth[u as usize] = depth[v as usize] + 1;
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    let mut cands: Vec<(u32, u32)> = Vec::new();
    for &v in &members {
        for &u in &adj[v as usize] {
            if u > v
                && comp[u as usize] == giant
                && parent[u as usize] != v
                && parent[v as usize] != u
            {
                cands.push((v, u));
            }
        }
    }
    if cands.is_empty() {
        return None;
    }
    let sample: Vec<(u32, u32)> = if cands.len() <= LEVEL_CYCLE_CANDIDATES {
        cands
    } else {
        (0..LEVEL_CYCLE_CANDIDATES)
            .map(|i| cands[i * cands.len() / LEVEL_CYCLE_CANDIDATES])
            .collect()
    };
    let band_size = members.len();
    let mut on_cycle = vec![false; n];
    let mut best: Option<(usize, usize, Vec<u32>)> = None; // (max piece, |C|, C)
    for &(a, b) in &sample {
        let cycle = fundamental_cycle(a, b, &parent, &depth);
        for &v in &cycle {
            on_cycle[v as usize] = true;
        }
        // Largest remaining piece of the band after removing the cycle.
        let mut seen = vec![false; n];
        let mut largest = 0usize;
        let mut stack = Vec::new();
        for &s in &members {
            if seen[s as usize] || on_cycle[s as usize] {
                continue;
            }
            let mut size = 0usize;
            seen[s as usize] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                size += 1;
                for &u in &adj[v as usize] {
                    if comp[u as usize] == giant
                        && !on_cycle[u as usize]
                        && !seen[u as usize]
                    {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
            largest = largest.max(size);
        }
        for &v in &cycle {
            on_cycle[v as usize] = false;
        }
        // A cycle that removes nothing (covers the whole band) is useless.
        if cycle.len() >= band_size {
            continue;
        }
        let key = (largest, cycle.len());
        if best
            .as_ref()
            .is_none_or(|(l, c, _)| key < (*l, *c))
        {
            best = Some((largest, cycle.len(), cycle));
        }
    }
    best.map(|(_, _, c)| c)
}

// ---------------------------------------------------------------------------
// Near-planarity certificate
// ---------------------------------------------------------------------------

/// Outcome of [`certify_near_planar`]: the two *necessary* conditions
/// for planarity that are checkable in `O(n + m)`. A graph passing both
/// is "near-planar" for builder selection; this is a certificate of
/// plausibility, **not** a planarity proof (e.g. small K₅ subdivisions
/// inside a sparse graph pass) — the separator sizes E23 measures are
/// the ground truth.
#[derive(Clone, Copy, Debug)]
pub struct NearPlanarCheck {
    /// Vertex count.
    pub n: usize,
    /// Undirected skeleton edge count.
    pub undirected_edges: usize,
    /// Euler bound `m ≤ 3n − 6` (trivially true for `n < 3`).
    pub edge_bound_ok: bool,
    /// Degeneracy (max min-degree over the peeling order); every planar
    /// graph is 5-degenerate.
    pub degeneracy: usize,
    /// Both conditions hold.
    pub near_planar: bool,
}

/// Check the `O(n + m)` necessary conditions for (near-)planarity on an
/// undirected skeleton adjacency: the Euler edge bound `m ≤ 3n − 6` and
/// 5-degeneracy (computed exactly by min-degree peeling). Road networks,
/// grids, and meshes pass; dense or expander-like inputs fail and should
/// use the general BFS builder instead.
pub fn certify_near_planar(adj: &[Vec<u32>]) -> NearPlanarCheck {
    let n = adj.len();
    let m: usize = adj.iter().map(Vec::len).sum::<usize>() / 2;
    let edge_bound_ok = n < 3 || m <= 3 * n - 6;
    // Exact degeneracy via bucketed min-degree peeling.
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket (entries may be stale; skip
        // vertices whose degree no longer matches or already removed).
        cursor = cursor.min(degeneracy);
        let v = loop {
            if cursor > max_deg {
                break None;
            }
            match buckets[cursor].pop() {
                Some(v)
                    if !removed[v as usize] && degree[v as usize] == cursor =>
                {
                    break Some(v)
                }
                Some(_) => continue,
                None => cursor += 1,
            }
        };
        let Some(v) = v else { break };
        degeneracy = degeneracy.max(cursor);
        removed[v as usize] = true;
        for &u in &adj[v as usize] {
            let u = u as usize;
            if !removed[u] && degree[u] > 0 {
                degree[u] -= 1;
                buckets[degree[u]].push(u as u32);
                if degree[u] < cursor {
                    cursor = degree[u];
                }
            }
        }
    }
    NearPlanarCheck {
        n,
        undirected_edges: m,
        edge_bound_ok,
        degeneracy,
        near_planar: edge_bound_ok && degeneracy <= 5,
    }
}

// ---------------------------------------------------------------------------
// Separator quality (shared by the CLI and the E23 bench)
// ---------------------------------------------------------------------------

/// Quality numbers of a separator decomposition tree, measured against
/// the paper's `c·√k` balanced-separator target. Computed by
/// [`separator_quality`] — the single implementation behind both the
/// CLI's `info` report and the E23 artifact, so the bound can't drift
/// between the two.
#[derive(Clone, Copy, Debug)]
pub struct QualityReport {
    /// Vertices of the decomposed graph.
    pub n: usize,
    /// Tree node count.
    pub nodes: usize,
    /// Tree height `d_G`.
    pub height: u32,
    /// Max `|V(leaf)|`.
    pub max_leaf: usize,
    /// Max `|S(t)|` over all nodes.
    pub max_separator: usize,
    /// `|S(root)|`.
    pub root_separator: usize,
    /// `Σ_t |S(t)|`.
    pub total_separator: usize,
    /// Measured `c`: max over internal nodes of `|S(t)| / √|V(t)|` —
    /// the decomposition is a `c·√k` separator tree for exactly this
    /// `c`.
    pub sqrt_coefficient: f64,
    /// Max over internal nodes of `max(|V(c₁)|, |V(c₂)|) / |V(t)|`
    /// (children include the separator, so 1.0 means no progress;
    /// balanced trees sit near `⅔ + |S|/|V|`).
    pub balance: f64,
    /// `Σ_t (|S(t)|² + |B(t)|²)` — the Theorem 5.1(iii) candidate bound
    /// driving `E⁺` size and preprocessing memory.
    pub eplus_candidates: usize,
}

impl QualityReport {
    /// `true` when every internal node's separator is within
    /// `c_bound·√|V(t)|` — the balanced-separator claim E23 checks.
    pub fn meets_sqrt_bound(&self, c_bound: f64) -> bool {
        self.sqrt_coefficient <= c_bound
    }
}

/// Measure `tree` against the `c·√k` balanced-separator target; see
/// [`QualityReport`] for the individual numbers.
pub fn separator_quality(tree: &SepTree) -> QualityReport {
    let mut max_separator = 0usize;
    let mut sqrt_coefficient = 0.0f64;
    let mut balance = 0.0f64;
    for t in tree.nodes() {
        max_separator = max_separator.max(t.separator.len());
        if let Some((c1, c2)) = t.children {
            let k = t.vertices.len() as f64;
            if !t.separator.is_empty() {
                sqrt_coefficient = sqrt_coefficient.max(t.separator.len() as f64 / k.sqrt());
            }
            let big = tree
                .node(c1)
                .vertices
                .len()
                .max(tree.node(c2).vertices.len()) as f64;
            balance = balance.max(big / k);
        }
    }
    QualityReport {
        n: tree.n(),
        nodes: tree.nodes().len(),
        height: tree.height(),
        max_leaf: tree.max_leaf_size(),
        max_separator,
        root_separator: tree.node(0).separator.len(),
        total_separator: tree.total_separator_size(),
        sqrt_coefficient,
        balance,
        eplus_candidates: tree.eplus_candidate_size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangulated_grid_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, tri) = triangulated_grid(5, 4, &mut rng);
        tri.validate().unwrap();
        assert_eq!(g.n(), 20);
        assert_eq!(tri.faces.len(), 2 * 4 * 3);
        // m = grid edges + diagonals, both directions.
        let grid_pairs = 4 * 4 + 5 * 3; // horizontal + vertical
        let diagonals = 4 * 3;
        assert_eq!(g.m(), 2 * (grid_pairs + diagonals));
    }

    #[test]
    fn cycle_tree_validates_on_meshes() {
        for (w, h, seed) in [(8usize, 8usize, 2u64), (12, 7, 3), (5, 20, 4)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, tri) = triangulated_grid(w, h, &mut rng);
            let adj = g.undirected_skeleton();
            let tree = planar_cycle_tree(&adj, &tri, 4);
            tree.validate(&adj)
                .unwrap_or_else(|e| panic!("{w}x{h}: {e}"));
            assert!(tree.height() >= 2);
        }
    }

    #[test]
    fn separators_are_sqrt_sized() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, tri) = triangulated_grid(16, 16, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = planar_cycle_tree(&adj, &tri, 4);
        tree.validate(&adj).unwrap();
        for t in tree.nodes() {
            let bound = 6.0 * (t.vertices.len() as f64).sqrt() + 8.0;
            assert!(
                (t.separator.len() as f64) <= bound,
                "|S| = {} for |V| = {}",
                t.separator.len(),
                t.vertices.len()
            );
        }
    }

    #[test]
    fn fundamental_cycle_is_simple() {
        // Path tree 0-1-2-3-4 plus edge (0,4).
        let parent = vec![u32::MAX, 0, 1, 2, 3];
        let depth = vec![0, 1, 2, 3, 4];
        let cyc = fundamental_cycle(4, 0, &parent, &depth);
        assert_eq!(cyc.len(), 5);
        let set: std::collections::HashSet<u32> = cyc.iter().copied().collect();
        assert_eq!(set.len(), 5, "cycle vertices must be distinct");
    }

    #[test]
    fn road_network_is_deterministic_and_planar() {
        let (g1, c1, t1) = road_network(12, 9, 42);
        let (g2, c2, t2) = road_network(12, 9, 42);
        assert_eq!(g1.n(), 12 * 9);
        assert_eq!(c1.len(), g1.n());
        assert_eq!(t1.faces, t2.faces);
        assert_eq!(c1.as_flat(), c2.as_flat());
        assert_eq!(g1.n(), g2.n());
        assert_eq!(g1.m(), g2.m());
        for v in 0..g1.n() {
            let e1: Vec<_> = g1.out_edges(v).collect();
            let e2: Vec<_> = g2.out_edges(v).collect();
            assert_eq!(e1, e2);
        }
        t1.validate().unwrap();
        // Different seed ⇒ different instance (jitter and/or diagonals).
        let (g3, c3, _) = road_network(12, 9, 43);
        assert!(c1.as_flat() != c3.as_flat() || g1.m() != g3.m());
        // Weights positive, finite, 0.1-granular.
        for v in 0..g1.n() {
            for e in g1.out_edges(v) {
                let w = e.w;
                assert!(w.is_finite() && w > 0.0);
                assert!(((w * 10.0).round() - w * 10.0).abs() < 1e-9);
            }
        }
        // The skeleton certifies near-planar (it IS planar).
        let check = certify_near_planar(&g1.undirected_skeleton());
        assert!(check.near_planar, "{check:?}");
    }

    #[test]
    fn level_tree_validates_on_meshes_and_roads() {
        for (w, h, seed) in [(8usize, 8usize, 2u64), (12, 7, 3), (5, 20, 4)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = triangulated_grid(w, h, &mut rng);
            let adj = g.undirected_skeleton();
            let tree = planar_level_tree(&adj, RecursionLimits::default());
            tree.validate(&adj)
                .unwrap_or_else(|e| panic!("{w}x{h}: {e}"));
        }
        let (g, _, _) = road_network(20, 16, 7);
        let adj = g.undirected_skeleton();
        let tree = planar_level_tree(&adj, RecursionLimits::default());
        tree.validate(&adj).unwrap();
    }

    #[test]
    fn level_tree_separators_are_sqrt_sized() {
        let (g, _, _) = road_network(24, 24, 11);
        let adj = g.undirected_skeleton();
        let tree = planar_level_tree(&adj, RecursionLimits::default());
        tree.validate(&adj).unwrap();
        let q = separator_quality(&tree);
        assert!(
            q.sqrt_coefficient <= 4.0,
            "measured c = {} exceeds 4.0",
            q.sqrt_coefficient
        );
        assert!(q.balance < 1.0, "no internal node may stall");
    }

    #[test]
    fn level_tree_handles_degenerate_graphs() {
        // Path (max_level ≥ 2, thin levels everywhere).
        let path: Vec<Vec<u32>> = (0..12)
            .map(|v: u32| {
                let mut a = Vec::new();
                if v > 0 {
                    a.push(v - 1);
                }
                if v < 11 {
                    a.push(v + 1);
                }
                a
            })
            .collect();
        let tree = planar_level_tree(&path, RecursionLimits::default());
        tree.validate(&path).unwrap();
        // Star (max_level = 1 ⇒ median cut path).
        let mut star: Vec<Vec<u32>> = vec![(1..9).collect()];
        for _ in 1..9 {
            star.push(vec![0]);
        }
        let tree = planar_level_tree(&star, RecursionLimits::default());
        tree.validate(&star).unwrap();
        // Complete graph (certainly not planar; still must separate).
        let k6: Vec<Vec<u32>> = (0..6u32)
            .map(|v| (0..6u32).filter(|&u| u != v).collect())
            .collect();
        let tree = planar_level_tree(&k6, RecursionLimits::default());
        tree.validate(&k6).unwrap();
        // Disconnected input is the engine's job, not the finder's.
        let two: Vec<Vec<u32>> = vec![vec![1], vec![0], vec![3], vec![2]];
        let tree = planar_level_tree(&two, RecursionLimits { leaf_size: 1, ..Default::default() });
        tree.validate(&two).unwrap();
    }

    #[test]
    fn level_tree_is_deterministic() {
        let (g, _, _) = road_network(16, 12, 9);
        let adj = g.undirected_skeleton();
        let t1 = planar_level_tree(&adj, RecursionLimits::default());
        let t2 = planar_level_tree(&adj, RecursionLimits::default());
        assert_eq!(t1.nodes().len(), t2.nodes().len());
        for (a, b) in t1.nodes().iter().zip(t2.nodes()) {
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.separator, b.separator);
        }
    }

    #[test]
    fn level_tree_beats_cycle_tree_on_roads() {
        // The acceptance claim in miniature: on a road instance the
        // embedding-free level+cycle builder must produce a strictly
        // smaller max separator than the old fundamental-cycle one.
        let (g, _, tri) = road_network(24, 20, 5);
        let adj = g.undirected_skeleton();
        let old = planar_cycle_tree(&adj, &tri, 4);
        let new = planar_level_tree(&adj, RecursionLimits::default());
        let qo = separator_quality(&old);
        let qn = separator_quality(&new);
        assert!(
            qn.max_separator < qo.max_separator,
            "level {} vs cycle {}",
            qn.max_separator,
            qo.max_separator
        );
    }

    #[test]
    fn near_planar_certificate_discriminates() {
        let mut rng = StdRng::seed_from_u64(6);
        let (g, _) = triangulated_grid(10, 10, &mut rng);
        let c = certify_near_planar(&g.undirected_skeleton());
        assert!(c.near_planar);
        assert!(c.degeneracy <= 5);
        // K7 fails the Euler bound (21 > 15) and is 6-degenerate.
        let k7: Vec<Vec<u32>> = (0..7u32)
            .map(|v| (0..7u32).filter(|&u| u != v).collect())
            .collect();
        let c = certify_near_planar(&k7);
        assert!(!c.near_planar);
        assert!(!c.edge_bound_ok);
        assert_eq!(c.degeneracy, 6);
        // Empty and tiny graphs are fine.
        assert!(certify_near_planar(&[]).near_planar);
        assert!(certify_near_planar(&[vec![], vec![]]).near_planar);
    }

    #[test]
    fn quality_report_matches_tree_accessors() {
        let (g, _, _) = road_network(10, 10, 3);
        let adj = g.undirected_skeleton();
        let tree = planar_level_tree(&adj, RecursionLimits::default());
        let q = separator_quality(&tree);
        assert_eq!(q.n, tree.n());
        assert_eq!(q.nodes, tree.nodes().len());
        assert_eq!(q.height, tree.height());
        assert_eq!(q.max_leaf, tree.max_leaf_size());
        assert_eq!(q.total_separator, tree.total_separator_size());
        assert_eq!(q.eplus_candidates, tree.eplus_candidate_size());
        assert_eq!(q.root_separator, tree.node(0).separator.len());
        assert!(q.max_separator >= q.root_separator);
        assert!(q.balance > 0.0 && q.balance < 1.0);
        assert!(q.meets_sqrt_bound(q.sqrt_coefficient + 1e-12));
        assert!(!q.meets_sqrt_bound(q.sqrt_coefficient - 1e-9));
    }
}
