//! Bounded-treewidth graphs: tree decompositions, partial-k-tree
//! generation, and the decomposition-tree builder.
//!
//! The paper's introduction lists "bounded tree-width graphs with a tree
//! decomposition (see, e.g., Robertson and Seymour)" among the families
//! with readily available separator decompositions: every bag of a tree
//! decomposition is a separator, so a width-`k` graph has a
//! `(k+1)`-vertex (i.e. `k^0`-ish, `μ → 0`) separator decomposition —
//! choose a *centroid bag* at every recursion step for balance.

use crate::engine::{decompose, RecursionLimits, Separation, SubProblem};
use crate::tree::SepTree;
use rand::Rng;
use spsep_graph::{DiGraph, Edge, SpsepError};

/// A tree decomposition: bags of vertices connected in a tree.
///
/// Invariants (checked by [`TreeDecomposition::validate`]):
/// 1. every vertex appears in some bag;
/// 2. every edge of the graph has both endpoints in some bag;
/// 3. the bags containing any fixed vertex form a connected subtree.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The bags (each a sorted set of vertex ids).
    pub bags: Vec<Vec<u32>>,
    /// Tree edges between bag indices.
    pub tree_edges: Vec<(u32, u32)>,
}

impl TreeDecomposition {
    /// Width = max bag size − 1.
    pub fn width(&self) -> usize {
        self.bags.iter().map(|b| b.len()).max().unwrap_or(1) - 1
    }

    /// Bag-tree adjacency.
    pub fn bag_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.tree_edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        adj
    }

    /// Check the three tree-decomposition invariants against a graph
    /// skeleton. Violations are reported as
    /// [`SpsepError::InvalidDecomposition`] with the offending bag
    /// (as the `node` field) and vertex attached.
    pub fn validate(&self, adj: &[Vec<u32>]) -> Result<(), SpsepError> {
        let n = adj.len();
        // 1 + 3: per-vertex bag sets form nonempty connected subtrees.
        let bag_adj = self.bag_adjacency();
        if self.tree_edges.len() + 1 != self.bags.len() && !self.bags.is_empty() {
            return Err(SpsepError::invalid_decomposition("bag tree is not a tree"));
        }
        for (ei, &(a, b)) in self.tree_edges.iter().enumerate() {
            if a as usize >= self.bags.len() || b as usize >= self.bags.len() {
                return Err(SpsepError::invalid_decomposition(format!(
                    "tree edge #{ei} ({a}–{b}) references a missing bag"
                )));
            }
        }
        let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (bi, bag) in self.bags.iter().enumerate() {
            if !bag.windows(2).all(|w| w[0] < w[1]) {
                return Err(SpsepError::invalid_node(bi as u32, "bag not sorted"));
            }
            for &v in bag {
                if v as usize >= n {
                    return Err(SpsepError::invalid_node_vertex(
                        bi as u32,
                        v,
                        "bag vertex out of range",
                    ));
                }
                containing[v as usize].push(bi as u32);
            }
        }
        for (v, bags_of_v) in containing.iter().enumerate() {
            if bags_of_v.is_empty() {
                return Err(SpsepError::invalid_vertex(v as u32, "vertex in no bag"));
            }
            // Connectivity of the induced bag subtree via BFS.
            let set: std::collections::HashSet<u32> = bags_of_v.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut queue = vec![bags_of_v[0]];
            seen.insert(bags_of_v[0]);
            while let Some(b) = queue.pop() {
                for &nb in &bag_adj[b as usize] {
                    if set.contains(&nb) && seen.insert(nb) {
                        queue.push(nb);
                    }
                }
            }
            if seen.len() != set.len() {
                return Err(SpsepError::invalid_vertex(
                    v as u32,
                    "bag subtree disconnected",
                ));
            }
        }
        // 2: edge coverage.
        for (u, neigh) in adj.iter().enumerate() {
            for &v in neigh {
                let covered = containing[u]
                    .iter()
                    .any(|&b| self.bags[b as usize].binary_search(&v).is_ok());
                if !covered {
                    return Err(SpsepError::invalid_vertex(
                        u as u32,
                        format!("edge {u}–{v} covered by no bag"),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Generate a random **partial k-tree** on `n` vertices: build a k-tree
/// (every new vertex attached to a random existing k-clique), record its
/// natural width-`k` tree decomposition, then keep each non-clique edge
/// with probability `keep` (the decomposition remains valid for any
/// subgraph). Edges are directed both ways with weights in `[1, 2)`.
pub fn partial_ktree(
    n: usize,
    k: usize,
    keep: f64,
    rng: &mut impl Rng,
) -> (DiGraph<f64>, TreeDecomposition) {
    assert!(n > k, "need more vertices than the clique size");
    assert!(k >= 1);
    let mut edges: Vec<Edge<f64>> = Vec::new();
    let mut und_edges: Vec<(u32, u32)> = Vec::new();
    // Cliques the construction can attach to: list of k-subsets.
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let mut bags: Vec<Vec<u32>> = Vec::new();
    let mut tree_edges: Vec<(u32, u32)> = Vec::new();
    // Which bag introduced each clique (to wire the bag tree).
    let mut clique_bag: Vec<u32> = Vec::new();

    // Base clique on vertices 0..=k.
    let base: Vec<u32> = (0..=k as u32).collect();
    for i in 0..=k {
        for j in i + 1..=k {
            und_edges.push((base[i], base[j]));
        }
    }
    bags.push(base.clone());
    for drop in 0..=k {
        let mut c = base.clone();
        c.remove(drop);
        cliques.push(c);
        clique_bag.push(0);
    }

    for v in (k + 1)..n {
        let ci = rng.gen_range(0..cliques.len());
        let clique = cliques[ci].clone();
        let parent_bag = clique_bag[ci];
        for &u in &clique {
            und_edges.push((u, v as u32));
        }
        // New bag: clique + v.
        let mut bag = clique.clone();
        bag.push(v as u32);
        bag.sort_unstable();
        let bag_id = bags.len() as u32;
        bags.push(bag);
        tree_edges.push((parent_bag, bag_id));
        // New cliques: clique with one member swapped for v.
        for drop in 0..clique.len() {
            let mut c = clique.clone();
            c[drop] = v as u32;
            c.sort_unstable();
            cliques.push(c);
            clique_bag.push(bag_id);
        }
        // The original clique can also be reused.
    }

    // Sparsify: keep base-clique edges always (keeps it connected-ish);
    // keep others with probability `keep`.
    for (i, &(a, b)) in und_edges.iter().enumerate() {
        let is_base = i < k * (k + 1) / 2 + k; // edges of the initial clique
        if is_base || rng.gen_bool(keep.clamp(0.0, 1.0)) {
            edges.push(Edge::new(a as usize, b as usize, rng.gen_range(1.0..2.0)));
            edges.push(Edge::new(b as usize, a as usize, rng.gen_range(1.0..2.0)));
        }
    }
    (
        DiGraph::from_edges(n, edges),
        TreeDecomposition { bags, tree_edges },
    )
}

/// Decomposition-tree builder for a graph with a known tree
/// decomposition: every separator is (a subset of) a **centroid bag** of
/// the decomposition restricted to the current subproblem, so
/// `|S(t)| ≤ width + 1` at every node — the paper's bounded-treewidth
/// family.
pub fn treewidth_tree(
    adj: &[Vec<u32>],
    td: &TreeDecomposition,
    limits: RecursionLimits,
) -> SepTree {
    let bag_adj = td.bag_adjacency();
    let finder = move |sub: &SubProblem| -> Separation {
        // Weight each bag by the subproblem vertices it (first) contains.
        let mut weight = vec![0u32; td.bags.len()];
        let mut total = 0u32;
        let in_sub: std::collections::HashMap<u32, u32> = sub
            .global
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        let mut counted: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (bi, bag) in td.bags.iter().enumerate() {
            for &v in bag {
                if in_sub.contains_key(&v) && counted.insert(v) {
                    weight[bi] += 1;
                    total += 1;
                }
            }
        }
        // Centroid bag of the weighted bag tree (iterative walk).
        let mut best_bag = 0usize;
        let mut best_score = u32::MAX;
        // Subtree weights via iterative DFS from bag 0.
        let nb = td.bags.len();
        let mut parent = vec![u32::MAX; nb];
        let mut order = Vec::with_capacity(nb);
        let mut seen = vec![false; nb];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            order.push(b);
            for &c in &bag_adj[b as usize] {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    parent[c as usize] = b;
                    stack.push(c);
                }
            }
        }
        let mut subtree = weight.clone();
        for &b in order.iter().rev() {
            let p = parent[b as usize];
            if p != u32::MAX {
                subtree[p as usize] += subtree[b as usize];
            }
        }
        for b in 0..nb {
            // Max component when removing bag b: the largest child
            // subtree or the "rest of the tree".
            let mut max_comp = total - subtree[b];
            for &c in &bag_adj[b] {
                if parent[c as usize] == b as u32 {
                    max_comp = max_comp.max(subtree[c as usize]);
                }
            }
            if max_comp < best_score {
                best_score = max_comp;
                best_bag = b;
            }
        }
        // Separator: the centroid bag's members present in the
        // subproblem; sides: components of the rest, greedily packed.
        let sep: Vec<u32> = td.bags[best_bag]
            .iter()
            .filter_map(|v| in_sub.get(v).copied())
            .collect();
        let sep_set: std::collections::HashSet<u32> = sep.iter().copied().collect();
        let n = sub.len();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        for start in 0..n as u32 {
            if comp[start as usize] != u32::MAX || sep_set.contains(&start) {
                continue;
            }
            comp[start as usize] = next;
            let mut queue = vec![start];
            while let Some(v) = queue.pop() {
                for &u in &sub.adj[v as usize] {
                    if comp[u as usize] == u32::MAX && !sep_set.contains(&u) {
                        comp[u as usize] = next;
                        queue.push(u);
                    }
                }
            }
            next += 1;
        }
        // Greedy pack components into two sides.
        let k = next as usize;
        let mut sizes = vec![0u32; k];
        for &c in &comp {
            if c != u32::MAX {
                sizes[c as usize] += 1;
            }
        }
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(sizes[c]));
        let mut side_of = vec![0u8; k];
        let (mut w1, mut w2) = (0u32, 0u32);
        for &c in &order {
            if w1 <= w2 {
                side_of[c] = 1;
                w1 += sizes[c];
            } else {
                side_of[c] = 2;
                w2 += sizes[c];
            }
        }
        let mut side1 = Vec::new();
        let mut side2 = Vec::new();
        for (v, &c) in comp.iter().enumerate() {
            if c == u32::MAX {
                continue;
            }
            if side_of[c as usize] == 1 {
                side1.push(v as u32);
            } else {
                side2.push(v as u32);
            }
        }
        Separation {
            separator: sep,
            side1,
            side2,
        }
    };
    let limits = RecursionLimits {
        leaf_size: limits.leaf_size.max(td.width() + 2),
        ..limits
    };
    decompose(adj, &[], 0, limits, &finder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ktree_decomposition_validates() {
        for k in [1usize, 2, 3, 5] {
            let mut rng = StdRng::seed_from_u64(41 + k as u64);
            let (g, td) = partial_ktree(80, k, 1.0, &mut rng);
            assert_eq!(td.width(), k);
            td.validate(&g.undirected_skeleton())
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
        }
    }

    #[test]
    fn partial_ktree_decomposition_still_validates_when_sparsified() {
        let mut rng = StdRng::seed_from_u64(43);
        let (g, td) = partial_ktree(120, 3, 0.5, &mut rng);
        td.validate(&g.undirected_skeleton()).expect("valid");
        assert!(g.m() > 0);
    }

    #[test]
    fn treewidth_tree_has_small_separators() {
        let mut rng = StdRng::seed_from_u64(44);
        let (g, td) = partial_ktree(200, 3, 1.0, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = treewidth_tree(&adj, &td, RecursionLimits::default());
        tree.validate(&adj).expect("valid separator tree");
        for t in tree.nodes() {
            assert!(
                t.separator.len() <= td.width() + 1,
                "|S| = {} > width+1 = {}",
                t.separator.len(),
                td.width() + 1
            );
        }
        // Balanced recursion.
        assert!(
            (tree.height() as usize) <= 60,
            "height {} too large",
            tree.height()
        );
    }

    #[test]
    fn validate_rejects_broken_decompositions() {
        let mut rng = StdRng::seed_from_u64(45);
        let (g, td) = partial_ktree(30, 2, 1.0, &mut rng);
        let adj = g.undirected_skeleton();
        // Remove a vertex from every bag → coverage broken.
        let mut bad = td.clone();
        for bag in &mut bad.bags {
            bag.retain(|&v| v != 5);
        }
        assert!(bad.validate(&adj).is_err());
        // Scramble the tree so a vertex's bags disconnect.
        let mut bad = td;
        if bad.tree_edges.len() >= 2 {
            bad.tree_edges.swap_remove(0);
            bad.tree_edges.push((0, bad.bags.len() as u32 - 1));
            // (May or may not disconnect a subtree — only assert that
            // validate terminates without panicking.)
            let _ = bad.validate(&adj);
        }
    }
}
