//! Serialization of separator decomposition trees.
//!
//! Paper comment (iv): "the separator decomposition for a graph G depends
//! only on the undirected unweighted skeleton of G, and hence needs to be
//! computed only once for a group of instances which differ in the
//! weights and direction on edges" — which makes trees worth persisting.
//!
//! The format stores only what cannot be derived: per node its parent,
//! its separator, and (for leaves) its vertex list; internal `V(t)` sets
//! are reconstructed bottom-up as `V(t₁) ∪ V(t₂)` and boundaries/levels
//! are recomputed by [`SepTree::assemble`].
//!
//! ```text
//! st <n> <num_nodes>
//! i <parent|-1> s <sorted separator ids…>     (internal node)
//! l <parent>   v <sorted vertex ids…>         (leaf)
//! ```
//!
//! Nodes appear in BFS order (parents before children), matching the
//! in-memory layout.
//!
//! Parsing is hardened: out-of-range vertex ids, header/node-count
//! mismatches, broken parent order, and wrong child arity are rejected
//! with line-numbered [`SpsepError::Parse`] errors. Note that
//! [`read_tree`] checks only what the *format* promises — a parsed tree
//! can still violate the Prop. 2.1 separation invariants against a
//! particular graph, which [`SepTree::validate`] reports as
//! [`SpsepError::InvalidDecomposition`].

use crate::tree::{sorted_union, SepNode, SepTree};
use spsep_graph::bytes::{ByteReader, ByteWriter};
use spsep_graph::SpsepError;
use std::io::{BufRead, Write};

/// Error produced while parsing a serialized tree (alias kept for
/// callers of the pre-taxonomy API).
pub type ParseError = SpsepError;

/// Serialize `tree`.
pub fn write_tree<W: Write>(tree: &SepTree, out: &mut W) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(buf, "st {} {}", tree.n(), tree.nodes().len());
    for node in tree.nodes() {
        let parent = node.parent.map_or(-1i64, |p| p as i64);
        if node.is_leaf() {
            let _ = write!(buf, "l {parent} v");
            for &v in &node.vertices {
                let _ = write!(buf, " {v}");
            }
        } else {
            let _ = write!(buf, "i {parent} s");
            for &v in &node.separator {
                let _ = write!(buf, " {v}");
            }
        }
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())
}

/// Parse a tree previously written by [`write_tree`].
pub fn read_tree<R: BufRead>(input: R) -> Result<SepTree, SpsepError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| SpsepError::parse("empty input"))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("st") {
        return Err(SpsepError::parse_at(1, "missing 'st' header"));
    }
    let n: usize = parse(parts.next(), 1, "vertex count")?;
    let num_nodes: usize = parse(parts.next(), 1, "node count")?;
    if num_nodes == 0 {
        return Err(SpsepError::parse_at(1, "tree must have at least one node"));
    }
    struct RawNode {
        parent: i64,
        leaf: bool,
        ids: Vec<u32>,
    }
    let mut raw: Vec<RawNode> = Vec::with_capacity(num_nodes.min(1 << 24));
    for (off, line) in lines.enumerate() {
        let lineno = off + 2; // 1-based; header was line 1
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let leaf = match kind {
            "l" => true,
            "i" => false,
            other => {
                return Err(SpsepError::parse_at(
                    lineno,
                    format!("unknown record '{other}'"),
                ));
            }
        };
        let parent: i64 = parse(parts.next(), lineno, "parent")?;
        let tag = parts.next();
        if (leaf && tag != Some("v")) || (!leaf && tag != Some("s")) {
            return Err(SpsepError::parse_at(lineno, "bad node tag"));
        }
        let mut ids = Vec::new();
        for p in parts {
            let v: u32 = p.parse().map_err(|_| {
                SpsepError::parse_at(lineno, format!("bad vertex id '{p}'"))
            })?;
            if v as usize >= n {
                return Err(SpsepError::parse_at(
                    lineno,
                    format!("vertex {v} out of range 0..{n}"),
                ));
            }
            ids.push(v);
        }
        raw.push(RawNode { parent, leaf, ids });
    }
    if raw.len() != num_nodes {
        return Err(SpsepError::parse(format!(
            "declared {num_nodes} nodes, found {}",
            raw.len()
        )));
    }
    // Children + levels.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
    let mut level = vec![0u32; num_nodes];
    for (i, r) in raw.iter().enumerate() {
        if r.parent >= 0 {
            let p = r.parent as usize;
            if p >= i {
                return Err(SpsepError::parse(format!(
                    "node {i}: parent {p} not before child (need BFS order)"
                )));
            }
            children[p].push(i as u32);
            level[i] = level[p] + 1;
        } else if i != 0 {
            return Err(SpsepError::parse(format!(
                "node {i}: only node 0 may be the root"
            )));
        }
    }
    // Reconstruct V(t) bottom-up.
    let mut vertices: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
    for i in (0..num_nodes).rev() {
        if raw[i].leaf {
            if !children[i].is_empty() {
                return Err(SpsepError::parse(format!("leaf {i} has children")));
            }
            vertices[i] = raw[i].ids.clone();
            vertices[i].sort_unstable();
            vertices[i].dedup();
        } else {
            if children[i].len() != 2 {
                return Err(SpsepError::parse(format!(
                    "internal node {i} has {} children (need 2)",
                    children[i].len()
                )));
            }
            let (a, b) = (children[i][0] as usize, children[i][1] as usize);
            vertices[i] = sorted_union(&vertices[a], &vertices[b]);
        }
    }
    let nodes: Vec<SepNode> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| SepNode {
            vertices: std::mem::take(&mut vertices[i]),
            separator: {
                let mut s = r.ids.clone();
                if r.leaf {
                    s.clear();
                }
                s.sort_unstable();
                s
            },
            boundary: Vec::new(),
            children: (!r.leaf).then(|| (children[i][0], children[i][1])),
            parent: (r.parent >= 0).then_some(r.parent as u32),
            level: level[i],
        })
        .collect();
    SepTree::try_assemble(n, nodes)
}

/// Serialize `tree` as a self-contained binary payload (the `TREE`
/// section of the `spsep-oracle/v1` snapshot):
///
/// ```text
/// n: u64 · num_nodes: u64
/// num_nodes × (parent: u32 (u32::MAX = root) · kind: u8 (1 = leaf)
///              · count: u64 · ids: u32 × count)      — S(t), or V(t) for leaves
/// num_nodes × (count: u64 · ids: u32 × count)        — boundary tables B(t)
/// ```
///
/// Like the text format, only the non-derivable data is stored per node
/// — but the per-node **boundary tables** `B(t)` are appended as a
/// redundant section: boundaries are recomputed by
/// [`SepTree::try_assemble`] at load time, and [`tree_from_bytes`]
/// cross-checks the stored tables against the recomputed ones. A
/// snapshot whose tree section was damaged in a way that still
/// assembles (e.g. a patched separator list with a fixed-up checksum)
/// is caught by this comparison instead of silently serving wrong
/// distances.
pub fn tree_to_bytes(tree: &SepTree) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(tree.n() as u64);
    w.u64(tree.nodes().len() as u64);
    for node in tree.nodes() {
        w.u32(node.parent.unwrap_or(u32::MAX));
        let ids = if node.is_leaf() {
            w.u8(1);
            &node.vertices
        } else {
            w.u8(0);
            &node.separator
        };
        w.u64(ids.len() as u64);
        for &v in ids {
            w.u32(v);
        }
    }
    for node in tree.nodes() {
        w.u64(node.boundary.len() as u64);
        for &v in &node.boundary {
            w.u32(v);
        }
    }
    w.into_inner()
}

/// Parse a payload written by [`tree_to_bytes`], reassembling the full
/// tree ([`SepTree::try_assemble`]) and cross-checking the stored
/// per-node boundary tables against the recomputed boundaries.
///
/// Hardened like [`read_tree`]: truncation, count overruns, broken
/// parent order, wrong child arity, out-of-range ids, and boundary
/// table mismatches are all typed [`SpsepError`] failures.
pub fn tree_from_bytes(bytes: &[u8]) -> Result<SepTree, SpsepError> {
    let mut r = ByteReader::new(bytes);
    let n = r.count("tree vertex count", 0)?;
    let num_nodes = r.count("tree node count", 13)?;
    if num_nodes == 0 {
        return Err(SpsepError::parse("tree must have at least one node"));
    }
    struct RawNode {
        parent: u32,
        leaf: bool,
        ids: Vec<u32>,
    }
    let mut raw: Vec<RawNode> = Vec::with_capacity(num_nodes);
    for i in 0..num_nodes {
        let parent = r.u32("node parent")?;
        let leaf = match r.u8("node kind")? {
            0 => false,
            1 => true,
            k => {
                return Err(SpsepError::parse(format!("node {i}: unknown kind {k}")));
            }
        };
        let count = r.count("node id count", 4)?;
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let v = r.u32("node vertex id")?;
            if v as usize >= n {
                return Err(SpsepError::parse(format!(
                    "node {i}: vertex {v} out of range 0..{n}"
                )));
            }
            ids.push(v);
        }
        raw.push(RawNode { parent, leaf, ids });
    }
    // Children + levels (same structural checks as the text reader).
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
    let mut level = vec![0u32; num_nodes];
    for (i, node) in raw.iter().enumerate() {
        if node.parent != u32::MAX {
            let p = node.parent as usize;
            if p >= i {
                return Err(SpsepError::parse(format!(
                    "node {i}: parent {p} not before child (need BFS order)"
                )));
            }
            children[p].push(i as u32);
            level[i] = level[p] + 1;
        } else if i != 0 {
            return Err(SpsepError::parse(format!(
                "node {i}: only node 0 may be the root"
            )));
        }
    }
    // Reconstruct V(t) bottom-up.
    let mut vertices: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
    for i in (0..num_nodes).rev() {
        if raw[i].leaf {
            if !children[i].is_empty() {
                return Err(SpsepError::parse(format!("leaf {i} has children")));
            }
            vertices[i] = raw[i].ids.clone();
            vertices[i].sort_unstable();
            vertices[i].dedup();
        } else {
            if children[i].len() != 2 {
                return Err(SpsepError::parse(format!(
                    "internal node {i} has {} children (need 2)",
                    children[i].len()
                )));
            }
            let (a, b) = (children[i][0] as usize, children[i][1] as usize);
            vertices[i] = sorted_union(&vertices[a], &vertices[b]);
        }
    }
    let nodes: Vec<SepNode> = raw
        .iter()
        .enumerate()
        .map(|(i, node)| SepNode {
            vertices: std::mem::take(&mut vertices[i]),
            separator: {
                let mut s = node.ids.clone();
                if node.leaf {
                    s.clear();
                }
                s.sort_unstable();
                s
            },
            boundary: Vec::new(),
            children: (!node.leaf).then(|| (children[i][0], children[i][1])),
            parent: (node.parent != u32::MAX).then_some(node.parent),
            level: level[i],
        })
        .collect();
    let tree = SepTree::try_assemble(n, nodes)?;
    // Boundary tables: must match the boundaries try_assemble derived.
    for (i, node) in tree.nodes().iter().enumerate() {
        let count = r.count("boundary table size", 4)?;
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            table.push(r.u32("boundary vertex id")?);
        }
        if table != node.boundary {
            return Err(SpsepError::invalid_node(
                i as u32,
                format!(
                    "stored boundary table ({} vertices) disagrees with the \
                     recomputed boundary ({} vertices)",
                    table.len(),
                    node.boundary.len()
                ),
            ));
        }
    }
    r.expect_exhausted("tree payload")?;
    Ok(tree)
}

fn parse<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, SpsepError> {
    let raw = field.ok_or_else(|| SpsepError::parse_at(lineno, format!("missing {what}")))?;
    raw.parse()
        .map_err(|_| SpsepError::parse_at(lineno, format!("bad {what} '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::RecursionLimits;

    #[test]
    fn roundtrip_grid_tree() {
        let tree = builders::grid_tree(&[7, 9], RecursionLimits::default());
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let back = read_tree(buf.as_slice()).unwrap();
        assert_eq!(tree.n(), back.n());
        assert_eq!(tree.nodes().len(), back.nodes().len());
        assert_eq!(tree.height(), back.height());
        for (a, b) in tree.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.separator, b.separator);
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(a.level, b.level);
            assert_eq!(a.children.is_some(), b.children.is_some());
        }
        assert_eq!(tree.vertex_levels(), back.vertex_levels());
        // And the reloaded tree still validates against the skeleton.
        let (g, _) = spsep_graph::generators::grid_with_weights(&[7, 9], |_, _| 1.0);
        back.validate(&g.undirected_skeleton()).unwrap();
    }

    #[test]
    fn roundtrip_centroid_tree() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let g = spsep_graph::generators::random_tree(60, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::centroid_tree(&adj, RecursionLimits::default());
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let back = read_tree(buf.as_slice()).unwrap();
        back.validate(&adj).unwrap();
        assert_eq!(tree.nodes().len(), back.nodes().len());
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let tree = builders::grid_tree(&[7, 9], RecursionLimits::default());
        let bytes = tree_to_bytes(&tree);
        let back = tree_from_bytes(&bytes).unwrap();
        assert_eq!(tree.n(), back.n());
        assert_eq!(tree.nodes().len(), back.nodes().len());
        for (a, b) in tree.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.separator, b.separator);
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(a.level, b.level);
            assert_eq!(a.children, b.children);
            assert_eq!(a.parent, b.parent);
        }
        assert_eq!(tree.vertex_levels(), back.vertex_levels());
    }

    #[test]
    fn binary_truncations_are_typed_errors() {
        let tree = builders::grid_tree(&[5, 5], RecursionLimits::default());
        let bytes = tree_to_bytes(&tree);
        for cut in 0..bytes.len() {
            assert!(
                tree_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(tree_from_bytes(&padded).is_err());
    }

    #[test]
    fn binary_boundary_table_mismatch_is_caught() {
        let tree = builders::grid_tree(&[5, 5], RecursionLimits::default());
        let mut bytes = tree_to_bytes(&tree);
        // Walk the layout to the first nonempty boundary table and
        // replace its first entry with a different in-range vertex.
        let mut off = 16; // n + num_nodes headers
        for node in tree.nodes() {
            let ids = if node.is_leaf() {
                node.vertices.len()
            } else {
                node.separator.len()
            };
            off += 4 + 1 + 8 + 4 * ids; // parent + kind + count + ids
        }
        let target = tree
            .nodes()
            .iter()
            .find(|t| !t.boundary.is_empty())
            .expect("grid tree has boundaries");
        for node in tree.nodes() {
            if std::ptr::eq(node, target) {
                break;
            }
            off += 8 + 4 * node.boundary.len();
        }
        off += 8; // the table's own count field
        let old = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let replacement = (0..tree.n() as u32)
            .find(|v| *v != old && !target.boundary.contains(v))
            .unwrap();
        bytes[off..off + 4].copy_from_slice(&replacement.to_le_bytes());
        let err = tree_from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, SpsepError::InvalidDecomposition { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn parse_errors() {
        assert!(read_tree("".as_bytes()).is_err());
        assert!(read_tree("xx 3 1\n".as_bytes()).is_err());
        assert!(read_tree("st 3 1\nq 0 v 1\n".as_bytes()).is_err());
        assert!(read_tree("st 3 2\nl -1 v 0 1 2\n".as_bytes()).is_err()); // count
        assert!(read_tree("st 3 1\nl -1 v 9\n".as_bytes()).is_err()); // range
        assert!(read_tree("st 3 1\nl -1 s 0\n".as_bytes()).is_err()); // tag
        assert!(read_tree("st 3 0\n".as_bytes()).is_err()); // no nodes
        // Minimal valid single-leaf tree.
        let t = read_tree("st 3 1\nl -1 v 0 1 2\n".as_bytes()).unwrap();
        assert_eq!(t.nodes().len(), 1);
        assert_eq!(t.max_leaf_size(), 3);
    }

    #[test]
    fn parse_errors_are_typed_and_line_numbered() {
        // Bad id on the second node line → line 3.
        assert!(matches!(
            read_tree("st 5 3\ni -1 s 2\nl 0 v 0 1 x\nl 0 v 2 3 4\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(3), .. })
        ));
        // Two roots.
        assert!(matches!(
            read_tree("st 3 2\nl -1 v 0 1\nl -1 v 2\n".as_bytes()),
            Err(SpsepError::Parse { .. })
        ));
        // Parent after child (BFS order violated).
        assert!(matches!(
            read_tree("st 3 2\nl 1 v 0 1 2\ni -1 s 0\n".as_bytes()),
            Err(SpsepError::Parse { .. })
        ));
        // Internal node with a single child.
        assert!(matches!(
            read_tree("st 3 2\ni -1 s 0\nl 0 v 0 1 2\n".as_bytes()),
            Err(SpsepError::Parse { .. })
        ));
    }
}
