//! Serialization of separator decomposition trees.
//!
//! Paper comment (iv): "the separator decomposition for a graph G depends
//! only on the undirected unweighted skeleton of G, and hence needs to be
//! computed only once for a group of instances which differ in the
//! weights and direction on edges" — which makes trees worth persisting.
//!
//! The format stores only what cannot be derived: per node its parent,
//! its separator, and (for leaves) its vertex list; internal `V(t)` sets
//! are reconstructed bottom-up as `V(t₁) ∪ V(t₂)` and boundaries/levels
//! are recomputed by [`SepTree::assemble`].
//!
//! ```text
//! st <n> <num_nodes>
//! i <parent|-1> s <sorted separator ids…>     (internal node)
//! l <parent>   v <sorted vertex ids…>         (leaf)
//! ```
//!
//! Nodes appear in BFS order (parents before children), matching the
//! in-memory layout.
//!
//! Parsing is hardened: out-of-range vertex ids, header/node-count
//! mismatches, broken parent order, and wrong child arity are rejected
//! with line-numbered [`SpsepError::Parse`] errors. Note that
//! [`read_tree`] checks only what the *format* promises — a parsed tree
//! can still violate the Prop. 2.1 separation invariants against a
//! particular graph, which [`SepTree::validate`] reports as
//! [`SpsepError::InvalidDecomposition`].

use crate::tree::{sorted_union, SepNode, SepTree};
use spsep_graph::SpsepError;
use std::io::{BufRead, Write};

/// Error produced while parsing a serialized tree (alias kept for
/// callers of the pre-taxonomy API).
pub type ParseError = SpsepError;

/// Serialize `tree`.
pub fn write_tree<W: Write>(tree: &SepTree, out: &mut W) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(buf, "st {} {}", tree.n(), tree.nodes().len());
    for node in tree.nodes() {
        let parent = node.parent.map_or(-1i64, |p| p as i64);
        if node.is_leaf() {
            let _ = write!(buf, "l {parent} v");
            for &v in &node.vertices {
                let _ = write!(buf, " {v}");
            }
        } else {
            let _ = write!(buf, "i {parent} s");
            for &v in &node.separator {
                let _ = write!(buf, " {v}");
            }
        }
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())
}

/// Parse a tree previously written by [`write_tree`].
pub fn read_tree<R: BufRead>(input: R) -> Result<SepTree, SpsepError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| SpsepError::parse("empty input"))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("st") {
        return Err(SpsepError::parse_at(1, "missing 'st' header"));
    }
    let n: usize = parse(parts.next(), 1, "vertex count")?;
    let num_nodes: usize = parse(parts.next(), 1, "node count")?;
    if num_nodes == 0 {
        return Err(SpsepError::parse_at(1, "tree must have at least one node"));
    }
    struct RawNode {
        parent: i64,
        leaf: bool,
        ids: Vec<u32>,
    }
    let mut raw: Vec<RawNode> = Vec::with_capacity(num_nodes.min(1 << 24));
    for (off, line) in lines.enumerate() {
        let lineno = off + 2; // 1-based; header was line 1
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let leaf = match kind {
            "l" => true,
            "i" => false,
            other => {
                return Err(SpsepError::parse_at(
                    lineno,
                    format!("unknown record '{other}'"),
                ));
            }
        };
        let parent: i64 = parse(parts.next(), lineno, "parent")?;
        let tag = parts.next();
        if (leaf && tag != Some("v")) || (!leaf && tag != Some("s")) {
            return Err(SpsepError::parse_at(lineno, "bad node tag"));
        }
        let mut ids = Vec::new();
        for p in parts {
            let v: u32 = p.parse().map_err(|_| {
                SpsepError::parse_at(lineno, format!("bad vertex id '{p}'"))
            })?;
            if v as usize >= n {
                return Err(SpsepError::parse_at(
                    lineno,
                    format!("vertex {v} out of range 0..{n}"),
                ));
            }
            ids.push(v);
        }
        raw.push(RawNode { parent, leaf, ids });
    }
    if raw.len() != num_nodes {
        return Err(SpsepError::parse(format!(
            "declared {num_nodes} nodes, found {}",
            raw.len()
        )));
    }
    // Children + levels.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
    let mut level = vec![0u32; num_nodes];
    for (i, r) in raw.iter().enumerate() {
        if r.parent >= 0 {
            let p = r.parent as usize;
            if p >= i {
                return Err(SpsepError::parse(format!(
                    "node {i}: parent {p} not before child (need BFS order)"
                )));
            }
            children[p].push(i as u32);
            level[i] = level[p] + 1;
        } else if i != 0 {
            return Err(SpsepError::parse(format!(
                "node {i}: only node 0 may be the root"
            )));
        }
    }
    // Reconstruct V(t) bottom-up.
    let mut vertices: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
    for i in (0..num_nodes).rev() {
        if raw[i].leaf {
            if !children[i].is_empty() {
                return Err(SpsepError::parse(format!("leaf {i} has children")));
            }
            vertices[i] = raw[i].ids.clone();
            vertices[i].sort_unstable();
            vertices[i].dedup();
        } else {
            if children[i].len() != 2 {
                return Err(SpsepError::parse(format!(
                    "internal node {i} has {} children (need 2)",
                    children[i].len()
                )));
            }
            let (a, b) = (children[i][0] as usize, children[i][1] as usize);
            vertices[i] = sorted_union(&vertices[a], &vertices[b]);
        }
    }
    let nodes: Vec<SepNode> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| SepNode {
            vertices: std::mem::take(&mut vertices[i]),
            separator: {
                let mut s = r.ids.clone();
                if r.leaf {
                    s.clear();
                }
                s.sort_unstable();
                s
            },
            boundary: Vec::new(),
            children: (!r.leaf).then(|| (children[i][0], children[i][1])),
            parent: (r.parent >= 0).then_some(r.parent as u32),
            level: level[i],
        })
        .collect();
    SepTree::try_assemble(n, nodes)
}

fn parse<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, SpsepError> {
    let raw = field.ok_or_else(|| SpsepError::parse_at(lineno, format!("missing {what}")))?;
    raw.parse()
        .map_err(|_| SpsepError::parse_at(lineno, format!("bad {what} '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::RecursionLimits;

    #[test]
    fn roundtrip_grid_tree() {
        let tree = builders::grid_tree(&[7, 9], RecursionLimits::default());
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let back = read_tree(buf.as_slice()).unwrap();
        assert_eq!(tree.n(), back.n());
        assert_eq!(tree.nodes().len(), back.nodes().len());
        assert_eq!(tree.height(), back.height());
        for (a, b) in tree.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.separator, b.separator);
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(a.level, b.level);
            assert_eq!(a.children.is_some(), b.children.is_some());
        }
        assert_eq!(tree.vertex_levels(), back.vertex_levels());
        // And the reloaded tree still validates against the skeleton.
        let (g, _) = spsep_graph::generators::grid_with_weights(&[7, 9], |_, _| 1.0);
        back.validate(&g.undirected_skeleton()).unwrap();
    }

    #[test]
    fn roundtrip_centroid_tree() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let g = spsep_graph::generators::random_tree(60, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::centroid_tree(&adj, RecursionLimits::default());
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let back = read_tree(buf.as_slice()).unwrap();
        back.validate(&adj).unwrap();
        assert_eq!(tree.nodes().len(), back.nodes().len());
    }

    #[test]
    fn parse_errors() {
        assert!(read_tree("".as_bytes()).is_err());
        assert!(read_tree("xx 3 1\n".as_bytes()).is_err());
        assert!(read_tree("st 3 1\nq 0 v 1\n".as_bytes()).is_err());
        assert!(read_tree("st 3 2\nl -1 v 0 1 2\n".as_bytes()).is_err()); // count
        assert!(read_tree("st 3 1\nl -1 v 9\n".as_bytes()).is_err()); // range
        assert!(read_tree("st 3 1\nl -1 s 0\n".as_bytes()).is_err()); // tag
        assert!(read_tree("st 3 0\n".as_bytes()).is_err()); // no nodes
        // Minimal valid single-leaf tree.
        let t = read_tree("st 3 1\nl -1 v 0 1 2\n".as_bytes()).unwrap();
        assert_eq!(t.nodes().len(), 1);
        assert_eq!(t.max_leaf_size(), 3);
    }

    #[test]
    fn parse_errors_are_typed_and_line_numbered() {
        // Bad id on the second node line → line 3.
        assert!(matches!(
            read_tree("st 5 3\ni -1 s 2\nl 0 v 0 1 x\nl 0 v 2 3 4\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(3), .. })
        ));
        // Two roots.
        assert!(matches!(
            read_tree("st 3 2\nl -1 v 0 1\nl -1 v 2\n".as_bytes()),
            Err(SpsepError::Parse { .. })
        ));
        // Parent after child (BFS order violated).
        assert!(matches!(
            read_tree("st 3 2\nl 1 v 0 1 2\ni -1 s 0\n".as_bytes()),
            Err(SpsepError::Parse { .. })
        ));
        // Internal node with a single child.
        assert!(matches!(
            read_tree("st 3 2\ni -1 s 0\nl 0 v 0 1 2\n".as_bytes()),
            Err(SpsepError::Parse { .. })
        ));
    }
}
