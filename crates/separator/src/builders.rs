//! Separator finders and ready-made tree builders for the paper's target
//! graph families.

use crate::engine::{decompose, RecursionLimits, Separation, SubProblem};
use crate::tree::SepTree;
use spsep_graph::generators::Coords;

/// If the (local) graph `adj` is disconnected, split its components into
/// two balanced groups (greedy largest-first) and return them as sides
/// with an empty separator; `None` if connected.
pub fn components_split(adj: &[Vec<u32>]) -> Option<(Vec<u32>, Vec<u32>)> {
    let comp = spsep_graph::traversal::undirected_components(adj);
    let k = comp.iter().copied().max().map_or(0, |c| c as usize + 1);
    if k <= 1 {
        return None;
    }
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(sizes[c]));
    let mut side_of = vec![0u8; k];
    let (mut w1, mut w2) = (0usize, 0usize);
    for &c in &order {
        if w1 <= w2 {
            side_of[c] = 1;
            w1 += sizes[c];
        } else {
            side_of[c] = 2;
            w2 += sizes[c];
        }
    }
    let mut side1 = Vec::with_capacity(w1);
    let mut side2 = Vec::with_capacity(w2);
    for (v, &c) in comp.iter().enumerate() {
        if side_of[c as usize] == 1 {
            side1.push(v as u32);
        } else {
            side2.push(v as u32);
        }
    }
    Some((side1, side2))
}

/// Turn a bipartition (`in_a[v]`) into a [`Separation`]: the separator is
/// the A-side endpoints of crossing edges, so it trivially separates
/// `A \ S` from `B`. Works for any graph and any partition; separator
/// quality depends on the cut quality.
pub fn cut_from_partition(adj: &[Vec<u32>], in_a: &[bool]) -> Separation {
    let n = adj.len();
    let mut separator = Vec::new();
    let mut side1 = Vec::new();
    let mut side2 = Vec::new();
    for v in 0..n {
        if !in_a[v] {
            side2.push(v as u32);
            continue;
        }
        if adj[v].iter().any(|&u| !in_a[u as usize]) {
            separator.push(v as u32);
        } else {
            side1.push(v as u32);
        }
    }
    Separation {
        separator,
        side1,
        side2,
    }
}

/// Exact hyperplane finder for grid subproblems (payload = integer lattice
/// coordinates): split the axis of widest extent at its middle coordinate;
/// the hyperplane `{coord = mid}` is a separator because grid edges only
/// connect lattice neighbours.
fn grid_finder(sub: &SubProblem) -> Separation {
    let d = sub.payload_width;
    let n = sub.len();
    // Widest axis.
    let mut best_axis = 0;
    let mut best_extent = -1.0f64;
    let mut mins = vec![f64::INFINITY; d];
    let mut maxs = vec![f64::NEG_INFINITY; d];
    for v in 0..n {
        for (a, &x) in sub.payload_of(v).iter().enumerate() {
            mins[a] = mins[a].min(x);
            maxs[a] = maxs[a].max(x);
        }
    }
    for a in 0..d {
        let extent = maxs[a] - mins[a];
        if extent > best_extent {
            best_extent = extent;
            best_axis = a;
        }
    }
    if best_extent < 2.0 {
        // All axes have extent ≤ 2 lattice lines: no hyperplane makes
        // progress; signal the engine to leaf out.
        return Separation {
            separator: vec![],
            side1: (0..n as u32).collect(),
            side2: vec![],
        };
    }
    let mid = ((mins[best_axis] + maxs[best_axis]) / 2.0).floor();
    let mut separator = Vec::new();
    let mut side1 = Vec::new();
    let mut side2 = Vec::new();
    for v in 0..n {
        let x = sub.payload_of(v)[best_axis];
        if x == mid {
            separator.push(v as u32);
        } else if x < mid {
            side1.push(v as u32);
        } else {
            side2.push(v as u32);
        }
    }
    Separation {
        separator,
        side1,
        side2,
    }
}

/// Geometric (Miller–Teng–Vavasis-style) finder: median cut along the
/// axis of widest spread, separator extracted from the crossing edges via
/// [`cut_from_partition`]. Correct on any embedded graph; separator size
/// is `O(k^((d-1)/d))` for bounded-overlap families.
fn geometric_finder(sub: &SubProblem) -> Separation {
    let d = sub.payload_width;
    let n = sub.len();
    let mut best_axis = 0;
    let mut best_extent = -1.0f64;
    for a in 0..d {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in 0..n {
            let x = sub.payload_of(v)[a];
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if hi - lo > best_extent {
            best_extent = hi - lo;
            best_axis = a;
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        sub.payload_of(a as usize)[best_axis]
            .partial_cmp(&sub.payload_of(b as usize)[best_axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut in_a = vec![false; n];
    for &v in &order[..n / 2] {
        in_a[v as usize] = true;
    }
    cut_from_partition(&sub.adj, &in_a)
}

/// Centroid finder for trees: the separator is the centroid vertex; the
/// remaining components are packed into two balanced sides.
///
/// Assumes the (connected) subproblem is a tree; on non-trees the subtree
/// sizes are wrong but the output is still a valid separation because the
/// sides are exact components of `adj \ {centroid}`.
fn centroid_finder(sub: &SubProblem) -> Separation {
    let n = sub.len();
    // Iterative DFS from 0 computing subtree sizes over the DFS tree.
    let mut parent = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0u32];
    let mut seen = vec![false; n];
    seen[0] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &u in &sub.adj[v as usize] {
            if !seen[u as usize] {
                seen[u as usize] = true;
                parent[u as usize] = v;
                stack.push(u);
            }
        }
    }
    let mut size = vec![1u32; n];
    for &v in order.iter().rev() {
        let p = parent[v as usize];
        if p != u32::MAX {
            size[p as usize] += size[v as usize];
        }
    }
    // Walk from the root towards the heaviest subtree until balanced.
    let total = order.len() as u32;
    let mut c = 0u32;
    loop {
        let mut heavy = None;
        for &u in &sub.adj[c as usize] {
            if parent[u as usize] == c && size[u as usize] * 2 > total {
                heavy = Some(u);
                break;
            }
        }
        match heavy {
            Some(u) => c = u,
            None => break,
        }
    }
    // Components of adj \ {c}: each neighbour's side, grouped.
    let mut comp_sizes: Vec<(u32, Vec<u32>)> = Vec::new(); // (size, members)
    let mut assigned = vec![false; n];
    assigned[c as usize] = true;
    for &start in &sub.adj[c as usize] {
        if assigned[start as usize] {
            continue;
        }
        let mut members = vec![start];
        assigned[start as usize] = true;
        let mut i = 0;
        while i < members.len() {
            let v = members[i];
            i += 1;
            for &u in &sub.adj[v as usize] {
                if !assigned[u as usize] {
                    assigned[u as usize] = true;
                    members.push(u);
                }
            }
        }
        comp_sizes.push((members.len() as u32, members));
    }
    comp_sizes.sort_by_key(|(s, _)| std::cmp::Reverse(*s));
    let mut side1 = Vec::new();
    let mut side2 = Vec::new();
    for (_, members) in comp_sizes {
        if side1.len() <= side2.len() {
            side1.extend(members);
        } else {
            side2.extend(members);
        }
    }
    Separation {
        separator: vec![c],
        side1,
        side2,
    }
}

/// BFS-level finder for arbitrary connected graphs: BFS from a
/// pseudo-peripheral vertex, take the level whose removal best balances
/// "below" vs "above". Undirected edges never skip a BFS level, so a level
/// is always a separator. Gives `O(√k)`-ish separators on grid-like /
/// bounded-genus graphs; no guarantee on expanders (falls back to a median
/// cut when the level structure is too shallow).
fn bfs_finder(sub: &SubProblem) -> Separation {
    let n = sub.len();
    let active = vec![true; n];
    // Pseudo-peripheral start: farthest vertex from 0.
    let d0 = spsep_graph::traversal::bfs_undirected_masked(&sub.adj, 0, &active);
    let start = (0..n).max_by_key(|&v| d0[v]).unwrap_or(0);
    let dist = spsep_graph::traversal::bfs_undirected_masked(&sub.adj, start, &active);
    let max_level = dist.iter().copied().max().unwrap_or(0);
    if max_level == u32::MAX || max_level < 2 {
        // Disconnected (handled by the engine) or too shallow: median cut
        // in BFS order.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| dist[v as usize]);
        let mut in_a = vec![false; n];
        for &v in &order[..n / 2] {
            in_a[v as usize] = true;
        }
        return cut_from_partition(&sub.adj, &in_a);
    }
    let mut level_sizes = vec![0usize; max_level as usize + 1];
    for &d in &dist {
        level_sizes[d as usize] += 1;
    }
    // Choose the interior level minimizing max(below, above), breaking
    // ties towards smaller separators.
    let mut below = level_sizes[0];
    let mut best: Option<(usize, usize, usize)> = None; // (max_side, sep, level)
    for (l, &sep) in level_sizes.iter().enumerate().take(max_level as usize).skip(1) {
        let above = n - below - sep;
        let score = below.max(above);
        if best.is_none_or(|(s, sp, _)| score < s || (score == s && sep < sp)) {
            best = Some((score, sep, l));
        }
        below += sep;
    }
    let Some((_, _, l)) = best else {
        unreachable!("max_level >= 2 guarantees an interior level")
    };
    let mut separator = Vec::new();
    let mut side1 = Vec::new();
    let mut side2 = Vec::new();
    for (v, &dv) in dist.iter().enumerate() {
        match (dv as usize).cmp(&l) {
            std::cmp::Ordering::Less => side1.push(v as u32),
            std::cmp::Ordering::Equal => separator.push(v as u32),
            std::cmp::Ordering::Greater => side2.push(v as u32),
        }
    }
    Separation {
        separator,
        side1,
        side2,
    }
}

/// Decomposition tree for the d-dimensional grid `dims` (hyperplane
/// separators). This is the construction behind the paper's Figure 1.
///
/// The effective leaf size is at least `2^d` so the hyperplane finder
/// always has an axis of extent ≥ 3 to split.
///
/// ```
/// use spsep_separator::{builders, RecursionLimits};
///
/// let tree = builders::grid_tree(&[9, 9], RecursionLimits::default());
/// // The paper's Figure 1: the root separator is the middle grid line.
/// assert_eq!(tree.node(0).separator, vec![36, 37, 38, 39, 40, 41, 42, 43, 44]);
/// assert!(tree.height() <= 8);
/// ```
pub fn grid_tree(dims: &[usize], limits: RecursionLimits) -> SepTree {
    let (skeleton_graph, coords) = spsep_graph::generators::grid_with_weights(dims, |_, _| 1.0);
    let adj = skeleton_graph.undirected_skeleton();
    let limits = RecursionLimits {
        leaf_size: limits.leaf_size.max(1usize << dims.len()),
        ..limits
    };
    decompose(&adj, coords.as_flat(), coords.dim(), limits, &grid_finder)
}

/// Decomposition tree for an embedded graph via geometric median cuts.
pub fn geometric_tree(adj: &[Vec<u32>], coords: &Coords, limits: RecursionLimits) -> SepTree {
    assert_eq!(adj.len(), coords.len());
    decompose(adj, coords.as_flat(), coords.dim(), limits, &geometric_finder)
}

/// Decomposition tree for a tree-shaped graph via centroid separators
/// (`|S(t)| = 1` everywhere: the `μ → 0` end of Table 1).
pub fn centroid_tree(adj: &[Vec<u32>], limits: RecursionLimits) -> SepTree {
    decompose(adj, &[], 0, limits, &centroid_finder)
}

/// Decomposition tree for an arbitrary graph via BFS-level separators
/// (no size guarantee; exact Section 5 behaviour on grid-like inputs).
pub fn bfs_tree(adj: &[Vec<u32>], limits: RecursionLimits) -> SepTree {
    decompose(adj, &[], 0, limits, &bfs_finder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_tree_9x9_matches_figure_1_shape() {
        let tree = grid_tree(&[9, 9], RecursionLimits::default());
        let (g, _) = spsep_graph::generators::grid_with_weights(&[9, 9], |_, _| 1.0);
        tree.validate(&g.undirected_skeleton()).expect("valid");
        // Root separator is a full 9-vertex grid line (Figure 1 shows the
        // middle column/row).
        assert_eq!(tree.node(0).separator.len(), 9);
        // O(√k) separators: every node obeys |S| ≤ √|V| + 1.
        for t in tree.nodes() {
            assert!(
                t.separator.len() as f64 <= (t.vertices.len() as f64).sqrt() + 1.0,
                "|S|={} |V|={}",
                t.separator.len(),
                t.vertices.len()
            );
        }
        assert!(tree.height() <= 8);
    }

    #[test]
    fn grid_tree_3d() {
        let tree = grid_tree(&[5, 5, 5], RecursionLimits::default());
        let (g, _) = spsep_graph::generators::grid_with_weights(&[5, 5, 5], |_, _| 1.0);
        tree.validate(&g.undirected_skeleton()).expect("valid");
        // Root separator is a 5×5 plane.
        assert_eq!(tree.node(0).separator.len(), 25);
    }

    #[test]
    fn grid_tree_path_like() {
        let tree = grid_tree(&[17], RecursionLimits::default());
        let (g, _) = spsep_graph::generators::grid_with_weights(&[17], |_, _| 1.0);
        tree.validate(&g.undirected_skeleton()).expect("valid");
        assert!(tree.nodes().iter().all(|t| t.separator.len() <= 1));
    }

    #[test]
    fn geometric_tree_on_random_points() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, coords) = spsep_graph::generators::geometric(300, 2, 0.12, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = geometric_tree(&adj, &coords, RecursionLimits::default());
        tree.validate(&adj).expect("valid");
        // Separators should be well below linear: |S| ≤ 6√|V| is generous.
        for t in tree.nodes() {
            assert!(
                (t.separator.len() as f64) <= 6.0 * (t.vertices.len() as f64).sqrt(),
                "|S|={} |V|={}",
                t.separator.len(),
                t.vertices.len()
            );
        }
    }

    #[test]
    fn centroid_tree_on_random_tree() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = spsep_graph::generators::random_tree(200, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = centroid_tree(&adj, RecursionLimits::default());
        tree.validate(&adj).expect("valid");
        assert!(tree.nodes().iter().all(|t| t.separator.len() <= 1));
        // Centroid recursion is logarithmic.
        assert!(tree.height() <= 20, "height {}", tree.height());
    }

    #[test]
    fn bfs_tree_on_grid_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = spsep_graph::generators::grid(&[12, 12], &mut rng);
        let adj = g.undirected_skeleton();
        let tree = bfs_tree(&adj, RecursionLimits::default());
        tree.validate(&adj).expect("valid");
        assert!(tree.height() >= 2);
    }

    #[test]
    fn bfs_tree_on_disconnected_graph() {
        // Two 3x3 grids, disjoint.
        let (g, _) = spsep_graph::generators::grid_with_weights(&[3, 3], |_, _| 1.0);
        let mut adj = g.undirected_skeleton();
        let shift: Vec<Vec<u32>> = adj.iter().map(|l| l.iter().map(|&v| v + 9).collect()).collect();
        adj.extend(shift);
        let tree = bfs_tree(&adj, RecursionLimits::default());
        tree.validate(&adj).expect("valid");
        assert!(tree.node(0).separator.is_empty());
        let (c1, c2) = tree.node(0).children.unwrap();
        assert_eq!(tree.node(c1).vertices.len(), 9);
        assert_eq!(tree.node(c2).vertices.len(), 9);
    }

    #[test]
    fn bfs_tree_on_complete_graph_still_valid() {
        // Expander-ish worst case: K6. BFS has 2 levels; fallback path.
        let n = 6;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|v| (0..n as u32).filter(|&u| u != v as u32).collect())
            .collect();
        let tree = bfs_tree(&adj, RecursionLimits { leaf_size: 2, ..Default::default() });
        tree.validate(&adj).expect("valid");
    }

    #[test]
    fn cut_from_partition_separates() {
        // Path 0-1-2-3, A = {0,1}.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let sep = cut_from_partition(&adj, &[true, true, false, false]);
        assert_eq!(sep.separator, vec![1]);
        assert_eq!(sep.side1, vec![0]);
        assert_eq!(sep.side2, vec![2, 3]);
    }

    #[test]
    fn components_split_balances() {
        // Components of sizes 5, 3, 2 → sides {5} and {3,2}.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 10];
        let link = |a: usize, b: usize, adj: &mut Vec<Vec<u32>>| {
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        };
        for i in 0..4 {
            link(i, i + 1, &mut adj);
        }
        link(5, 6, &mut adj);
        link(6, 7, &mut adj);
        link(8, 9, &mut adj);
        let (s1, s2) = components_split(&adj).expect("disconnected");
        assert_eq!(s1.len() + s2.len(), 10);
        assert_eq!(s1.len().max(s2.len()), 5);
    }
}
