//! Deriving a [`NodeOrder`] from a separator tree: tree locality
//! becomes memory locality.
//!
//! The Section 3.2 relaxation schedule touches distance rows grouped by
//! the *tree position* of each target: all separator vertices of a node
//! `t` are relaxed in the same phase, and sibling subtrees are
//! processed independently. With input vertex ids, those groups are
//! scattered across the whole id space (a grid's hyperplane separator
//! is a stride-`k` comb, for instance). [`separator_locality_order`]
//! ranks vertices by the DFS-preorder position of their owning tree
//! node — `node(v)`, the shallowest separator containing `v` or the
//! leaf owning it — so each phase's targets occupy a contiguous rank
//! range and consecutive phases walk the range monotonically, in the
//! style of rust_road_router's nested-dissection `NodeOrder`.

use spsep_graph::NodeOrder;

use crate::tree::SepTree;

/// Rank vertices by DFS preorder of their owning tree node (ties broken
/// by vertex id, so the order is canonical for a given tree).
///
/// The result is a permutation of `0..n` for any assembled [`SepTree`]
/// (every vertex has an owning node), used by
/// `spsep_core::Preprocessed` to lay out its relaxation buckets.
pub fn separator_locality_order(tree: &SepTree) -> NodeOrder {
    let nodes = tree.nodes();
    // DFS preorder over the (binary) tree, children in stored order.
    let mut dfs_rank = vec![0u32; nodes.len()];
    let mut stack = vec![0u32];
    let mut next = 0u32;
    while let Some(t) = stack.pop() {
        dfs_rank[t as usize] = next;
        next += 1;
        if let Some((a, b)) = nodes[t as usize].children {
            // Push right first so the left child is visited first.
            stack.push(b);
            stack.push(a);
        }
    }
    let mut verts: Vec<u32> = (0..tree.n() as u32).collect();
    verts.sort_by_key(|&v| (dfs_rank[tree.vertex_node(v as usize) as usize], v));
    let Ok(order) = NodeOrder::from_sequence(verts) else {
        // A permutation of 0..n sorted by key is still a permutation;
        // from_sequence can only fail on malformed input.
        unreachable!("sorted vertex ids form a permutation")
    };
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn grid_skeleton(k: usize) -> Vec<Vec<u32>> {
        let n = k * k;
        let mut adj = vec![Vec::new(); n];
        for r in 0..k {
            for c in 0..k {
                let v = r * k + c;
                if c + 1 < k {
                    adj[v].push((v + 1) as u32);
                    adj[v + 1].push(v as u32);
                }
                if r + 1 < k {
                    adj[v].push((v + k) as u32);
                    adj[v + k].push(v as u32);
                }
            }
        }
        adj
    }

    #[test]
    fn order_is_a_permutation_and_groups_separators() {
        let k = 8;
        let adj = grid_skeleton(k);
        let tree = builders::bfs_tree(&adj, crate::RecursionLimits::default());
        let order = separator_locality_order(&tree);
        assert_eq!(order.len(), k * k);
        // Permutation: rank∘node = id.
        for v in 0..(k * k) as u32 {
            assert_eq!(order.node(order.rank(v)), v);
        }
        // Vertices sharing an owning tree node occupy contiguous ranks.
        let mut seen = std::collections::HashSet::new();
        let mut prev = u32::MAX;
        for r in 0..(k * k) as u32 {
            let t = tree.vertex_node(order.node(r) as usize);
            if t != prev {
                assert!(seen.insert(t), "owning node {t} split across ranks");
                prev = t;
            }
        }
    }
}
