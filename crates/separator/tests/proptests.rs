//! Property tests for the decomposition builders: every builder must
//! produce a tree that passes the full Prop 2.1 validator on its target
//! family, with the expected height and separator-size profiles.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_graph::generators;
use spsep_separator::{builders, RecursionLimits};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn grid_trees_always_validate(w in 2usize..20, h in 2usize..20) {
        let tree = builders::grid_tree(&[w, h], RecursionLimits::default());
        let (g, _) = generators::grid_with_weights(&[w, h], |_, _| 1.0);
        prop_assert!(tree.validate(&g.undirected_skeleton()).is_ok());
        // Hyperplane separators of a w×h grid never exceed max(w, h).
        for t in tree.nodes() {
            prop_assert!(t.separator.len() <= w.max(h));
        }
        // Balanced recursion: height ≤ log_{1/α} n with α ≈ 0.6 plus slack.
        let n = (w * h) as f64;
        prop_assert!((tree.height() as f64) <= 3.0 * n.log2() + 4.0);
    }

    #[test]
    fn grid3d_trees_always_validate(a in 2usize..7, b in 2usize..7, c in 2usize..7) {
        let tree = builders::grid_tree(&[a, b, c], RecursionLimits::default());
        let (g, _) = generators::grid_with_weights(&[a, b, c], |_, _| 1.0);
        prop_assert!(tree.validate(&g.undirected_skeleton()).is_ok());
    }

    #[test]
    fn centroid_trees_have_singleton_separators(n in 2usize..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::centroid_tree(&adj, RecursionLimits::default());
        prop_assert!(tree.validate(&adj).is_ok());
        for t in tree.nodes() {
            prop_assert!(t.separator.len() <= 1);
        }
    }

    #[test]
    fn bfs_trees_validate_on_arbitrary_graphs(
        n in 2usize..80,
        density in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(n, n * density, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        prop_assert!(tree.validate(&adj).is_ok());
    }

    #[test]
    fn geometric_trees_validate(n in 20usize..250, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, coords) = generators::geometric(n, 2, 0.2, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::geometric_tree(&adj, &coords, RecursionLimits::default());
        prop_assert!(tree.validate(&adj).is_ok());
    }

    /// Levels and node maps satisfy the paper's structural facts:
    /// boundary vertices have level < node level; separator vertices have
    /// level ≤ node level.
    #[test]
    fn level_invariants(n in 4usize..120, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(n, 3 * n, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        for t in tree.nodes() {
            for &v in &t.boundary {
                prop_assert!(tree.vertex_level(v as usize) < t.level);
            }
            for &v in &t.separator {
                prop_assert!(tree.vertex_level(v as usize) <= t.level);
            }
        }
        // node(v) is a node actually containing v.
        for v in 0..n {
            let t = tree.node(tree.vertex_node(v));
            prop_assert!(t.vertices.binary_search(&(v as u32)).is_ok());
        }
    }
}
