//! Johnson's algorithm: s-source shortest paths with real weights.
//!
//! The paper's introduction cites "O(mn + n² log n), using a Fibonacci
//! heap implementation of Johnson's algorithm" as the best known
//! sequential bound for general digraphs — this is the sequential
//! baseline experiment E11 measures the crossover against. (We use a
//! binary heap; the log-factor difference is irrelevant to the measured
//! shapes and noted in EXPERIMENTS.md.)

use crate::{bellman_ford, dijkstra, AbsorbingCycle, SsspResult};
use rayon::prelude::*;
use spsep_graph::{DiGraph, Edge};

/// Shortest paths from every vertex in `sources`, allowing negative edge
/// weights (no negative cycles).
///
/// Phase 1 computes potentials `h(v)` by Bellman–Ford from a virtual
/// super-source; phase 2 reweights `w'(u,v) = w + h(u) − h(v) ≥ 0` and
/// runs Dijkstra per source (parallel over sources); phase 3 undoes the
/// reweighting.
pub fn johnson(g: &DiGraph<f64>, sources: &[usize]) -> Result<Vec<SsspResult>, AbsorbingCycle> {
    let n = g.n();
    // Virtual source n with zero-weight edges to every vertex.
    let mut aug_edges: Vec<Edge<f64>> = g.edges().to_vec();
    aug_edges.reserve(n);
    for v in 0..n {
        aug_edges.push(Edge::new(n, v, 0.0));
    }
    let aug = DiGraph::from_edges(n + 1, aug_edges);
    let h = bellman_ford(&aug, n)?.dist;
    let reweighted = g.map_weights(|e| {
        let w = e.w + h[e.from as usize] - h[e.to as usize];
        debug_assert!(w >= -1e-9, "reweighting must be nonnegative");
        w.max(0.0)
    });
    let results: Vec<SsspResult> = sources
        .par_iter()
        .map(|&s| {
            let mut r = dijkstra(&reweighted, s);
            for v in 0..n {
                if r.dist[v].is_finite() {
                    r.dist[v] += h[v] - h[s];
                }
            }
            r
        })
        .collect();
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::generators;

    #[test]
    fn matches_bellman_ford_with_negative_edges() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        let (g, _) = generators::grid(&[5, 5], &mut rng);
        let g = generators::skew_by_potentials(&g, 4.0, &mut rng);
        assert!(g.edges().iter().any(|e| e.w < 0.0), "want negative edges");
        let sources = [0usize, 12, 24];
        let jr = johnson(&g, &sources).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let bf = bellman_ford(&g, s).unwrap();
            for v in 0..g.n() {
                assert!(
                    (jr[i].dist[v] - bf.dist[v]).abs() < 1e-9,
                    "source {s} vertex {v}: {} vs {}",
                    jr[i].dist[v],
                    bf.dist[v]
                );
            }
        }
    }

    #[test]
    fn propagates_negative_cycle_error() {
        use spsep_graph::Edge;
        let g = DiGraph::from_edges(
            2,
            vec![Edge::new(0, 1, -1.0), Edge::new(1, 0, -1.0)],
        );
        assert!(johnson(&g, &[0]).is_err());
    }

    #[test]
    fn unreachable_stays_infinite() {
        use spsep_graph::Edge;
        let g = DiGraph::from_edges(3, vec![Edge::new(0, 1, -2.0)]);
        let r = johnson(&g, &[0]).unwrap();
        assert_eq!(r[0].dist[1], -2.0);
        assert!(r[0].dist[2].is_infinite());
    }
}
