//! Dense all-pairs shortest paths baselines.
//!
//! [`repeated_squaring_apsp`] is the `Õ(n³)`-work polylog-time algorithm
//! behind the **transitive-closure bottleneck** the paper's title result
//! beats on separator-decomposable graphs; [`floyd_warshall_apsp`] is its
//! sequential cousin. Both are wired through [`spsep_graph::SemiMatrix`].

use crate::AbsorbingCycle;
use spsep_graph::dense::SemiMatrix;
use spsep_graph::semiring::Tropical;
use spsep_graph::DiGraph;

/// Build the dense tropical matrix of a graph (diagonal `0`, parallel
/// edges combined by `min`).
fn dense_of(g: &DiGraph<f64>) -> SemiMatrix<Tropical> {
    let mut m = SemiMatrix::<Tropical>::identity(g.n());
    for e in g.edges() {
        m.relax(e.from as usize, e.to as usize, e.w);
    }
    m
}

/// All-pairs distances by Floyd–Warshall: `(matrix, inner ops)`.
pub fn floyd_warshall_apsp(
    g: &DiGraph<f64>,
) -> Result<(SemiMatrix<Tropical>, u64), AbsorbingCycle> {
    let mut m = dense_of(g);
    let out = m.floyd_warshall();
    if out.absorbing_cycle {
        return Err(AbsorbingCycle);
    }
    Ok((m, out.ops))
}

/// All-pairs distances by min-plus repeated squaring: `(matrix, inner
/// ops)`. ~`log₂ n` times the work of Floyd–Warshall, but polylog depth —
/// the NC reference point of the paper's introduction.
pub fn repeated_squaring_apsp(
    g: &DiGraph<f64>,
) -> Result<(SemiMatrix<Tropical>, u64), AbsorbingCycle> {
    let mut m = dense_of(g);
    let out = m.repeated_squaring();
    if out.absorbing_cycle {
        return Err(AbsorbingCycle);
    }
    Ok((m, out.ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::generators;

    #[test]
    fn both_match_dijkstra_rows() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(14);
        let (g, _) = generators::grid(&[4, 5], &mut rng);
        let (fw, _) = floyd_warshall_apsp(&g).unwrap();
        let (sq, sq_ops) = repeated_squaring_apsp(&g).unwrap();
        for s in 0..g.n() {
            let dj = crate::dijkstra(&g, s);
            for v in 0..g.n() {
                assert!((fw.get(s, v) - dj.dist[v]).abs() < 1e-9);
                assert!((sq.get(s, v) - dj.dist[v]).abs() < 1e-9);
            }
        }
        // Squaring performs multiple cubes of work.
        assert!(sq_ops >= (g.n() as u64).pow(3));
    }

    #[test]
    fn negative_cycle_is_reported() {
        use spsep_graph::Edge;
        let g = DiGraph::from_edges(
            2,
            vec![Edge::new(0, 1, 1.0), Edge::new(1, 0, -2.0)],
        );
        assert!(floyd_warshall_apsp(&g).is_err());
        assert!(repeated_squaring_apsp(&g).is_err());
    }
}
