//! Reachability baselines: per-source BFS and dense boolean transitive
//! closure via [`BitMatrix`].

use spsep_graph::{BitMatrix, DiGraph};

/// Vertices reachable from `source` (including itself) by directed BFS.
pub fn reachable_from<W: Copy>(g: &DiGraph<W>, source: usize) -> Vec<bool> {
    let dist = spsep_graph::traversal::bfs_directed(g, source);
    dist.into_iter().map(|d| d != u32::MAX).collect()
}

/// Dense reflexive transitive closure of the whole graph by repeated
/// boolean squaring — the `M(n)`-work reference point (Section 1: for
/// reachability the best NC algorithms use `Õ(M(n))` work).
pub fn transitive_closure_dense<W: Copy>(g: &DiGraph<W>) -> BitMatrix {
    let mut adj = BitMatrix::zeros(g.n(), g.n());
    for e in g.edges() {
        adj.set(e.from as usize, e.to as usize, true);
    }
    adj.transitive_closure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::generators;

    #[test]
    fn closure_rows_match_bfs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(15);
        let g = generators::gnm(40, 80, &mut rng);
        let closure = transitive_closure_dense(&g);
        for s in 0..g.n() {
            let bfs = reachable_from(&g, s);
            for (v, &b) in bfs.iter().enumerate() {
                assert_eq!(closure.get(s, v), b, "source {s} vertex {v}");
            }
        }
    }

    #[test]
    fn dag_reachability() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(16);
        let g = generators::layered_dag(4, 6, 2, &mut rng);
        let r = reachable_from(&g, 0);
        assert!(r[0]);
        // Nothing in layer 0 other than the source itself is reachable.
        for (v, &reached) in r.iter().enumerate().take(6).skip(1) {
            assert!(!reached, "vertex {v} should be unreachable");
        }
    }
}
