//! Label-setting (Dijkstra-style) single- and multi-source search over an
//! arbitrary **selective** [`Semiring`], on a caller-provided CSR.
//!
//! This is the sparse-leaf engine of the augmentation (`spsep-core` calls
//! it when a leaf subgraph has `m = O(k)` edges, where dense
//! Floyd–Warshall would pay `k³` for `O(|iface| · m log k)` worth of
//! information). It is deliberately allocation-light: callers hand in the
//! CSR arrays *and* the `dist`/`heap` scratch, so a workspace can run
//! thousands of leaves with zero steady-state allocation.
//!
//! ## Validity
//!
//! Label-setting is only correct when settled labels are final, which
//! needs two properties the caller must guarantee (`spsep-core` gates on
//! them before choosing this path):
//!
//! * the semiring is *selective* ([`Semiring::is_selective`]) — `combine`
//!   picks one operand under a total preorder, so "best label first" is
//!   meaningful;
//! * every edge weight is **non-improving**: `extend`ing a path by the
//!   edge never beats the path itself (`!better(extend(d, w), d)`, e.g.
//!   `w ≥ 0` under the tropical semiring, `p ≤ 1` under reliability).
//!
//! ## Determinism
//!
//! The heap breaks weight ties by vertex id, and equal-weight label
//! updates keep the incumbent (`better`, not `combine`, guards the
//! relaxation), so the result — already unique as a value — is computed
//! through an identical comparison sequence regardless of edge order
//! perturbations upstream, and contains no thread-count dependence at
//! all (each source is scanned sequentially).

use spsep_graph::semiring::Semiring;

/// Reusable scratch for [`sssp_semiring_csr`]: the distance labels and
/// the binary heap. `dist` doubles as the output.
#[derive(Debug)]
pub struct SemiringSsspScratch<S: Semiring> {
    /// Labels; after a run, `dist[v]` is the best path weight source → `v`
    /// (`0̄` if unreachable).
    pub dist: Vec<S::W>,
    heap: Vec<(S::W, u32)>,
}

impl<S: Semiring> Default for SemiringSsspScratch<S> {
    fn default() -> Self {
        SemiringSsspScratch {
            dist: Vec::new(),
            heap: Vec::new(),
        }
    }
}

impl<S: Semiring> SemiringSsspScratch<S> {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes held by the scratch buffers (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<S::W>()
            + self.heap.capacity() * std::mem::size_of::<(S::W, u32)>()
    }
}

/// `a` strictly precedes `b` in the heap order: better weight first,
/// vertex id as the deterministic tie-break.
#[inline]
fn heap_before<S: Semiring>(a: &(S::W, u32), b: &(S::W, u32)) -> bool {
    S::better(a.0, b.0) || (!S::better(b.0, a.0) && a.1 < b.1)
}

fn heap_push<S: Semiring>(heap: &mut Vec<(S::W, u32)>, item: (S::W, u32)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap_before::<S>(&heap[i], &heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_pop<S: Semiring>(heap: &mut Vec<(S::W, u32)>) -> Option<(S::W, u32)> {
    let last = heap.len().checked_sub(1)?;
    heap.swap(0, last);
    let top = heap.pop();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut best = i;
        if l < heap.len() && heap_before::<S>(&heap[l], &heap[best]) {
            best = l;
        }
        if r < heap.len() && heap_before::<S>(&heap[r], &heap[best]) {
            best = r;
        }
        if best == i {
            break;
        }
        heap.swap(i, best);
        i = best;
    }
    top
}

/// Dijkstra from `source` over the CSR `(offsets, targets, weights)` with
/// `offsets.len() - 1` vertices. Labels land in `scratch.dist`; returns
/// the number of label operations (pops + edge relaxations) for the PRAM
/// cost model. See the module docs for the validity preconditions.
pub fn sssp_semiring_csr<S: Semiring>(
    offsets: &[u32],
    targets: &[u32],
    weights: &[S::W],
    source: u32,
    scratch: &mut SemiringSsspScratch<S>,
) -> u64 {
    let n = offsets.len().saturating_sub(1);
    scratch.dist.clear();
    scratch.dist.resize(n, S::zero());
    scratch.heap.clear();
    if n == 0 {
        return 0;
    }
    let mut ops = 0u64;
    scratch.dist[source as usize] = S::one();
    heap_push::<S>(&mut scratch.heap, (S::one(), source));
    while let Some((d, v)) = heap_pop::<S>(&mut scratch.heap) {
        ops += 1;
        // Stale entry: the label improved after this push.
        if S::better(scratch.dist[v as usize], d) {
            continue;
        }
        let (lo, hi) = (offsets[v as usize] as usize, offsets[v as usize + 1] as usize);
        for (&u, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
            ops += 1;
            let cand = S::extend(d, w);
            if S::better(cand, scratch.dist[u as usize]) {
                scratch.dist[u as usize] = cand;
                heap_push::<S>(&mut scratch.heap, (cand, u));
            }
        }
    }
    ops
}

/// Multi-source convenience wrapper: one sequential Dijkstra per source,
/// rows concatenated in source order into `out` (`|sources| × n`,
/// row-major). Returns total label operations.
pub fn sssp_semiring_multi<S: Semiring>(
    offsets: &[u32],
    targets: &[u32],
    weights: &[S::W],
    sources: &[u32],
    out: &mut Vec<S::W>,
    scratch: &mut SemiringSsspScratch<S>,
) -> u64 {
    let n = offsets.len().saturating_sub(1);
    out.clear();
    out.reserve(sources.len() * n);
    let mut ops = 0;
    for &s in sources {
        ops += sssp_semiring_csr::<S>(offsets, targets, weights, s, scratch);
        out.extend_from_slice(&scratch.dist);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::{Boolean, Reliability, Tropical};

    /// CSR of: 0→1 (1.0), 0→2 (4.0), 1→2 (2.0), 2→3 (1.0), 3→1 (7.0).
    fn csr_f64() -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        (
            vec![0, 2, 3, 4, 5],
            vec![1, 2, 2, 3, 1],
            vec![1.0, 4.0, 2.0, 1.0, 7.0],
        )
    }

    #[test]
    fn tropical_matches_hand_computed() {
        let (off, to, w) = csr_f64();
        let mut scratch = SemiringSsspScratch::<Tropical>::new();
        let ops = sssp_semiring_csr::<Tropical>(&off, &to, &w, 0, &mut scratch);
        assert_eq!(scratch.dist, vec![0.0, 1.0, 3.0, 4.0]);
        assert!(ops > 0);
    }

    #[test]
    fn unreachable_is_zero() {
        let off = vec![0, 1, 1, 1];
        let to = vec![1];
        let w = vec![2.0];
        let mut scratch = SemiringSsspScratch::<Tropical>::new();
        sssp_semiring_csr::<Tropical>(&off, &to, &w, 0, &mut scratch);
        assert_eq!(scratch.dist, vec![0.0, 2.0, f64::INFINITY]);
    }

    #[test]
    fn boolean_reachability() {
        let (off, to, w) = csr_f64();
        let wb: Vec<bool> = w.iter().map(|_| true).collect();
        let mut scratch = SemiringSsspScratch::<Boolean>::new();
        sssp_semiring_csr::<Boolean>(&off, &to, &wb, 1, &mut scratch);
        assert_eq!(scratch.dist, vec![false, true, true, true]);
    }

    #[test]
    fn reliability_prefers_products() {
        // 0→1 direct p=.5; 0→2 p=.9, 2→1 p=.9 ⇒ .81 beats .5.
        let off = vec![0, 2, 2, 3];
        let to = vec![1, 2, 1];
        let w = vec![0.5, 0.9, 0.9];
        let mut scratch = SemiringSsspScratch::<Reliability>::new();
        sssp_semiring_csr::<Reliability>(&off, &to, &w, 0, &mut scratch);
        assert!((scratch.dist[1] - 0.81).abs() < 1e-12);
    }

    #[test]
    fn multi_source_rows_in_order() {
        let (off, to, w) = csr_f64();
        let mut scratch = SemiringSsspScratch::<Tropical>::new();
        let mut out = Vec::new();
        sssp_semiring_multi::<Tropical>(&off, &to, &w, &[2, 0], &mut out, &mut scratch);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..4], &[f64::INFINITY, 8.0, 0.0, 1.0]);
        assert_eq!(&out[4..], &[0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn matches_f64_dijkstra_on_a_digraph() {
        // Cross-check against the concrete f64 baseline on a small graph.
        use spsep_graph::{DiGraph, Edge};
        let g = DiGraph::from_edges(
            5,
            vec![
                Edge::new(0, 1, 2.0),
                Edge::new(1, 2, 2.5),
                Edge::new(2, 0, 1.0),
                Edge::new(0, 3, 9.0),
                Edge::new(2, 3, 0.5),
                Edge::new(3, 4, 1.0),
                Edge::new(4, 1, 0.25),
            ],
        );
        // Build CSR in the same edge order the DiGraph exposes.
        let mut off = vec![0u32];
        let mut to = Vec::new();
        let mut w = Vec::new();
        for v in 0..5usize {
            for e in g.out_edges(v) {
                to.push(e.to);
                w.push(e.w);
            }
            off.push(to.len() as u32);
        }
        let mut scratch = SemiringSsspScratch::<Tropical>::new();
        for s in 0..5 {
            sssp_semiring_csr::<Tropical>(&off, &to, &w, s, &mut scratch);
            let oracle = crate::dijkstra(&g, s as usize).dist;
            for (v, &want) in oracle.iter().enumerate().take(5) {
                assert_eq!(
                    scratch.dist[v].to_bits(),
                    want.to_bits(),
                    "source {s} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_leaves_no_state_behind() {
        let (off, to, w) = csr_f64();
        let mut scratch = SemiringSsspScratch::<Tropical>::new();
        sssp_semiring_csr::<Tropical>(&off, &to, &w, 3, &mut scratch);
        let first = scratch.dist.clone();
        // Dirty the scratch with a different graph, then rerun.
        sssp_semiring_csr::<Tropical>(&[0, 1, 1], &[1], &[5.0], 0, &mut scratch);
        sssp_semiring_csr::<Tropical>(&off, &to, &w, 3, &mut scratch);
        assert_eq!(first, scratch.dist);
    }
}
