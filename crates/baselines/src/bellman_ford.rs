//! Bellman–Ford: sequential, parallel round-synchronous, and
//! semiring-generic reference variants.
//!
//! Section 2.2 of the paper: "single source shortest-paths computation can
//! be performed … in `O(diam(G) log n)` time using `O(|E| diam(G))` work
//! … by running a parallel version of the Bellman–Ford algorithm", where
//! each phase scans all edges entering each vertex. [`parallel_bellman_ford`]
//! is exactly that primitive; `spsep-core` then restricts *which* edges
//! each phase scans (Section 3.2).

use crate::{AbsorbingCycle, SsspResult};
use rayon::prelude::*;
use spsep_graph::{DiGraph, Semiring};

/// Sequential Bellman–Ford with early exit; detects negative cycles
/// reachable from the source.
pub fn bellman_ford(g: &DiGraph<f64>, source: usize) -> Result<SsspResult, AbsorbingCycle> {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    dist[source] = 0.0;
    for round in 0..n {
        let mut changed = false;
        for (eid, e) in g.edges().iter().enumerate() {
            let du = dist[e.from as usize];
            if du.is_infinite() {
                continue;
            }
            let nd = du + e.w;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                parent[e.to as usize] = eid as u32;
                changed = true;
            }
        }
        if !changed {
            return Ok(SsspResult { dist, parent });
        }
        if round == n - 1 {
            return Err(AbsorbingCycle);
        }
    }
    Ok(SsspResult { dist, parent })
}

/// Round-synchronous parallel Bellman–Ford over incoming edges: each
/// phase computes, for every vertex in parallel, the best relaxation over
/// its in-edges against the previous phase's distances. Runs `max_rounds`
/// phases (use `diam(G)`); returns `Err` if the last round still improved
/// (a negative cycle, or `max_rounds` too small).
///
/// Returns `(distances, relaxations_performed, rounds_used)`.
pub fn parallel_bellman_ford(
    g: &DiGraph<f64>,
    source: usize,
    max_rounds: usize,
) -> Result<(Vec<f64>, u64, usize), AbsorbingCycle> {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut relaxations = 0u64;
    for round in 0..max_rounds + 1 {
        let prev = dist.clone();
        let changed = std::sync::atomic::AtomicBool::new(false);
        dist.par_iter_mut().enumerate().for_each(|(v, dv)| {
            let mut best = *dv;
            for e in g.in_edges(v) {
                let du = prev[e.from as usize];
                if du.is_finite() && du + e.w < best {
                    best = du + e.w;
                }
            }
            if best < *dv {
                *dv = best;
                changed.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        });
        relaxations += g.m() as u64;
        if !changed.into_inner() {
            return Ok((dist, relaxations, round));
        }
        if round == max_rounds {
            return Err(AbsorbingCycle);
        }
    }
    Ok((dist, relaxations, max_rounds))
}

/// Semiring-generic Bellman–Ford reference: iterate to fixpoint, at most
/// `n` rounds; a change in round `n` means an absorbing cycle. The trusted
/// oracle the property tests compare `spsep-core` against on every
/// algebra.
pub fn bellman_ford_semiring<S: Semiring>(
    g: &DiGraph<S::W>,
    source: usize,
) -> Result<Vec<S::W>, AbsorbingCycle> {
    let n = g.n();
    let mut dist = vec![S::zero(); n];
    dist[source] = S::one();
    for round in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            let du = dist[e.from as usize];
            if S::is_zero(du) {
                continue;
            }
            let cand = S::extend(du, e.w);
            let cur = dist[e.to as usize];
            let merged = S::combine(cur, cand);
            if merged != cur {
                dist[e.to as usize] = merged;
                changed = true;
            }
        }
        if !changed {
            return Ok(dist);
        }
        if round == n {
            return Err(AbsorbingCycle);
        }
    }
    Ok(dist)
}

/// Extract an explicit negative cycle, if one is reachable from `source`
/// (or from anywhere, when `source` is `None`): returns the cycle's
/// vertex sequence `v₀ → v₁ → … → v₀`.
///
/// Runs Bellman–Ford with parent tracking; a vertex still relaxing in
/// round `n` lies on or downstream of a negative cycle, and walking `n`
/// parent steps from it lands inside the cycle (CLR-style witness
/// extraction — the constructive side of the paper's comment (i)).
pub fn find_negative_cycle(g: &DiGraph<f64>, source: Option<usize>) -> Option<Vec<u32>> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    match source {
        Some(s) => dist[s] = 0.0,
        None => dist.fill(0.0), // virtual super-source
    }
    let mut witness = None;
    for round in 0..=n {
        let mut changed = false;
        for (eid, e) in g.edges().iter().enumerate() {
            let du = dist[e.from as usize];
            if du.is_infinite() {
                continue;
            }
            let nd = du + e.w;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                parent[e.to as usize] = eid as u32;
                changed = true;
                if round == n {
                    witness = Some(e.to as usize);
                }
            }
        }
        if !changed {
            return None;
        }
    }
    // Walk n parent steps to get inside the cycle, then close it.
    let mut v = witness?;
    for _ in 0..n {
        v = g.edge(parent[v] as usize).from as usize;
    }
    let start = v;
    let mut cycle = vec![start as u32];
    let mut cur = g.edge(parent[start] as usize).from as usize;
    while cur != start {
        cycle.push(cur as u32);
        cur = g.edge(parent[cur] as usize).from as usize;
    }
    cycle.reverse();
    Some(cycle)
}

/// Semiring-generic version of [`find_negative_cycle`]: extract a
/// witness for an *absorbing* cycle (paper comment (i)) under any
/// idempotent path algebra — a cycle along which relaxation never
/// stabilizes. Returns the cycle's vertex sequence, or `None` when
/// relaxation converges (no absorbing cycle).
///
/// Same CLR-style extraction as the tropical specialization: relax from
/// a virtual super-source for `n + 1` rounds with parent-edge tracking;
/// a vertex still improving in round `n` is downstream of the cycle,
/// and `n` parent steps from it land inside it.
pub fn find_absorbing_cycle_semiring<S: Semiring>(g: &DiGraph<S::W>) -> Option<Vec<u32>> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    let mut dist: Vec<S::W> = vec![S::one(); n]; // virtual super-source
    let mut parent = vec![u32::MAX; n];
    let mut witness = None;
    for round in 0..=n {
        let mut changed = false;
        for (eid, e) in g.edges().iter().enumerate() {
            let du = dist[e.from as usize];
            if S::is_zero(du) {
                continue;
            }
            let cand = S::extend(du, e.w);
            let cur = dist[e.to as usize];
            let merged = S::combine(cur, cand);
            if merged != cur {
                dist[e.to as usize] = merged;
                parent[e.to as usize] = eid as u32;
                changed = true;
                if round == n {
                    witness = Some(e.to as usize);
                }
            }
        }
        if !changed {
            return None;
        }
    }
    let mut v = witness?;
    for _ in 0..n {
        v = g.edge(parent[v] as usize).from as usize;
    }
    let start = v;
    let mut cycle = vec![start as u32];
    let mut cur = g.edge(parent[start] as usize).from as usize;
    while cur != start {
        cycle.push(cur as u32);
        cur = g.edge(parent[cur] as usize).from as usize;
    }
    cycle.reverse();
    Some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::{Bottleneck, Tropical};
    use spsep_graph::{generators, Edge};

    #[test]
    fn matches_dijkstra_on_nonnegative() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(10);
        let (g, _) = generators::grid(&[5, 6], &mut rng);
        let bf = bellman_ford(&g, 3).unwrap();
        let dj = crate::dijkstra(&g, 3);
        for v in 0..g.n() {
            assert!((bf.dist[v] - dj.dist[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn handles_negative_edges() {
        let g = DiGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 5.0),
                Edge::new(0, 2, 2.0),
                Edge::new(2, 1, -4.0),
                Edge::new(1, 3, 1.0),
            ],
        );
        let r = bellman_ford(&g, 0).unwrap();
        assert_eq!(r.dist, vec![0.0, -2.0, 2.0, -1.0]);
        assert_eq!(r.path_to(&g, 3).unwrap(), vec![0, 2, 1, 3]);
    }

    #[test]
    fn detects_negative_cycle() {
        let g = DiGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, -3.0),
                Edge::new(2, 1, 1.0),
            ],
        );
        assert!(matches!(bellman_ford(&g, 0), Err(AbsorbingCycle)));
    }

    #[test]
    fn unreachable_negative_cycle_is_fine() {
        // Cycle 1<->2 negative, but source 0 can't reach it.
        let g = DiGraph::from_edges(
            3,
            vec![Edge::new(1, 2, -3.0), Edge::new(2, 1, 1.0)],
        );
        let r = bellman_ford(&g, 0).unwrap();
        assert_eq!(r.dist[0], 0.0);
        assert!(r.dist[1].is_infinite());
    }

    #[test]
    fn parallel_matches_sequential() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let (g, _) = generators::grid(&[6, 6], &mut rng);
        let g = generators::skew_by_potentials(&g, 3.0, &mut rng);
        let seq = bellman_ford(&g, 0).unwrap();
        let (par, _, rounds) = parallel_bellman_ford(&g, 0, g.n()).unwrap();
        assert!(rounds <= g.n());
        for (v, &p) in par.iter().enumerate() {
            assert!((seq.dist[v] - p).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_detects_negative_cycle() {
        let g = DiGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, -3.0),
                Edge::new(2, 1, 1.0),
            ],
        );
        assert!(parallel_bellman_ford(&g, 0, g.n()).is_err());
    }

    #[test]
    fn semiring_reference_tropical_matches_plain() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let (g, _) = generators::grid(&[4, 7], &mut rng);
        let plain = bellman_ford(&g, 2).unwrap();
        let generic = bellman_ford_semiring::<Tropical>(&g, 2).unwrap();
        for (v, &gd) in generic.iter().enumerate() {
            assert!((plain.dist[v] - gd).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_cycle_witness_is_a_real_negative_cycle() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let (g, _) = generators::grid(&[5, 5], &mut rng);
        // Plant a negative 3-cycle on vertices 3, 7, 12.
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(3, 7, -2.0));
        edges.push(Edge::new(7, 12, -2.0));
        edges.push(Edge::new(12, 3, -2.0));
        let g = DiGraph::from_edges(25, edges);
        let cycle = find_negative_cycle(&g, None).expect("cycle exists");
        assert!(cycle.len() >= 2);
        // Verify the cycle is closed and has negative total weight using
        // the best parallel edge for each hop.
        let mut total = 0.0;
        for i in 0..cycle.len() {
            let (a, b) = (cycle[i], cycle[(i + 1) % cycle.len()]);
            let w = g
                .out_edges(a as usize)
                .filter(|e| e.to == b)
                .map(|e| e.w)
                .fold(f64::INFINITY, f64::min);
            assert!(w.is_finite(), "cycle edge {a}→{b} missing");
            total += w;
        }
        assert!(total < 0.0, "cycle weight {total}");
    }

    #[test]
    fn no_cycle_returns_none() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(78);
        let (g, _) = generators::grid(&[4, 4], &mut rng);
        let g = generators::skew_by_potentials(&g, 5.0, &mut rng);
        assert!(find_negative_cycle(&g, None).is_none());
        assert!(find_negative_cycle(&g, Some(0)).is_none());
    }

    #[test]
    fn unreachable_cycle_from_fixed_source() {
        // Cycle on {1,2} unreachable from 0.
        let g = DiGraph::from_edges(
            3,
            vec![Edge::new(1, 2, -1.0), Edge::new(2, 1, -1.0)],
        );
        assert!(find_negative_cycle(&g, Some(0)).is_none());
        assert!(find_negative_cycle(&g, None).is_some());
    }

    #[test]
    fn semiring_reference_bottleneck() {
        // Widest path 0→2: direct width 1, via 1 width min(5, 3) = 3.
        let g = DiGraph::from_edges(
            3,
            vec![
                Edge::new(0, 2, 1.0),
                Edge::new(0, 1, 5.0),
                Edge::new(1, 2, 3.0),
            ],
        );
        let w = bellman_ford_semiring::<Bottleneck>(&g, 0).unwrap();
        assert_eq!(w[2], 3.0);
        assert_eq!(w[1], 5.0);
        assert_eq!(w[0], f64::INFINITY); // 1̄ of the bottleneck algebra
    }
}
