//! Binary-heap Dijkstra for nonnegative edge weights.

use crate::SsspResult;
use rayon::prelude::*;
use spsep_graph::DiGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by smallest distance first.
struct Entry {
    dist: f64,
    vertex: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.vertex == other.vertex
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are never NaN.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Single-source shortest paths with **nonnegative** weights.
///
/// # Panics
/// Debug builds panic if a negative edge is relaxed; release builds
/// silently compute a possibly-wrong answer (matching the classic
/// precondition).
pub fn dijkstra(g: &DiGraph<f64>, source: usize) -> SsspResult {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(Entry {
        dist: 0.0,
        vertex: source as u32,
    });
    while let Some(Entry { dist: d, vertex: v }) = heap.pop() {
        let v = v as usize;
        if d > dist[v] {
            continue; // stale entry
        }
        for &eid in g.out_edge_ids(v) {
            let e = g.edge(eid as usize);
            debug_assert!(e.w >= 0.0, "dijkstra requires nonnegative weights");
            let nd = d + e.w;
            let u = e.to as usize;
            if nd < dist[u] {
                dist[u] = nd;
                parent[u] = eid;
                heap.push(Entry {
                    dist: nd,
                    vertex: e.to,
                });
            }
        }
    }
    SsspResult { dist, parent }
}

/// Dijkstra from many sources, parallelized over sources with rayon (the
/// "embarrassingly parallel over s" baseline for the per-source work
/// comparisons of Table 1).
pub fn dijkstra_multi(g: &DiGraph<f64>, sources: &[usize]) -> Vec<SsspResult> {
    sources.par_iter().map(|&s| dijkstra(g, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::generators;
    use spsep_graph::Edge;

    #[test]
    fn diamond_distances_and_path() {
        let g = DiGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 3, 2.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 0.5),
            ],
        );
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0.0, 1.0, 4.0, 3.0]);
        assert_eq!(r.path_to(&g, 3).unwrap(), vec![0, 1, 3]);
        assert_eq!(r.path_to(&g, 0).unwrap(), vec![0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = DiGraph::from_edges(3, vec![Edge::new(0, 1, 1.0)]);
        let r = dijkstra(&g, 0);
        assert!(r.dist[2].is_infinite());
        assert!(r.path_to(&g, 2).is_none());
    }

    #[test]
    fn grid_distances_are_consistent_with_triangle_inequality() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let (g, _) = generators::grid(&[6, 7], &mut rng);
        let r = dijkstra(&g, 0);
        for e in g.edges() {
            assert!(
                r.dist[e.to as usize] <= r.dist[e.from as usize] + e.w + 1e-12,
                "triangle inequality violated"
            );
        }
        // Every finite-distance vertex's parent edge is tight.
        for v in 1..g.n() {
            if r.dist[v].is_finite() {
                let e = g.edge(r.parent[v] as usize);
                assert!((r.dist[e.from as usize] + e.w - r.dist[v]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multi_source_matches_single() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::grid(&[5, 5], &mut rng);
        let multi = dijkstra_multi(&g, &[0, 7, 24]);
        for (i, &s) in [0usize, 7, 24].iter().enumerate() {
            assert_eq!(multi[i].dist, dijkstra(&g, s).dist);
        }
    }
}
