//! Baseline shortest-path and reachability algorithms.
//!
//! These are the algorithms the paper compares against (Section 1,
//! "Previous Work", and the sequential bounds discussion):
//!
//! * [`dijkstra()`](dijkstra()) — binary-heap Dijkstra, `O(m log n)` per source,
//!   nonnegative weights;
//! * [`bellman_ford()`](bellman_ford()) / [`parallel_bellman_ford`] — real weights, the
//!   primitive whose *parallel* variant the paper's scheduled query engine
//!   refines;
//! * [`johnson()`](johnson()) — `O(mn + n² log n)`-style s-source shortest paths with
//!   real weights ("the best known sequential time bound" the paper cites);
//! * [`apsp`] — dense Floyd–Warshall and min-plus repeated squaring, the
//!   `Õ(n³)`-work NC algorithm behind the transitive-closure bottleneck;
//! * [`reach`] — per-source BFS and dense boolean transitive closure.

pub mod apsp;
pub mod bellman_ford;
pub mod dijkstra;
pub mod johnson;
pub mod reach;
pub mod semiring_dijkstra;

pub use apsp::{floyd_warshall_apsp, repeated_squaring_apsp};
pub use bellman_ford::{
    bellman_ford, bellman_ford_semiring, find_absorbing_cycle_semiring,
    find_negative_cycle, parallel_bellman_ford,
};
pub use dijkstra::{dijkstra, dijkstra_multi};
pub use johnson::johnson;
pub use semiring_dijkstra::{sssp_semiring_csr, sssp_semiring_multi, SemiringSsspScratch};
pub use reach::{reachable_from, transitive_closure_dense};

/// The input contains an absorbing cycle (a negative cycle under the
/// tropical semiring), so some requested distances are undefined.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AbsorbingCycle;

impl std::fmt::Display for AbsorbingCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains an absorbing (negative) cycle")
    }
}

impl std::error::Error for AbsorbingCycle {}

/// Distances plus shortest-path-tree parent edges from one source.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// `dist[v]` = weight of the best path found (`+∞` if unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` = edge id of the tree edge entering `v`
    /// (`u32::MAX` for the source and unreachable vertices).
    pub parent: Vec<u32>,
}

impl SsspResult {
    /// Walk parent edges back from `v` to the source; returns the vertex
    /// sequence source → … → `v`, or `None` if `v` is unreachable.
    pub fn path_to(&self, g: &spsep_graph::DiGraph<f64>, v: usize) -> Option<Vec<u32>> {
        if self.dist[v].is_infinite() {
            return None;
        }
        let mut path = vec![v as u32];
        let mut cur = v;
        let mut guard = 0usize;
        while self.parent[cur] != u32::MAX {
            let e = g.edge(self.parent[cur] as usize);
            cur = e.from as usize;
            path.push(cur as u32);
            guard += 1;
            assert!(guard <= g.n(), "parent pointers form a cycle");
        }
        path.reverse();
        Some(path)
    }
}
