//! EREW-PRAM cost accounting.
//!
//! The paper's Table 1 states bounds in the PRAM **work / time** model:
//! *work* is the total number of primitive operations across all
//! processors, *time* (depth) is the length of the critical path, where a
//! parallel combining step over `k` items costs `O(log k)` time on an EREW
//! PRAM.
//!
//! No PRAM exists, so we *simulate the cost model*: algorithms in this
//! workspace thread a [`Metrics`] handle through their phases and charge
//!
//! * `work` — one unit per primitive operation (edge relaxation,
//!   Floyd–Warshall inner step, matrix word-op, …), via the typed
//!   [`Counter`] taxonomy so experiments can report per-kind breakdowns;
//! * `depth` — `⌈log₂ k⌉ + 1` per parallel phase of width `k`, via
//!   [`Metrics::phase`].
//!
//! The counters are atomics with relaxed ordering: they are statistics, not
//! synchronization, and must stay cheap inside rayon loops. Execution
//! itself runs on real threads through [`run_phase`], which pairs a rayon
//! parallel iteration with the corresponding depth charge — that is the
//! whole "PRAM simulator": real parallel speedup plus model-faithful cost
//! numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Kinds of primitive work the algorithms charge for.
///
/// The split mirrors where the paper's analysis attributes work:
/// Floyd–Warshall inside tree nodes, path-doubling steps, the 3-limited
/// Bellman–Ford, query-time relaxations, and boolean matrix word-ops.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Edge relaxations performed by query-time Bellman–Ford scans.
    Relaxation = 0,
    /// Inner-loop steps of Floyd–Warshall APSP computations.
    FloydWarshall = 1,
    /// Min-plus "path doubling" inner steps (Algorithm 4.3).
    Doubling = 2,
    /// 3-limited Bellman–Ford steps (Algorithm 4.1 step iv).
    Limited = 3,
    /// Boolean matrix multiplication word operations.
    MatMul = 4,
    /// Heap pops + relaxations of the sparse-Dijkstra leaf kernel.
    Dijkstra = 5,
    /// Everything else (initialization, bookkeeping passes).
    Other = 6,
}

const NUM_COUNTERS: usize = 7;

/// One profiled algorithm phase: what it was, how wide it fanned out, how
/// long it really took, how much model work it charged, and the peak
/// bytes of matrices + workspaces live while it ran. Recorded by the
/// augmentation drivers (one per tree level / doubling round) so
/// experiments can show *where* the wall time goes, not just totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Phase label, e.g. `"alg41/level 3"` or `"alg43/round 2"`.
    pub label: String,
    /// Parallel width of the phase (items fanned out).
    pub width: usize,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Model work charged during the phase (delta of `total_work`).
    pub ops: u64,
    /// Peak live bytes of node matrices + workspaces observed.
    pub peak_bytes: u64,
}

/// Work/depth accumulator. Cheap to share (`&Metrics`) across rayon tasks.
#[derive(Debug, Default)]
pub struct Metrics {
    work: [AtomicU64; NUM_COUNTERS],
    depth: AtomicU64,
    phases: AtomicU64,
    phase_log: Mutex<Vec<PhaseRecord>>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `amount` units of work of the given kind.
    #[inline]
    pub fn work(&self, kind: Counter, amount: u64) {
        self.work[kind as usize].fetch_add(amount, Ordering::Relaxed);
    }

    /// Charge one parallel phase over `width` items: depth increases by
    /// `⌈log₂ width⌉ + 1` (an EREW combining tree over the phase's items).
    #[inline]
    pub fn phase(&self, width: usize) {
        let levels = usize::BITS - width.max(1).leading_zeros();
        self.depth.fetch_add(levels as u64 + 1, Ordering::Relaxed);
        self.phases.fetch_add(1, Ordering::Relaxed);
    }

    /// Total work across all counters.
    pub fn total_work(&self) -> u64 {
        self.work.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Work of one kind.
    pub fn work_of(&self, kind: Counter) -> u64 {
        self.work[kind as usize].load(Ordering::Relaxed)
    }

    /// Accumulated model depth (PRAM time).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Number of parallel phases charged.
    pub fn phases(&self) -> u64 {
        self.phases.load(Ordering::Relaxed)
    }

    /// Append one profiled phase to the phase log. Callers record phases
    /// sequentially (levels, rounds), so the log order is deterministic.
    pub fn record_phase(&self, record: PhaseRecord) {
        if let Ok(mut log) = self.phase_log.lock() {
            log.push(record);
        }
    }

    /// Snapshot of the profiled phases recorded so far, in record order.
    pub fn phase_records(&self) -> Vec<PhaseRecord> {
        self.phase_log
            .lock()
            .map(|log| log.clone())
            .unwrap_or_default()
    }

    /// Snapshot for reporting.
    pub fn report(&self) -> Report {
        Report {
            relaxation: self.work_of(Counter::Relaxation),
            floyd_warshall: self.work_of(Counter::FloydWarshall),
            doubling: self.work_of(Counter::Doubling),
            limited: self.work_of(Counter::Limited),
            matmul: self.work_of(Counter::MatMul),
            dijkstra: self.work_of(Counter::Dijkstra),
            other: self.work_of(Counter::Other),
            depth: self.depth(),
            phases: self.phases(),
        }
    }
}

/// Immutable snapshot of a [`Metrics`] accumulator.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Query-time edge relaxations.
    pub relaxation: u64,
    /// Floyd–Warshall inner steps.
    pub floyd_warshall: u64,
    /// Path-doubling inner steps.
    pub doubling: u64,
    /// 3-limited Bellman–Ford steps.
    pub limited: u64,
    /// Boolean matmul word ops.
    pub matmul: u64,
    /// Sparse-Dijkstra leaf-kernel ops (heap pops + relaxations).
    pub dijkstra: u64,
    /// Miscellaneous work.
    pub other: u64,
    /// PRAM time (depth).
    pub depth: u64,
    /// Parallel phases executed.
    pub phases: u64,
}

impl Report {
    /// Total work across all counters.
    pub fn total_work(&self) -> u64 {
        self.relaxation + self.floyd_warshall + self.doubling + self.limited + self.matmul
            + self.dijkstra
            + self.other
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "work={} (relax={} fw={} dbl={} lim={} mm={} dij={} other={}) depth={} phases={}",
            self.total_work(),
            self.relaxation,
            self.floyd_warshall,
            self.doubling,
            self.limited,
            self.matmul,
            self.dijkstra,
            self.other,
            self.depth,
            self.phases
        )
    }
}

/// Run `body` as one parallel phase over `0..width` with rayon, charging
/// the matching depth to `metrics`. `body` receives each index.
///
/// This is the execution side of the cost model: one call = one PRAM
/// phase.
pub fn run_phase<F>(metrics: &Metrics, width: usize, body: F)
where
    F: Fn(usize) + Send + Sync,
{
    use rayon::prelude::*;
    metrics.phase(width);
    (0..width).into_par_iter().for_each(body);
}

/// Sequential variant of [`run_phase`] for small widths where rayon
/// overhead dominates; charges the identical model cost.
pub fn run_phase_seq<F>(metrics: &Metrics, width: usize, mut body: F)
where
    F: FnMut(usize),
{
    metrics.phase(width);
    for i in 0..width {
        body(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_accumulates_per_counter() {
        let m = Metrics::new();
        m.work(Counter::Relaxation, 5);
        m.work(Counter::Relaxation, 2);
        m.work(Counter::MatMul, 10);
        assert_eq!(m.work_of(Counter::Relaxation), 7);
        assert_eq!(m.work_of(Counter::MatMul), 10);
        assert_eq!(m.total_work(), 17);
    }

    #[test]
    fn phase_depth_is_logarithmic() {
        let m = Metrics::new();
        m.phase(1);
        assert_eq!(m.depth(), 2); // 1 level + 1
        let m = Metrics::new();
        m.phase(1024);
        assert_eq!(m.depth(), 12); // bit-length of 1024 is 11, plus 1
        assert_eq!(m.phases(), 1);
    }

    #[test]
    fn run_phase_executes_all_and_charges_once() {
        let m = Metrics::new();
        let hits = AtomicU64::new(0);
        run_phase(&m, 100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(m.phases(), 1);
        assert!(m.depth() >= 7);
    }

    #[test]
    fn run_phase_seq_matches_parallel_cost() {
        let mp = Metrics::new();
        run_phase(&mp, 64, |_| {});
        let ms = Metrics::new();
        run_phase_seq(&ms, 64, |_| {});
        assert_eq!(mp.depth(), ms.depth());
        assert_eq!(mp.phases(), ms.phases());
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        use rayon::prelude::*;
        let m = Metrics::new();
        (0..1000usize).into_par_iter().for_each(|_| {
            m.work(Counter::Relaxation, 1);
        });
        assert_eq!(m.work_of(Counter::Relaxation), 1000);
    }

    #[test]
    fn phase_records_keep_order_and_content() {
        let m = Metrics::new();
        assert!(m.phase_records().is_empty());
        m.record_phase(PhaseRecord {
            label: "alg41/level 1".into(),
            width: 4,
            wall_ns: 123,
            ops: 99,
            peak_bytes: 4096,
        });
        m.record_phase(PhaseRecord {
            label: "alg41/level 0".into(),
            width: 1,
            wall_ns: 456,
            ops: 1,
            peak_bytes: 8192,
        });
        let log = m.phase_records();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].label, "alg41/level 1");
        assert_eq!(log[0].ops, 99);
        assert_eq!(log[1].wall_ns, 456);
        assert_eq!(log[1].peak_bytes, 8192);
    }

    #[test]
    fn report_roundtrip() {
        let m = Metrics::new();
        m.work(Counter::FloydWarshall, 3);
        m.work(Counter::Doubling, 4);
        m.work(Counter::Limited, 5);
        m.work(Counter::Other, 1);
        m.phase(8);
        let r = m.report();
        assert_eq!(r.floyd_warshall, 3);
        assert_eq!(r.doubling, 4);
        assert_eq!(r.limited, 5);
        assert_eq!(r.other, 1);
        assert_eq!(r.total_work(), 13);
        assert_eq!(r.phases, 1);
        let shown = r.to_string();
        assert!(shown.contains("work=13"));
        assert!(shown.contains("phases=1"));
    }
}
