//! E23 — separator quality on a real road-network instance, plus the
//! `BENCH_sep.json` artifact (schema `spsep-sep-bench/v1`).
//!
//! ISSUE 10 / ROADMAP item 3: every earlier table ran on synthetic
//! families ≤ ~1.5k nodes, so the c·√k balanced-separator claim — the
//! quantity every preprocessing bound in the paper is written in — was
//! never measured on the workload the paper targets (§6: near-planar
//! road networks). E23 decomposes the committed `data/road-160x150.gr`
//! instance (regenerated bit-exactly from its seed, which also yields
//! the face list the old heuristic needs) with all three applicable
//! builders:
//!
//! * `cycle` — the original `planar_cycle_tree` fundamental-cycle
//!   heuristic (needs an explicit triangulation);
//! * `bfs`   — the general-purpose BFS-level builder (`-b bfs`);
//! * `level` — the new embedding-free BFS-level + fundamental-cycle
//!   builder (`planar_level_tree`, Lipton–Tarjan shape; what
//!   `-b auto` selects on this instance);
//!
//! and reports, per builder, the [`spsep_separator::QualityReport`]
//! numbers (one shared implementation with `spsep-cli info` — another
//! ISSUE 10 satellite) plus end-to-end prepare and per-source query
//! wall-clocks. The validator *encodes the acceptance criterion*: the
//! `level` builder must meet the `c ≤ 4.0` √-bound and its max
//! separator must be strictly smaller than `cycle`'s on the same
//! instance — an artifact recording a regression can never validate,
//! and the committed-artifact test re-checks it on every CI run.
//!
//! Same no-serde discipline as E16–E22: hand-rolled writer, `jsonv`
//! re-parse, validation before the `tables` binary writes anything.

use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::planar::{planar_cycle_tree, road_network};
use spsep_separator::{planar_level_tree, separator_quality, RecursionLimits, SepTree};
use std::time::Instant;

/// The √-bound the improved builder is held to: `|S(t)| ≤ 4·√|V(t)|`
/// at every internal node. (Lipton–Tarjan proves ~2.83·√n for true
/// planar separators; 4.0 leaves headroom for the two-level shape
/// while staying an honest constant-factor claim.)
pub const C_BOUND: f64 = 4.0;

/// The committed road instance: `road_network(160, 150, 20260808)`,
/// checked in as `data/road-160x150.gr` (see `data/README.md`).
pub const ROAD_FULL: (usize, usize, u64) = (160, 150, 20260808);

/// The CI smoke instance: same generator, 1 200 nodes.
pub const ROAD_SMOKE: (usize, usize, u64) = (40, 30, 20260808);

/// Sources timed per builder for the per-query column.
const QUERY_SOURCES: usize = 4;

/// One (instance, builder) measurement.
pub struct SepRecord {
    /// Builder slug: `cycle`, `bfs`, or `level`.
    pub builder: String,
    /// Instance vertices.
    pub n: usize,
    /// Instance arcs.
    pub m: usize,
    /// Tree height `d_G`.
    pub height: u32,
    /// Max `|S(t)|` over all tree nodes.
    pub max_sep: usize,
    /// `|S(root)|`.
    pub root_sep: usize,
    /// `Σ_t |S(t)|`.
    pub total_sep: usize,
    /// Measured `c = max |S(t)| / √|V(t)|` over internal nodes.
    pub sqrt_c: f64,
    /// Max `max(|V(c₁)|,|V(c₂)|) / |V(t)|` over internal nodes.
    pub balance: f64,
    /// `Σ_t (|S(t)|² + |B(t)|²)` — Theorem 5.1(iii) candidate bound.
    pub eplus_candidates: usize,
    /// Full `Oracle::prepare` wall-clock (validate + augment +
    /// compile), ms.
    pub prepare_ms: f64,
    /// Mean `source_table` wall-clock over `QUERY_SOURCES` distinct
    /// cold sources, ms.
    pub query_ms: f64,
    /// `sqrt_c ≤ C_BOUND`.
    pub meets_bound: bool,
}

/// E23 — measure all three builders on the road instance. Returns the
/// rendered report plus the raw records for the JSON artifact.
///
/// `smoke` swaps the committed 24 000-node instance for a 1 200-node
/// one so CI exercises the full pipeline (generate → decompose ×3 →
/// validate → prepare → query → serialize → validate) in seconds.
pub fn e23_separators(smoke: bool) -> (String, Vec<SepRecord>) {
    let (w, h, seed) = if smoke { ROAD_SMOKE } else { ROAD_FULL };
    let (g, _, tri) = road_network(w, h, seed);
    let adj = g.undirected_skeleton();
    let builders: Vec<(&str, SepTree)> = vec![
        ("cycle", planar_cycle_tree(&adj, &tri, 4)),
        (
            "bfs",
            spsep_separator::builders::bfs_tree(&adj, RecursionLimits::default()),
        ),
        ("level", planar_level_tree(&adj, RecursionLimits::default())),
    ];
    let mut records = Vec::new();
    for (slug, tree) in builders {
        tree.validate(&adj)
            .unwrap_or_else(|e| panic!("{slug}: invalid decomposition: {e}"));
        let q = separator_quality(&tree);
        let t0 = Instant::now();
        let oracle = Oracle::prepare(g.clone(), tree, Algorithm::LeavesUp, &Metrics::new())
            .unwrap_or_else(|e| panic!("{slug}: prepare failed: {e}"));
        let prepare_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Distinct cold sources: the LRU row cache never hits, so this
        // is the uncached scheduled-query cost an operator plans for.
        let metrics = Metrics::new();
        let t0 = Instant::now();
        for i in 0..QUERY_SOURCES {
            let s = i * g.n() / QUERY_SOURCES;
            let row = oracle
                .source_table(s, &metrics)
                .unwrap_or_else(|e| panic!("{slug}: query failed: {e}"));
            assert_eq!(row.len(), g.n());
        }
        let query_ms = t0.elapsed().as_secs_f64() * 1e3 / QUERY_SOURCES as f64;
        records.push(SepRecord {
            builder: slug.to_owned(),
            n: g.n(),
            m: g.m(),
            height: q.height,
            max_sep: q.max_separator,
            root_sep: q.root_separator,
            total_sep: q.total_separator,
            sqrt_c: q.sqrt_coefficient,
            balance: q.balance,
            eplus_candidates: q.eplus_candidates,
            prepare_ms,
            query_ms,
            meets_bound: q.meets_sqrt_bound(C_BOUND),
        });
    }
    let mut out = format!(
        "E23 — separator quality on the road instance \
         road_network({w}, {h}, {seed}) (n = {}, m = {}): the original \
         fundamental-cycle heuristic vs the general BFS builder vs the \
         embedding-free Lipton–Tarjan-shaped level+cycle builder, \
         measured against the c·√k bound (c ≤ {C_BOUND}).\n\n",
        g.n(),
        g.m()
    );
    out.push_str(&render_sep_table(&records));
    (out, records)
}

/// Render the E23 view.
pub fn render_sep_table(records: &[SepRecord]) -> String {
    let mut t = Table::new(&[
        "builder",
        "n",
        "height",
        "max|S|",
        "root|S|",
        "Σ|S|",
        "c=|S|/√k",
        "balance",
        "E+cand",
        "prepare_ms",
        "query_ms",
        "c≤4.0",
    ]);
    for r in records {
        t.row(vec![
            r.builder.clone(),
            r.n.to_string(),
            r.height.to_string(),
            r.max_sep.to_string(),
            r.root_sep.to_string(),
            r.total_sep.to_string(),
            format!("{:.3}", r.sqrt_c),
            format!("{:.3}", r.balance),
            r.eplus_candidates.to_string(),
            fmt_f(r.prepare_ms),
            fmt_f(r.query_ms),
            if r.meets_bound { "yes" } else { "NO" }.into(),
        ]);
    }
    t.render()
}

/// Serialize records as `spsep-sep-bench/v1` JSON.
pub fn sep_json(records: &[SepRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-sep-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!("  \"c_bound\": {C_BOUND},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"builder\": \"{}\", \"n\": {}, \"m\": {}, \
             \"height\": {}, \"max_sep\": {}, \"root_sep\": {}, \
             \"total_sep\": {}, \"sqrt_c\": {:.4}, \"balance\": {:.4}, \
             \"eplus_candidates\": {}, \"prepare_ms\": {:.4}, \
             \"query_ms\": {:.4}, \"meets_bound\": {}}}{}\n",
            r.builder,
            r.n,
            r.m,
            r.height,
            r.max_sep,
            r.root_sep,
            r.total_sep,
            r.sqrt_c,
            r.balance,
            r.eplus_candidates,
            r.prepare_ms,
            r.query_ms,
            r.meets_bound,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse a validated `spsep-sep-bench/v1` document back into records —
/// the `tables e23 --sep-in` path that renders the committed artifact
/// without re-measuring.
pub fn read_sep_json(json: &str) -> Result<Vec<SepRecord>, String> {
    validate_sep_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        unreachable!("validated above")
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        unreachable!("validated above")
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            unreachable!("validated above")
        };
        let num = |key: &str| -> f64 {
            match field(e, key) {
                Ok(Json::Num(v)) => *v,
                _ => unreachable!("validated above"),
            }
        };
        let builder = match field(e, "builder") {
            Ok(Json::Str(v)) => v.clone(),
            _ => unreachable!("validated above"),
        };
        out.push(SepRecord {
            builder,
            n: num("n") as usize,
            m: num("m") as usize,
            height: num("height") as u32,
            max_sep: num("max_sep") as usize,
            root_sep: num("root_sep") as usize,
            total_sep: num("total_sep") as usize,
            sqrt_c: num("sqrt_c"),
            balance: num("balance"),
            eplus_candidates: num("eplus_candidates") as usize,
            prepare_ms: num("prepare_ms"),
            query_ms: num("query_ms"),
            meets_bound: matches!(field(e, "meets_bound"), Ok(Json::Bool(true))),
        });
    }
    Ok(out)
}

/// Validate a `spsep-sep-bench/v1` document. Returns the entry count.
///
/// Beyond structure and per-entry sanity (positive sizes, finite
/// timings, `meets_bound` consistent with `sqrt_c` vs `c_bound`,
/// `max_sep ≥ root_sep`, balance in `(0, 1]`), this encodes the ISSUE
/// 10 acceptance criterion as a cross-entry invariant: for every
/// instance size `n` present, the `level` builder must (a) meet the
/// √-bound and (b) have a strictly smaller `max_sep` than the `cycle`
/// builder. An artifact recording a separator-quality regression can
/// never validate, so it can never be committed.
pub fn validate_sep_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-sep-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Num(cores) = field(&top, "host_cores")? else {
        return Err("`host_cores` must be a number".into());
    };
    if *cores < 1.0 {
        return Err("`host_cores` must be >= 1".into());
    }
    let Json::Num(c_bound) = field(&top, "c_bound")? else {
        return Err("`c_bound` must be a number".into());
    };
    let c_bound = *c_bound;
    if !(c_bound.is_finite() && c_bound > 0.0) {
        return Err("`c_bound` must be a finite positive number".into());
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    // (n, builder) -> max_sep and the level builder's bound flag, for
    // the cross-entry acceptance check.
    let mut cycle_max: Vec<(usize, usize)> = Vec::new();
    let mut level_rows: Vec<(usize, usize, bool)> = Vec::new();
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        let builder = match field(e, "builder").map_err(|m| ctx(&m))? {
            Json::Str(s) if matches!(s.as_str(), "cycle" | "bfs" | "level") => s.clone(),
            _ => return Err(ctx("`builder` must be one of cycle|bfs|level")),
        };
        let int = |key: &str| -> Result<usize, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v as usize),
                _ => Err(ctx(&format!("`{key}` must be a non-negative integer"))),
            }
        };
        let n = int("n")?;
        let m = int("m")?;
        if n < 2 || m < 1 {
            return Err(ctx("instance too small to mean anything"));
        }
        let height = int("height")?;
        let max_sep = int("max_sep")?;
        let root_sep = int("root_sep")?;
        let total_sep = int("total_sep")?;
        let eplus = int("eplus_candidates")?;
        if height < 1 || max_sep < 1 || eplus < 1 {
            return Err(ctx("degenerate decomposition (height/max_sep/eplus = 0)"));
        }
        if max_sep < root_sep {
            return Err(ctx("`max_sep` < `root_sep`"));
        }
        if total_sep < max_sep {
            return Err(ctx("`total_sep` < `max_sep`"));
        }
        let num = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if v.is_finite() && *v > 0.0 => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a finite positive number"))),
            }
        };
        let sqrt_c = num("sqrt_c")?;
        let balance = num("balance")?;
        if balance > 1.0 {
            return Err(ctx("`balance` must be in (0, 1]"));
        }
        let _prepare_ms = num("prepare_ms")?;
        let _query_ms = num("query_ms")?;
        let meets = match field(e, "meets_bound").map_err(|m| ctx(&m))? {
            Json::Bool(b) => *b,
            _ => return Err(ctx("`meets_bound` must be a boolean")),
        };
        // The flag must be consistent with the numbers it summarizes
        // (tolerance for the 4-decimal rounding of sqrt_c).
        if meets != (sqrt_c <= c_bound + 1e-3) {
            return Err(ctx(&format!(
                "`meets_bound` = {meets} inconsistent with sqrt_c = {sqrt_c} vs c_bound = {c_bound}"
            )));
        }
        match builder.as_str() {
            "cycle" => cycle_max.push((n, max_sep)),
            "level" => level_rows.push((n, max_sep, meets)),
            _ => {}
        }
    }
    // The acceptance criterion: on every instance the improved builder
    // must beat the old heuristic and meet the bound.
    for &(n, level_max, meets) in &level_rows {
        if !meets {
            return Err(format!(
                "level builder misses the √-bound on the n = {n} instance"
            ));
        }
        if let Some(&(_, cycle)) = cycle_max.iter().find(|&&(cn, _)| cn == n) {
            if level_max >= cycle {
                return Err(format!(
                    "level builder max_sep {level_max} is not strictly better than \
                     cycle's {cycle} on the n = {n} instance"
                ));
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SepRecord> {
        let row = |builder: &str, max_sep: usize, sqrt_c: f64| SepRecord {
            builder: builder.into(),
            n: 24_000,
            m: 142_762,
            height: 20,
            max_sep,
            root_sep: max_sep,
            total_sep: 10 * max_sep,
            sqrt_c,
            balance: 0.99,
            eplus_candidates: 6_000_000,
            prepare_ms: 1800.0,
            query_ms: 10.0,
            meets_bound: sqrt_c <= C_BOUND,
        };
        vec![
            row("cycle", 290, 2.9),
            row("bfs", 216, 2.1),
            row("level", 211, 1.7),
        ]
    }

    #[test]
    fn writer_output_validates_and_roundtrips() {
        let rows = sample();
        let json = sep_json(&rows);
        assert_eq!(validate_sep_json(&json), Ok(3));
        let back = read_sep_json(&json).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.builder, b.builder);
            assert_eq!(
                (a.n, a.m, a.max_sep, a.total_sep),
                (b.n, b.m, b.max_sep, b.total_sep)
            );
            assert!((a.sqrt_c - b.sqrt_c).abs() < 1e-6);
            assert_eq!(a.meets_bound, b.meets_bound);
        }
        let view = render_sep_table(&back);
        assert!(view.contains("level"), "{view}");
        assert!(view.contains("c=|S|/√k"), "{view}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_sep_json("").is_err());
        assert!(validate_sep_json("[]").is_err());
        assert!(validate_sep_json("{\"schema\": \"other/v9\"}").is_err());
        let good = sep_json(&sample());
        assert!(validate_sep_json(&good.replace("spsep-sep-bench/v1", "nope")).is_err());
        // Unknown builder slug.
        assert!(validate_sep_json(&good.replace("\"cycle\"", "\"magic\"")).is_err());
        // meets_bound flag contradicting its numbers.
        let mut rows = sample();
        rows[2].meets_bound = false;
        assert!(validate_sep_json(&sep_json(&rows)).is_err());
        // Level builder missing the bound.
        let mut rows = sample();
        rows[2].sqrt_c = C_BOUND + 1.0;
        rows[2].meets_bound = false;
        assert!(validate_sep_json(&sep_json(&rows)).is_err());
        // Level builder not strictly better than cycle: the acceptance
        // criterion is enforced at validation time.
        let mut rows = sample();
        rows[2].max_sep = rows[0].max_sep;
        rows[2].root_sep = rows[0].max_sep;
        rows[2].total_sep = 10 * rows[0].max_sep;
        assert!(validate_sep_json(&sep_json(&rows)).is_err());
        // Structural nonsense.
        let mut rows = sample();
        rows[1].root_sep = rows[1].max_sep + 1;
        assert!(validate_sep_json(&sep_json(&rows)).is_err());
        let mut rows = sample();
        rows[1].balance = 1.5;
        assert!(validate_sep_json(&sep_json(&rows)).is_err());
        // Truncated document.
        let mut cut = good;
        cut.truncate(cut.len() / 2);
        assert!(validate_sep_json(&cut).is_err());
    }

    #[test]
    fn committed_artifact_validates_and_level_wins() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sep.json");
        let json = std::fs::read_to_string(path).expect("BENCH_sep.json committed at repo root");
        let entries =
            validate_sep_json(&json).expect("committed artifact is valid spsep-sep-bench/v1");
        assert_eq!(entries, 3, "one row per builder");
        let rows = read_sep_json(&json).unwrap();
        // The committed run is the full 24 000-node road instance.
        for r in &rows {
            assert_eq!(r.n, 24_000, "{}: committed run must be the full instance", r.builder);
        }
        // The headline numbers (the validator already enforced the
        // acceptance criterion; restate it here so a failure names the
        // builders involved).
        let get = |slug: &str| {
            rows.iter()
                .find(|r| r.builder == slug)
                .unwrap_or_else(|| panic!("missing {slug} row"))
        };
        let (cycle, level) = (get("cycle"), get("level"));
        assert!(
            level.max_sep < cycle.max_sep,
            "level {} vs cycle {}",
            level.max_sep,
            cycle.max_sep
        );
        assert!(level.meets_bound);
    }

    #[test]
    fn e23_smoke_covers_every_builder() {
        let (report, records) = e23_separators(true);
        assert_eq!(records.len(), 3, "{report}");
        let (w, h, _) = ROAD_SMOKE;
        for r in &records {
            assert_eq!(r.n, w * h);
            assert!(r.max_sep >= 1 && r.total_sep >= r.max_sep, "{}", r.builder);
            assert!(r.prepare_ms > 0.0 && r.query_ms > 0.0, "{}", r.builder);
            assert!(r.balance > 0.0 && r.balance <= 1.0, "{}", r.builder);
        }
        // The improved builder must already win at smoke scale.
        let json = sep_json(&records);
        assert_eq!(validate_sep_json(&json), Ok(3));
    }
}
