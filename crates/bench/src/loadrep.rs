//! The `spsep-load-report/v1` artifact: one full run of the open-loop
//! load harness (`spsep-cli load --json`), including the daemon's own
//! stats and the Prometheus counter deltas scraped around the run.
//!
//! Same no-serde discipline as the other artifacts: written with
//! `format!`, re-parsed by `jsonv`, and validated before the CLI writes
//! it. The validator enforces the telemetry invariants a healthy run
//! must satisfy — in particular every scraped counter delta must be
//! non-negative (counters are monotone; a negative delta means the
//! daemon's registry went backwards) and the scraped expositions must
//! have passed the strict Prometheus validator.

use crate::jsonv::{field, parse_json, Json};
use spsep_serve::LoadReport;

/// Append one JSON string value (with escapes) — metric sample ids
/// contain `"` and `\` (label values), so this is not optional.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a harness run as `spsep-load-report/v1` JSON.
pub fn load_report_json(
    addr: &str,
    rate: f64,
    duration_s: f64,
    connections: usize,
    report: &LoadReport,
) -> String {
    let mut s = String::from("{\n  \"schema\": \"spsep-load-report/v1\",\n  \"addr\": ");
    json_str(&mut s, addr);
    s.push_str(&format!(
        ",\n  \"rate\": {rate:.1},\n  \"duration_s\": {duration_s:.3},\n  \
         \"connections\": {connections},\n  \"scheduled\": {},\n  \"ok\": {},\n  \
         \"chaos_sent\": {},\n  \"chaos_handled\": {},\n  \"elapsed_s\": {:.3},\n  \
         \"qps\": {:.2},\n  \"p50_us\": {:.2},\n  \"p99_us\": {:.2},\n  \
         \"p999_us\": {:.2},\n",
        report.scheduled,
        report.ok,
        report.chaos_sent,
        report.chaos_handled,
        report.elapsed.as_secs_f64(),
        report.qps,
        report.latency_us[0],
        report.latency_us[1],
        report.latency_us[2],
    ));
    s.push_str("  \"errors\": {");
    for (i, (name, count)) in report.errors.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        json_str(&mut s, name);
        s.push_str(&format!(": {count}"));
    }
    s.push_str("},\n  \"daemon\": ");
    match &report.daemon {
        Some(d) => s.push_str(&format!(
            "{{\"workers\": {}, \"accepted\": {}, \"shed\": {}, \"served\": {}, \
             \"io_errors\": {}, \
             \"queue_p50_us\": {:.2}, \"queue_p99_us\": {:.2}, \"queue_p999_us\": {:.2}, \
             \"service_p50_us\": {:.2}, \"service_p99_us\": {:.2}, \
             \"service_p999_us\": {:.2}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}",
            d.workers,
            d.accepted,
            d.shed,
            d.served,
            d.io_errors,
            d.queue_wait_us[0],
            d.queue_wait_us[1],
            d.queue_wait_us[2],
            d.service_us[0],
            d.service_us[1],
            d.service_us[2],
            d.cache_hits,
            d.cache_misses,
        )),
        None => s.push_str("null"),
    }
    s.push_str(",\n  \"metrics_valid\": ");
    match report.metrics_valid {
        Some(true) => s.push_str("true"),
        Some(false) => s.push_str("false"),
        None => s.push_str("null"),
    }
    s.push_str(",\n  \"metrics_delta\": {");
    for (i, (id, delta)) in report.metrics_delta.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str("\n    ");
        json_str(&mut s, id);
        s.push_str(&format!(": {delta}"));
    }
    if !report.metrics_delta.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("}\n}\n");
    s
}

/// Validate a `spsep-load-report/v1` document.
///
/// Beyond structure, this enforces: `ok ≤ scheduled`,
/// `chaos_handled ≤ chaos_sent`, monotone latency percentiles, error
/// counters as non-negative integers, `metrics_valid` not `false` (a
/// scrape that failed the Prometheus validator must never be
/// committed), and **every metrics delta non-negative** — the
/// counter-monotonicity invariant, checked on the artifact itself.
pub fn validate_load_report_json(json: &str) -> Result<(), String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-load-report/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Str(_) = field(&top, "addr")? else {
        return Err("`addr` must be a string".into());
    };
    let int = |key: &str| -> Result<f64, String> {
        match field(&top, key)? {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v),
            _ => Err(format!("`{key}` must be a non-negative integer")),
        }
    };
    let fin = |key: &str| -> Result<f64, String> {
        match field(&top, key)? {
            Json::Num(v) if *v >= 0.0 && v.is_finite() => Ok(*v),
            _ => Err(format!("`{key}` must be a finite non-negative number")),
        }
    };
    for key in ["rate", "duration_s"] {
        if fin(key)? <= 0.0 {
            return Err(format!("`{key}` must be positive"));
        }
    }
    if int("connections")? < 1.0 {
        return Err("`connections` must be >= 1".into());
    }
    let scheduled = int("scheduled")?;
    if int("ok")? > scheduled {
        return Err("`ok` exceeds `scheduled`".into());
    }
    if int("chaos_handled")? > int("chaos_sent")? {
        return Err("`chaos_handled` exceeds `chaos_sent`".into());
    }
    fin("elapsed_s")?;
    fin("qps")?;
    let (p50, p99, p999) = (fin("p50_us")?, fin("p99_us")?, fin("p999_us")?);
    if !(p50 <= p99 && p99 <= p999) {
        return Err("latency percentiles must be monotone (p50 <= p99 <= p999)".into());
    }
    let Json::Obj(errors) = field(&top, "errors")? else {
        return Err("`errors` must be an object".into());
    };
    for (name, v) in errors {
        match v {
            Json::Num(count) if *count >= 0.0 && count.fract() == 0.0 => {}
            _ => {
                return Err(format!(
                    "error counter `{name}` must be a non-negative integer"
                ))
            }
        }
    }
    match field(&top, "daemon")? {
        Json::Null => {}
        Json::Obj(d) => {
            let dint = |key: &str| -> Result<f64, String> {
                match field(d, key)? {
                    Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v),
                    _ => Err(format!("daemon `{key}` must be a non-negative integer")),
                }
            };
            let dfin = |key: &str| -> Result<f64, String> {
                match field(d, key)? {
                    Json::Num(v) if *v >= 0.0 && v.is_finite() => Ok(*v),
                    _ => Err(format!("daemon `{key}` must be finite and non-negative")),
                }
            };
            if dint("workers")? < 1.0 {
                return Err("daemon `workers` must be >= 1".into());
            }
            for key in ["accepted", "shed", "served", "io_errors", "cache_hits", "cache_misses"] {
                dint(key)?;
            }
            for stem in ["queue", "service"] {
                let (a, b, c) = (
                    dfin(&format!("{stem}_p50_us"))?,
                    dfin(&format!("{stem}_p99_us"))?,
                    dfin(&format!("{stem}_p999_us"))?,
                );
                if !(a <= b && b <= c) {
                    return Err(format!("daemon `{stem}` percentiles must be monotone"));
                }
            }
        }
        _ => return Err("`daemon` must be an object or null".into()),
    }
    match field(&top, "metrics_valid")? {
        Json::Bool(true) | Json::Null => {}
        Json::Bool(false) => {
            return Err("`metrics_valid` is false: a scraped exposition failed \
                 the Prometheus validator"
                .into())
        }
        _ => return Err("`metrics_valid` must be a boolean or null".into()),
    }
    let Json::Obj(delta) = field(&top, "metrics_delta")? else {
        return Err("`metrics_delta` must be an object".into());
    };
    for (id, v) in delta {
        match v {
            Json::Num(d) if d.is_finite() && *d >= 0.0 => {}
            Json::Num(d) => {
                return Err(format!(
                    "metrics delta `{id}` is {d}: monotone counters cannot decrease"
                ))
            }
            _ => return Err(format!("metrics delta `{id}` must be a number")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_serve::WireStats;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn sample() -> LoadReport {
        LoadReport {
            scheduled: 1000,
            ok: 960,
            chaos_sent: 30,
            chaos_handled: 30,
            elapsed: Duration::from_secs_f64(2.1),
            qps: 457.1,
            latency_us: [120.0, 900.0, 2500.0],
            errors: BTreeMap::from([("io".to_string(), 10)]),
            daemon: Some(WireStats {
                accepted: 12,
                shed: 0,
                served: 960,
                errors: [30, 0, 0, 0, 10],
                io_errors: 10,
                queue_wait_us: [10.0, 200.0, 400.0],
                service_us: [90.0, 700.0, 1800.0],
                cache_hits: 800,
                cache_misses: 160,
                cache_evictions: 0,
                cache_shards: 8,
                workers: 4,
            }),
            metrics_delta: BTreeMap::from([
                ("spsep_served_total".to_string(), 960.0),
                ("spsep_requests_total{op=\"point\"}".to_string(), 800.0),
            ]),
            metrics_valid: Some(true),
        }
    }

    #[test]
    fn writer_output_validates() {
        let json = load_report_json("127.0.0.1:9000", 500.0, 2.0, 4, &sample());
        validate_load_report_json(&json).expect("writer output validates");
        // Label-bearing sample ids survive the escape/parse round trip.
        assert!(json.contains("spsep_requests_total{op=\\\"point\\\"}"));
    }

    #[test]
    fn validator_rejects_drift() {
        let good = load_report_json("127.0.0.1:9000", 500.0, 2.0, 4, &sample());
        assert!(validate_load_report_json("").is_err());
        assert!(validate_load_report_json("{}").is_err());
        assert!(
            validate_load_report_json(&good.replace("spsep-load-report/v1", "x/v9")).is_err()
        );

        // ok > scheduled.
        let mut r = sample();
        r.ok = r.scheduled + 1;
        let json = load_report_json("a:1", 500.0, 2.0, 4, &r);
        assert!(validate_load_report_json(&json).is_err());

        // Invalid scraped exposition must never validate.
        let mut r = sample();
        r.metrics_valid = Some(false);
        let json = load_report_json("a:1", 500.0, 2.0, 4, &r);
        assert!(validate_load_report_json(&json).is_err());

        // A negative counter delta breaks monotonicity.
        let mut r = sample();
        r.metrics_delta.insert("spsep_served_total".to_string(), -3.0);
        let json = load_report_json("a:1", 500.0, 2.0, 4, &r);
        let err = validate_load_report_json(&json).unwrap_err();
        assert!(err.contains("monotone"), "{err}");

        // Non-monotone daemon percentiles.
        let mut r = sample();
        if let Some(d) = &mut r.daemon {
            d.service_us = [700.0, 90.0, 1800.0];
        }
        let json = load_report_json("a:1", 500.0, 2.0, 4, &r);
        assert!(validate_load_report_json(&json).is_err());
    }

    #[test]
    fn daemonless_report_still_validates() {
        let mut r = sample();
        r.daemon = None;
        r.metrics_valid = None;
        r.metrics_delta.clear();
        let json = load_report_json("a:1", 500.0, 2.0, 4, &r);
        validate_load_report_json(&json).expect("null daemon and metrics are allowed");
    }
}
