//! E18 — snapshot amortization: prepare-once vs load-and-serve, plus the
//! `BENCH_amortize.json` artifact (schema `spsep-amortize/v1`).
//!
//! The serving layer (`spsep_core::oracle`, DESIGN.md §10) claims that
//! reloading a persisted `spsep-oracle/v1` snapshot is much cheaper than
//! re-running the Sections 3–5 preprocessing. E18 measures that claim
//! per family: full preprocessing wall-clock, snapshot size, snapshot
//! load wall-clock (parse + checksum + validate + schedule compile), the
//! prepare/load speedup, and the cost of one cold scheduled query from
//! the loaded oracle. Every row also re-checks the bit-identity contract
//! (loaded answers == fresh answers, compared via `to_bits`).
//!
//! Same no-serde discipline as E16/E17: the artifact is written with
//! `format!`, re-parsed by `jsonv` (the crate-private mini JSON parser), and validated before the
//! `tables` binary writes it.

use crate::families::Family;
use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use std::time::Instant;

/// One measured family: prepare vs load economics of the oracle snapshot.
pub struct AmortRecord {
    /// Machine-readable family slug (`grid2d`, `tree`, …).
    pub family: String,
    /// Instance size (vertices).
    pub n: usize,
    /// Instance size (edges).
    pub m: usize,
    /// Shortcut edges in `E⁺`.
    pub eplus: usize,
    /// Snapshot size in bytes.
    pub snap_bytes: usize,
    /// Full preprocessing wall-clock (validate + augment + compile), ms.
    pub prepare_ms: f64,
    /// Snapshot load wall-clock (parse + checksums + validate +
    /// compile), ms.
    pub load_ms: f64,
    /// One cold scheduled point query from the loaded oracle, µs
    /// (mean over distinct sources).
    pub query_us: f64,
    /// `prepare_ms / load_ms`: how many times cheaper reloading is.
    pub amortization: f64,
    /// Loaded answers are bit-identical to freshly prepared ones.
    pub bit_identical: bool,
}

/// E18 — measure the prepare/load amortization for every family.
/// Returns the rendered report plus the raw records for the JSON
/// artifact.
///
/// `smoke` shrinks the instances so CI exercises the full pipeline
/// (prepare → save → load → query → serialize → validate) in seconds.
pub fn e18_amortization(smoke: bool) -> (String, Vec<AmortRecord>) {
    let n_target = if smoke { 240 } else { 1024 };
    let mut records = Vec::new();
    for family in Family::all() {
        let (g, tree) = family.instance(n_target, 18);
        let (n, m) = (g.n(), g.m());

        let t0 = Instant::now();
        let fresh = Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new())
            .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", family.slug()));
        let prepare_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut snapshot = Vec::new();
        fresh
            .save(&mut snapshot)
            .unwrap_or_else(|e| panic!("{}: save failed: {e}", family.slug()));

        let t1 = Instant::now();
        let served = Oracle::load(snapshot.as_slice())
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", family.slug()));
        let load_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Cold point queries from distinct sources (every one a cache
        // miss → one full scheduled run each), and the bit-identity
        // cross-check against the freshly prepared oracle.
        let metrics = Metrics::new();
        let sources: Vec<usize> = (0..8).map(|i| i * n / 8).collect();
        let mut bit_identical = true;
        let t2 = Instant::now();
        for &s in &sources {
            let target = (s + n / 2) % n;
            let d = served
                .distance(s, target, &metrics)
                .unwrap_or_else(|e| panic!("{}: query failed: {e}", family.slug()));
            let d_fresh = fresh
                .distance(s, target, &metrics)
                .unwrap_or_else(|e| panic!("{}: query failed: {e}", family.slug()));
            bit_identical &= d.to_bits() == d_fresh.to_bits();
        }
        let query_us = t2.elapsed().as_secs_f64() * 1e6 / (2.0 * sources.len() as f64);

        records.push(AmortRecord {
            family: family.slug().to_owned(),
            n,
            m,
            eplus: fresh.stats().eplus_edges,
            snap_bytes: snapshot.len(),
            prepare_ms,
            load_ms,
            query_us,
            amortization: prepare_ms / load_ms.max(1e-9),
            bit_identical,
        });
    }

    let mut out = format!(
        "E18 — oracle snapshot amortization (n≈{n_target} per family): \
         full preprocessing vs `spsep-oracle/v1` snapshot reload, and one \
         cold scheduled query from the reloaded oracle.\n\n",
    );
    out.push_str(&render_amortize_table(&records));
    (out, records)
}

/// Render the E18 view.
pub fn render_amortize_table(records: &[AmortRecord]) -> String {
    let mut t = Table::new(&[
        "family",
        "n",
        "m",
        "|E+|",
        "snap_KB",
        "prepare_ms",
        "load_ms",
        "speedup",
        "query_us",
    ]);
    for r in records {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.m.to_string(),
            r.eplus.to_string(),
            format!("{:.1}", r.snap_bytes as f64 / 1024.0),
            fmt_f(r.prepare_ms),
            fmt_f(r.load_ms),
            format!("{:.1}x", r.amortization),
            fmt_f(r.query_us),
        ]);
    }
    t.render()
}

/// Serialize records as `spsep-amortize/v1` JSON.
pub fn amortize_json(records: &[AmortRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-amortize/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"eplus\": {}, \
             \"snap_bytes\": {}, \"prepare_ms\": {:.4}, \"load_ms\": {:.4}, \
             \"query_us\": {:.4}, \"amortization\": {:.4}, \
             \"bit_identical\": {}}}{}\n",
            r.family,
            r.n,
            r.m,
            r.eplus,
            r.snap_bytes,
            r.prepare_ms,
            r.load_ms,
            r.query_us,
            r.amortization,
            r.bit_identical,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse a validated `spsep-amortize/v1` document back into records —
/// the `tables e18 --amortize-in` path that renders the committed
/// artifact without re-measuring.
pub fn read_amortize_json(json: &str) -> Result<Vec<AmortRecord>, String> {
    validate_amortize_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        unreachable!("validated above")
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        unreachable!("validated above")
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            unreachable!("validated above")
        };
        let num = |key: &str| -> f64 {
            match field(e, key) {
                Ok(Json::Num(v)) => *v,
                _ => unreachable!("validated above"),
            }
        };
        let family = match field(e, "family") {
            Ok(Json::Str(v)) => v.clone(),
            _ => unreachable!("validated above"),
        };
        let bit_identical = matches!(field(e, "bit_identical"), Ok(Json::Bool(true)));
        out.push(AmortRecord {
            family,
            n: num("n") as usize,
            m: num("m") as usize,
            eplus: num("eplus") as usize,
            snap_bytes: num("snap_bytes") as usize,
            prepare_ms: num("prepare_ms"),
            load_ms: num("load_ms"),
            query_us: num("query_us"),
            amortization: num("amortization"),
            bit_identical,
        });
    }
    Ok(out)
}

/// Validate a `spsep-amortize/v1` document. Returns the entry count.
///
/// Checks structure and types, entry-level invariants (positive sizes,
/// finite positive timings, a positive amortization ratio consistent
/// with `prepare_ms / load_ms`), and the bit-identity flag — an
/// artifact recording diverging answers must never validate.
pub fn validate_amortize_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-amortize/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Num(cores) = field(&top, "host_cores")? else {
        return Err("`host_cores` must be a number".into());
    };
    if *cores < 1.0 {
        return Err("`host_cores` must be >= 1".into());
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        match field(e, "family").map_err(|m| ctx(&m))? {
            Json::Str(s) if !s.is_empty() => {}
            _ => return Err(ctx("`family` must be a non-empty string")),
        }
        for key in ["n", "m", "snap_bytes"] {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 1.0 && v.fract() == 0.0 => {}
                _ => return Err(ctx(&format!("`{key}` must be a positive integer"))),
            }
        }
        match field(e, "eplus").map_err(|m| ctx(&m))? {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => {}
            _ => return Err(ctx("`eplus` must be a non-negative integer")),
        }
        let t = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v > 0.0 && v.is_finite() => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a finite positive number"))),
            }
        };
        let prepare_ms = t("prepare_ms")?;
        let load_ms = t("load_ms")?;
        let _query_us = t("query_us")?;
        let amortization = t("amortization")?;
        // The stored ratio must agree with its factors (both sides are
        // rounded to 4 decimals, so allow a generous tolerance).
        let expected = prepare_ms / load_ms;
        if expected > 0.01 && (amortization - expected).abs() / expected > 0.05 {
            return Err(ctx(&format!(
                "`amortization` {amortization} inconsistent with prepare/load = {expected:.4}"
            )));
        }
        match field(e, "bit_identical").map_err(|m| ctx(&m))? {
            Json::Bool(true) => {}
            Json::Bool(false) => {
                return Err(ctx("`bit_identical` is false: the snapshot round-trip diverged"))
            }
            _ => return Err(ctx("`bit_identical` must be a boolean")),
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<AmortRecord> {
        vec![
            AmortRecord {
                family: "grid2d".into(),
                n: 1024,
                m: 3968,
                eplus: 5000,
                snap_bytes: 150_000,
                prepare_ms: 42.0,
                load_ms: 2.0,
                query_us: 180.0,
                amortization: 21.0,
                bit_identical: true,
            },
            AmortRecord {
                family: "tree".into(),
                n: 1023,
                m: 2044,
                eplus: 900,
                snap_bytes: 60_000,
                prepare_ms: 10.0,
                load_ms: 1.0,
                query_us: 90.0,
                amortization: 10.0,
                bit_identical: true,
            },
        ]
    }

    #[test]
    fn writer_output_validates_and_roundtrips() {
        let rows = sample();
        let json = amortize_json(&rows);
        assert_eq!(validate_amortize_json(&json), Ok(2));
        let back = read_amortize_json(&json).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.family, b.family);
            assert_eq!((a.n, a.m, a.eplus, a.snap_bytes), (b.n, b.m, b.eplus, b.snap_bytes));
            assert!((a.amortization - b.amortization).abs() < 1e-6);
        }
        let view = render_amortize_table(&back);
        assert!(view.contains("grid2d"), "{view}");
        assert!(view.contains("speedup"), "{view}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_amortize_json("").is_err());
        assert!(validate_amortize_json("[]").is_err());
        assert!(validate_amortize_json("{\"schema\": \"other/v9\"}").is_err());
        let good = amortize_json(&sample());
        assert!(validate_amortize_json(&good.replace("spsep-amortize/v1", "nope")).is_err());
        // A diverging round-trip must never validate.
        let mut rows = sample();
        rows[0].bit_identical = false;
        assert!(validate_amortize_json(&amortize_json(&rows)).is_err());
        // Ratio inconsistent with its factors.
        let mut rows = sample();
        rows[0].amortization = 500.0;
        assert!(validate_amortize_json(&amortize_json(&rows)).is_err());
        // Zero / negative timings.
        let mut rows = sample();
        rows[1].load_ms = 0.0;
        assert!(validate_amortize_json(&amortize_json(&rows)).is_err());
        // Empty entry list / truncated document.
        let mut empty = amortize_json(&[]);
        assert!(validate_amortize_json(&empty).is_err());
        empty.truncate(empty.len() / 2);
        assert!(validate_amortize_json(&empty).is_err());
    }

    #[test]
    fn committed_artifact_validates_and_amortizes() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_amortize.json");
        let json =
            std::fs::read_to_string(path).expect("BENCH_amortize.json committed at repo root");
        let entries =
            validate_amortize_json(&json).expect("committed artifact is valid spsep-amortize/v1");
        assert_eq!(entries, 5, "one row per family");
        // The serving layer's claim, as measured on the committed run:
        // loading a snapshot beats re-preprocessing on every family.
        for r in read_amortize_json(&json).unwrap() {
            assert!(
                r.amortization > 1.0,
                "{}: load ({} ms) is not cheaper than prepare ({} ms)",
                r.family,
                r.load_ms,
                r.prepare_ms
            );
        }
    }

    #[test]
    fn e18_smoke_covers_every_family() {
        let (report, records) = e18_amortization(true);
        assert_eq!(records.len(), 5, "{report}");
        for r in &records {
            assert!(r.bit_identical, "{}: snapshot round-trip diverged", r.family);
            assert!(r.snap_bytes > 0, "{}: empty snapshot", r.family);
            assert!(r.prepare_ms > 0.0 && r.load_ms > 0.0, "{}: empty timings", r.family);
        }
        let json = amortize_json(&records);
        assert_eq!(validate_amortize_json(&json), Ok(5));
    }
}
