//! E20 — snapshot load paths: v1 streaming decode vs v2 zero-copy mmap,
//! plus the `BENCH_mmap.json` artifact (schema `spsep-mmap-bench/v1`).
//!
//! The `spsep-oracle/v2` slab format (DESIGN.md §12) claims that
//! `Oracle::load_path` on a v2 file is near-O(1): the file is mapped,
//! sections are borrowed in place, and no per-edge decode happens. E20
//! measures that claim per family against the two alternatives a server
//! operator has: re-running the full Sections 3–5 preprocessing, and
//! decoding the legacy `spsep-oracle/v1` stream. Both snapshot loads go
//! through the same `Oracle::load_path` entry point the CLI uses, on
//! real temp files, and load wall-clocks take the best of
//! `LOAD_REPS` runs so the v1/v2 ratio is not noise. Every row also
//! re-checks the bit-identity contract: full `source_table` rows from
//! the v1-loaded and v2-loaded oracles must equal the freshly prepared
//! oracle's rows via `to_bits`, and the v2 oracle must actually be
//! slab-backed (`is_slab_backed`) on platforms with mmap.
//!
//! Same no-serde discipline as E16–E19: the artifact is written with
//! `format!`, re-parsed by `jsonv` (the crate-private mini JSON
//! parser), and validated before the `tables` binary writes it.

use crate::families::Family;
use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use std::time::Instant;

/// Load repetitions per format; the recorded wall-clock is the minimum,
/// which is the standard estimator for a deterministic operation's cost
/// (everything above the minimum is scheduling noise).
const LOAD_REPS: usize = 5;

/// One measured family: the three ways to stand up an oracle.
pub struct MmapRecord {
    /// Machine-readable family slug (`grid2d`, `tree`, …).
    pub family: String,
    /// Instance size (vertices).
    pub n: usize,
    /// Instance size (edges).
    pub m: usize,
    /// `spsep-oracle/v1` snapshot size in bytes.
    pub v1_bytes: usize,
    /// `spsep-oracle/v2` snapshot size in bytes (alignment padding makes
    /// it slightly larger than v1).
    pub v2_bytes: usize,
    /// Full preprocessing wall-clock (validate + augment + compile), ms.
    pub prepare_ms: f64,
    /// `Oracle::load_path` on the v1 file: streaming decode of every
    /// edge record, ms (best of `LOAD_REPS`).
    pub v1_load_ms: f64,
    /// `Oracle::load_path` on the v2 file: mmap + header/checksum
    /// validation + slab borrows, ms (best of `LOAD_REPS`).
    pub v2_load_ms: f64,
    /// `v1_load_ms / v2_load_ms`: what zero-copy buys over decoding.
    pub mmap_speedup: f64,
    /// The v2-loaded oracle reported `is_slab_backed()` — i.e. it
    /// serves straight out of the page cache, no owned copy.
    pub slab_backed: bool,
    /// v1-loaded and v2-loaded `source_table` rows are bit-identical to
    /// the freshly prepared oracle's rows.
    pub bit_identical: bool,
}

/// E20 — measure v1-decode vs v2-mmap load for every family. Returns
/// the rendered report plus the raw records for the JSON artifact.
///
/// `smoke` shrinks the instances so CI exercises the full pipeline
/// (prepare → save both formats → load both via `load_path` → compare
/// rows → serialize → validate) in seconds.
pub fn e20_mmap(smoke: bool) -> (String, Vec<MmapRecord>) {
    let n_target = if smoke { 240 } else { 1024 };
    let mut records = Vec::new();
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    for family in Family::all() {
        let (g, tree) = family.instance(n_target, 20);
        let (n, m) = (g.n(), g.m());

        let t0 = Instant::now();
        let fresh = Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new())
            .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", family.slug()));
        let prepare_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut v1 = Vec::new();
        fresh
            .save(&mut v1)
            .unwrap_or_else(|e| panic!("{}: v1 save failed: {e}", family.slug()));
        let mut v2 = Vec::new();
        fresh
            .save_v2(&mut v2)
            .unwrap_or_else(|e| panic!("{}: v2 save failed: {e}", family.slug()));

        let v1_path = dir.join(format!("spsep-e20-{tag}-{}.v1", family.slug()));
        let v2_path = dir.join(format!("spsep-e20-{tag}-{}.v2", family.slug()));
        std::fs::write(&v1_path, &v1)
            .unwrap_or_else(|e| panic!("{}: cannot write v1 temp: {e}", family.slug()));
        std::fs::write(&v2_path, &v2)
            .unwrap_or_else(|e| panic!("{}: cannot write v2 temp: {e}", family.slug()));

        // Best-of-N loads through the one entry point the CLI uses.
        let time_loads = |path: &std::path::Path| -> (f64, Oracle) {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..LOAD_REPS {
                let t = Instant::now();
                let oracle = Oracle::load_path(path)
                    .unwrap_or_else(|e| panic!("{}: load failed: {e}", path.display()));
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                last = Some(oracle);
            }
            (best, last.expect("LOAD_REPS > 0"))
        };
        let (v1_load_ms, from_v1) = time_loads(&v1_path);
        let (v2_load_ms, from_v2) = time_loads(&v2_path);

        // Full-row bit-identity across all three oracles from a spread
        // of sources — the refactor contract, re-checked on every run.
        let metrics = Metrics::new();
        let mut bit_identical = true;
        for s in [0, n / 3, n / 2, n - 1] {
            let want = fresh
                .source_table(s, &metrics)
                .unwrap_or_else(|e| panic!("{}: query failed: {e}", family.slug()));
            for loaded in [&from_v1, &from_v2] {
                let got = loaded
                    .source_table(s, &metrics)
                    .unwrap_or_else(|e| panic!("{}: query failed: {e}", family.slug()));
                bit_identical &= got.len() == want.len()
                    && got
                        .iter()
                        .zip(want.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
            }
        }
        let slab_backed = from_v2.is_slab_backed();

        // The mapping borrows the file; drop the oracles before
        // deleting so the unlink is obviously safe on every platform.
        drop(from_v1);
        drop(from_v2);
        let _ = std::fs::remove_file(&v1_path);
        let _ = std::fs::remove_file(&v2_path);

        records.push(MmapRecord {
            family: family.slug().to_owned(),
            n,
            m,
            v1_bytes: v1.len(),
            v2_bytes: v2.len(),
            prepare_ms,
            v1_load_ms,
            v2_load_ms,
            mmap_speedup: v1_load_ms / v2_load_ms.max(1e-9),
            slab_backed,
            bit_identical,
        });
    }

    let mut out = format!(
        "E20 — snapshot load paths (n≈{n_target} per family): full \
         preprocessing vs `spsep-oracle/v1` streaming decode vs \
         `spsep-oracle/v2` zero-copy mmap, all through \
         `Oracle::load_path` (best of {LOAD_REPS} loads).\n\n",
    );
    out.push_str(&render_mmap_table(&records));
    (out, records)
}

/// Render the E20 view.
pub fn render_mmap_table(records: &[MmapRecord]) -> String {
    let mut t = Table::new(&[
        "family",
        "n",
        "m",
        "v1_KB",
        "v2_KB",
        "prepare_ms",
        "v1_load_ms",
        "v2_load_ms",
        "mmap_speedup",
        "slab",
    ]);
    for r in records {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.m.to_string(),
            format!("{:.1}", r.v1_bytes as f64 / 1024.0),
            format!("{:.1}", r.v2_bytes as f64 / 1024.0),
            fmt_f(r.prepare_ms),
            fmt_f(r.v1_load_ms),
            fmt_f(r.v2_load_ms),
            format!("{:.1}x", r.mmap_speedup),
            if r.slab_backed { "mmap" } else { "copy" }.into(),
        ]);
    }
    t.render()
}

/// Serialize records as `spsep-mmap-bench/v1` JSON.
pub fn mmap_json(records: &[MmapRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-mmap-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \
             \"v1_bytes\": {}, \"v2_bytes\": {}, \"prepare_ms\": {:.4}, \
             \"v1_load_ms\": {:.4}, \"v2_load_ms\": {:.4}, \
             \"mmap_speedup\": {:.4}, \"slab_backed\": {}, \
             \"bit_identical\": {}}}{}\n",
            r.family,
            r.n,
            r.m,
            r.v1_bytes,
            r.v2_bytes,
            r.prepare_ms,
            r.v1_load_ms,
            r.v2_load_ms,
            r.mmap_speedup,
            r.slab_backed,
            r.bit_identical,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse a validated `spsep-mmap-bench/v1` document back into records —
/// the `tables e20 --mmap-in` path that renders the committed artifact
/// without re-measuring.
pub fn read_mmap_json(json: &str) -> Result<Vec<MmapRecord>, String> {
    validate_mmap_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        unreachable!("validated above")
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        unreachable!("validated above")
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            unreachable!("validated above")
        };
        let num = |key: &str| -> f64 {
            match field(e, key) {
                Ok(Json::Num(v)) => *v,
                _ => unreachable!("validated above"),
            }
        };
        let family = match field(e, "family") {
            Ok(Json::Str(v)) => v.clone(),
            _ => unreachable!("validated above"),
        };
        out.push(MmapRecord {
            family,
            n: num("n") as usize,
            m: num("m") as usize,
            v1_bytes: num("v1_bytes") as usize,
            v2_bytes: num("v2_bytes") as usize,
            prepare_ms: num("prepare_ms"),
            v1_load_ms: num("v1_load_ms"),
            v2_load_ms: num("v2_load_ms"),
            mmap_speedup: num("mmap_speedup"),
            slab_backed: matches!(field(e, "slab_backed"), Ok(Json::Bool(true))),
            bit_identical: matches!(field(e, "bit_identical"), Ok(Json::Bool(true))),
        });
    }
    Ok(out)
}

/// Validate a `spsep-mmap-bench/v1` document. Returns the entry count.
///
/// Checks structure and types, entry-level invariants (positive sizes,
/// finite positive timings, a speedup ratio consistent with
/// `v1_load_ms / v2_load_ms`), and both contract flags — an artifact
/// recording diverging answers, or a v2 load that fell back to an owned
/// copy, must never validate.
pub fn validate_mmap_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-mmap-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Num(cores) = field(&top, "host_cores")? else {
        return Err("`host_cores` must be a number".into());
    };
    if *cores < 1.0 {
        return Err("`host_cores` must be >= 1".into());
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        match field(e, "family").map_err(|m| ctx(&m))? {
            Json::Str(s) if !s.is_empty() => {}
            _ => return Err(ctx("`family` must be a non-empty string")),
        }
        for key in ["n", "m", "v1_bytes", "v2_bytes"] {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 1.0 && v.fract() == 0.0 => {}
                _ => return Err(ctx(&format!("`{key}` must be a positive integer"))),
            }
        }
        let t = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v > 0.0 && v.is_finite() => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a finite positive number"))),
            }
        };
        let _prepare_ms = t("prepare_ms")?;
        let v1_load_ms = t("v1_load_ms")?;
        let v2_load_ms = t("v2_load_ms")?;
        let mmap_speedup = t("mmap_speedup")?;
        // The stored ratio must agree with its factors (both sides are
        // rounded to 4 decimals, so allow a generous tolerance).
        let expected = v1_load_ms / v2_load_ms;
        if expected > 0.01 && (mmap_speedup - expected).abs() / expected > 0.05 {
            return Err(ctx(&format!(
                "`mmap_speedup` {mmap_speedup} inconsistent with v1/v2 = {expected:.4}"
            )));
        }
        match field(e, "slab_backed").map_err(|m| ctx(&m))? {
            Json::Bool(true) => {}
            Json::Bool(false) => {
                return Err(ctx("`slab_backed` is false: the v2 load copied instead of mmapping"))
            }
            _ => return Err(ctx("`slab_backed` must be a boolean")),
        }
        match field(e, "bit_identical").map_err(|m| ctx(&m))? {
            Json::Bool(true) => {}
            Json::Bool(false) => {
                return Err(ctx("`bit_identical` is false: a loaded oracle diverged"))
            }
            _ => return Err(ctx("`bit_identical` must be a boolean")),
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MmapRecord> {
        vec![
            MmapRecord {
                family: "grid2d".into(),
                n: 1024,
                m: 3968,
                v1_bytes: 150_000,
                v2_bytes: 160_000,
                prepare_ms: 42.0,
                v1_load_ms: 2.0,
                v2_load_ms: 0.1,
                mmap_speedup: 20.0,
                slab_backed: true,
                bit_identical: true,
            },
            MmapRecord {
                family: "tree".into(),
                n: 1023,
                m: 2044,
                v1_bytes: 60_000,
                v2_bytes: 66_000,
                prepare_ms: 10.0,
                v1_load_ms: 1.0,
                v2_load_ms: 0.1,
                mmap_speedup: 10.0,
                slab_backed: true,
                bit_identical: true,
            },
        ]
    }

    #[test]
    fn writer_output_validates_and_roundtrips() {
        let rows = sample();
        let json = mmap_json(&rows);
        assert_eq!(validate_mmap_json(&json), Ok(2));
        let back = read_mmap_json(&json).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.family, b.family);
            assert_eq!((a.n, a.m, a.v1_bytes, a.v2_bytes), (b.n, b.m, b.v1_bytes, b.v2_bytes));
            assert!((a.mmap_speedup - b.mmap_speedup).abs() < 1e-6);
        }
        let view = render_mmap_table(&back);
        assert!(view.contains("grid2d"), "{view}");
        assert!(view.contains("mmap_speedup"), "{view}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_mmap_json("").is_err());
        assert!(validate_mmap_json("[]").is_err());
        assert!(validate_mmap_json("{\"schema\": \"other/v9\"}").is_err());
        let good = mmap_json(&sample());
        assert!(validate_mmap_json(&good.replace("spsep-mmap-bench/v1", "nope")).is_err());
        // A diverging loaded oracle must never validate.
        let mut rows = sample();
        rows[0].bit_identical = false;
        assert!(validate_mmap_json(&mmap_json(&rows)).is_err());
        // A v2 load that silently fell back to an owned copy must not
        // masquerade as a zero-copy measurement.
        let mut rows = sample();
        rows[1].slab_backed = false;
        assert!(validate_mmap_json(&mmap_json(&rows)).is_err());
        // Ratio inconsistent with its factors.
        let mut rows = sample();
        rows[0].mmap_speedup = 500.0;
        assert!(validate_mmap_json(&mmap_json(&rows)).is_err());
        // Zero / negative timings.
        let mut rows = sample();
        rows[1].v2_load_ms = 0.0;
        assert!(validate_mmap_json(&mmap_json(&rows)).is_err());
        // Empty entry list / truncated document.
        let mut empty = mmap_json(&[]);
        assert!(validate_mmap_json(&empty).is_err());
        empty.truncate(empty.len() / 2);
        assert!(validate_mmap_json(&empty).is_err());
    }

    #[test]
    fn committed_artifact_validates_and_mmap_wins() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mmap.json");
        let json = std::fs::read_to_string(path).expect("BENCH_mmap.json committed at repo root");
        let entries =
            validate_mmap_json(&json).expect("committed artifact is valid spsep-mmap-bench/v1");
        assert_eq!(entries, 5, "one row per family");
        // The v2 format's claim, as measured on the committed run:
        // the mmap load beats the v1 streaming decode on every family.
        for r in read_mmap_json(&json).unwrap() {
            assert!(
                r.mmap_speedup > 1.0,
                "{}: v2 mmap ({} ms) is not cheaper than v1 decode ({} ms)",
                r.family,
                r.v2_load_ms,
                r.v1_load_ms
            );
        }
    }

    #[test]
    fn e20_smoke_covers_every_family() {
        let (report, records) = e20_mmap(true);
        assert_eq!(records.len(), 5, "{report}");
        for r in &records {
            assert!(r.bit_identical, "{}: a loaded oracle diverged", r.family);
            assert!(r.v1_bytes > 0 && r.v2_bytes > 0, "{}: empty snapshot", r.family);
            assert!(
                r.prepare_ms > 0.0 && r.v1_load_ms > 0.0 && r.v2_load_ms > 0.0,
                "{}: empty timings",
                r.family
            );
            #[cfg(unix)]
            assert!(r.slab_backed, "{}: v2 load is not slab-backed", r.family);
        }
        let json = mmap_json(&records);
        assert_eq!(validate_mmap_json(&json), Ok(5));
    }
}
