//! E22 — telemetry-plane overhead, plus the `BENCH_obs.json` artifact
//! (schema `spsep-obs-bench/v1`).
//!
//! The telemetry plane (DESIGN.md §14) claims its hot-path cost — a
//! handful of relaxed atomic adds plus one bounded flight-recorder
//! append per request — is small enough to leave on in production:
//! ≤ 5% of sustained QPS. E22 measures that claim honestly: the *same
//! binary* serves the same deterministic open-loop load twice, once
//! with the runtime telemetry switch off and once with it on (plus the
//! HTTP metrics side port bound and scraped), and the artifact records
//! both throughputs and the derived overhead. A compiled-out
//! comparison also exists (`spsep-serve` built with
//! `--no-default-features` dead-codes the recording calls); CI compiles
//! that configuration, but the committed numbers compare runtime
//! on/off so both legs share one binary and one process.
//!
//! While the telemetry leg runs, the scrape leg also exercises
//! `GET /metrics` end-to-end: the exposition must pass the strict
//! Prometheus validator, and the scraped `spsep_served_total` must
//! cover every request the harness saw succeed.

use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use rand::SeedableRng;
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{run_load, LoadConfig, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

/// One worker count measured with telemetry off and on.
pub struct ObsRecord {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Load duration per leg, seconds.
    pub duration_s: f64,
    /// Sustained throughput with the runtime telemetry switch off.
    pub qps_off: f64,
    /// Sustained throughput with telemetry on (registry + flight
    /// recorder recording, HTTP side port bound).
    pub qps_on: f64,
    /// `(qps_off − qps_on) / qps_off × 100`; negative when the "on"
    /// leg was faster (noise).
    pub overhead_pct: f64,
    /// Client-side p99 with telemetry off, µs.
    pub p99_off_us: f64,
    /// Client-side p99 with telemetry on, µs.
    pub p99_on_us: f64,
    /// Whether the `GET /metrics` scrape passed the strict validator.
    pub scrape_valid: bool,
    /// Samples in the scraped exposition.
    pub scrape_samples: u64,
    /// `spsep_served_total` as scraped after the "on" leg.
    pub served_total: u64,
}

/// Compute the overhead with the sign convention above.
fn overhead_pct(qps_off: f64, qps_on: f64) -> f64 {
    if qps_off <= 0.0 {
        return 0.0;
    }
    (qps_off - qps_on) / qps_off * 100.0
}

/// One serve-then-load leg. Returns `(qps, p99_us, scrape)` where
/// `scrape` is the exposition text fetched over the HTTP side port
/// (telemetry leg only).
fn run_leg(
    oracle: &Arc<Oracle>,
    workers: usize,
    telemetry: bool,
    rate: f64,
    secs: f64,
    seed: u64,
) -> (f64, f64, Option<String>) {
    let server = Server::bind(
        Arc::clone(oracle),
        ServeConfig {
            workers,
            telemetry,
            metrics_addr: telemetry.then(|| "127.0.0.1:0".to_string()),
            ..ServeConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("e22: bind failed: {e}"));
    let addr = server.local_addr().unwrap_or_else(|e| panic!("e22: {e}"));
    let metrics_addr = server.metrics_addr();
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run());

    let report = run_load(&LoadConfig {
        addr: addr.to_string(),
        rate,
        duration: Duration::from_secs_f64(secs),
        connections: 4,
        n: oracle.n(),
        zipf_theta: 0.9,
        seed,
        ..LoadConfig::default()
    })
    .unwrap_or_else(|e| panic!("e22: load failed: {e}"));

    let scrape = metrics_addr.and_then(http_scrape);
    handle.shutdown();
    daemon
        .join()
        .unwrap_or_else(|_| panic!("e22: daemon panicked"))
        .unwrap_or_else(|e| panic!("e22: daemon failed: {e}"));
    (report.qps, report.latency_us[1], scrape)
}

/// Fetch `GET /metrics` over the side port with plain sockets — the
/// same path an external Prometheus scraper takes.
fn http_scrape(addr: std::net::SocketAddr) -> Option<String> {
    use std::io::{Read, Write};
    let mut stream =
        std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    if !response.starts_with("HTTP/1.1 200") {
        return None;
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
}

/// E22 — measure the telemetry overhead at each worker count.
///
/// `smoke` shrinks the instance and the load so CI exercises the full
/// pipeline (off leg → on leg → scrape → validate) in seconds.
pub fn e22_telemetry_overhead(smoke: bool) -> (String, Vec<ObsRecord>) {
    let dims = if smoke { [8, 8] } else { [12, 12] };
    let (rate, secs) = if smoke { (600.0, 0.4) } else { (2000.0, 1.5) };
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    let oracle = Arc::new(
        Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new())
            .unwrap_or_else(|e| panic!("e22: prepare failed: {e}")),
    );

    let mut records = Vec::new();
    for workers in [1usize, 4] {
        let (qps_off, p99_off_us, _) =
            run_leg(&oracle, workers, false, rate, secs, 0xe22 + workers as u64);
        let (qps_on, p99_on_us, scrape) =
            run_leg(&oracle, workers, true, rate, secs, 0xe22 + workers as u64);
        let text = scrape.unwrap_or_else(|| {
            panic!("e22: GET /metrics scrape failed at workers={workers}")
        });
        let scrape_valid = spsep_telemetry::validate_prometheus_text(&text).is_ok();
        let samples = spsep_telemetry::parse_samples(&text)
            .map(|(s, _)| s)
            .unwrap_or_default();
        let served_total = samples
            .iter()
            .find(|s| s.name == "spsep_served_total")
            .map_or(0, |s| s.value as u64);
        records.push(ObsRecord {
            workers,
            rate,
            duration_s: secs,
            qps_off,
            qps_on,
            overhead_pct: overhead_pct(qps_off, qps_on),
            p99_off_us,
            p99_on_us,
            scrape_valid,
            scrape_samples: samples.len() as u64,
            served_total,
        });
    }

    let mut out = format!(
        "E22 — telemetry-plane overhead (grid {dims:?}, {rate:.0} req/s \
         offered for {secs}s per leg, 4 connections, zipf 0.9): the same \
         binary serves the same deterministic load with the runtime \
         telemetry switch off, then on with the HTTP side port scraped \
         and validated. Claim: overhead <= 5% of QPS.\n\n",
    );
    out.push_str(&render_obs_table(&records));
    (out, records)
}

/// Render the E22 view.
pub fn render_obs_table(records: &[ObsRecord]) -> String {
    let mut t = Table::new(&[
        "workers",
        "qps_off",
        "qps_on",
        "overhead%",
        "p99_off_us",
        "p99_on_us",
        "scrape",
        "samples",
    ]);
    for r in records {
        t.row(vec![
            r.workers.to_string(),
            format!("{:.0}", r.qps_off),
            format!("{:.0}", r.qps_on),
            format!("{:+.2}", r.overhead_pct),
            fmt_f(r.p99_off_us),
            fmt_f(r.p99_on_us),
            if r.scrape_valid { "valid" } else { "INVALID" }.to_string(),
            r.scrape_samples.to_string(),
        ]);
    }
    t.render()
}

/// Serialize records as `spsep-obs-bench/v1` JSON.
pub fn obs_json(records: &[ObsRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-obs-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"rate\": {:.1}, \"duration_s\": {:.3}, \
             \"qps_off\": {:.2}, \"qps_on\": {:.2}, \"overhead_pct\": {:.4}, \
             \"p99_off_us\": {:.2}, \"p99_on_us\": {:.2}, \
             \"scrape_valid\": {}, \"scrape_samples\": {}, \
             \"served_total\": {}}}{}\n",
            r.workers,
            r.rate,
            r.duration_s,
            r.qps_off,
            r.qps_on,
            r.overhead_pct,
            r.p99_off_us,
            r.p99_on_us,
            r.scrape_valid,
            r.scrape_samples,
            r.served_total,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse a validated `spsep-obs-bench/v1` document back into records —
/// the `tables e22 --obs-in` path that renders the committed artifact
/// without re-measuring.
pub fn read_obs_json(json: &str) -> Result<Vec<ObsRecord>, String> {
    validate_obs_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        unreachable!("validated above")
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        unreachable!("validated above")
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            unreachable!("validated above")
        };
        let num = |key: &str| -> f64 {
            match field(e, key) {
                Ok(Json::Num(v)) => *v,
                _ => unreachable!("validated above"),
            }
        };
        let valid = matches!(field(e, "scrape_valid"), Ok(Json::Bool(true)));
        out.push(ObsRecord {
            workers: num("workers") as usize,
            rate: num("rate"),
            duration_s: num("duration_s"),
            qps_off: num("qps_off"),
            qps_on: num("qps_on"),
            overhead_pct: num("overhead_pct"),
            p99_off_us: num("p99_off_us"),
            p99_on_us: num("p99_on_us"),
            scrape_valid: valid,
            scrape_samples: num("scrape_samples") as u64,
            served_total: num("served_total") as u64,
        });
    }
    Ok(out)
}

/// Validate a `spsep-obs-bench/v1` document. Returns the entry count.
///
/// Beyond structure, this enforces the honesty invariants: both
/// throughputs positive, `overhead_pct` consistent with the recorded
/// throughputs (recomputed to within 0.01 points — the artifact cannot
/// claim an overhead its own numbers contradict), a validated scrape
/// with a non-trivial sample count, and served requests covering the
/// scrape.
pub fn validate_obs_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-obs-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Num(cores) = field(&top, "host_cores")? else {
        return Err("`host_cores` must be a number".into());
    };
    if *cores < 1.0 {
        return Err("`host_cores` must be >= 1".into());
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        let num = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if v.is_finite() => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a finite number"))),
            }
        };
        if num("workers")? < 1.0 {
            return Err(ctx("`workers` must be >= 1"));
        }
        for key in ["rate", "duration_s", "qps_off", "qps_on"] {
            if num(key)? <= 0.0 {
                return Err(ctx(&format!("`{key}` must be positive")));
            }
        }
        let (qps_off, qps_on) = (num("qps_off")?, num("qps_on")?);
        let claimed = num("overhead_pct")?;
        let actual = overhead_pct(qps_off, qps_on);
        if (claimed - actual).abs() > 0.01 {
            return Err(ctx(&format!(
                "`overhead_pct` is {claimed:.4} but the recorded throughputs \
                 give {actual:.4}"
            )));
        }
        for key in ["p99_off_us", "p99_on_us"] {
            if num(key)? < 0.0 {
                return Err(ctx(&format!("`{key}` must be non-negative")));
            }
        }
        match field(e, "scrape_valid").map_err(|m| ctx(&m))? {
            Json::Bool(true) => {}
            Json::Bool(false) => {
                return Err(ctx("`scrape_valid` is false: the exposition failed \
                     the Prometheus validator"))
            }
            _ => return Err(ctx("`scrape_valid` must be a boolean")),
        }
        if num("scrape_samples")? < 10.0 {
            return Err(ctx("`scrape_samples` must be >= 10 (a real exposition \
                 has dozens of samples)"));
        }
        if num("served_total")? < 1.0 {
            return Err(ctx("`served_total` must be >= 1"));
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ObsRecord> {
        let mk = |workers: usize, qps_off: f64, qps_on: f64| ObsRecord {
            workers,
            rate: 2000.0,
            duration_s: 1.5,
            qps_off,
            qps_on,
            overhead_pct: overhead_pct(qps_off, qps_on),
            p99_off_us: 850.0,
            p99_on_us: 880.0,
            scrape_valid: true,
            scrape_samples: 140,
            served_total: 2900,
        };
        vec![mk(1, 1900.0, 1860.0), mk(4, 1980.0, 1975.0)]
    }

    #[test]
    fn writer_output_validates_and_roundtrips() {
        let rows = sample();
        let json = obs_json(&rows);
        assert_eq!(validate_obs_json(&json), Ok(2));
        let back = read_obs_json(&json).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.workers, b.workers);
            assert!((a.qps_off - b.qps_off).abs() < 1e-6);
            assert!((a.overhead_pct - b.overhead_pct).abs() < 1e-3);
            assert_eq!(a.scrape_samples, b.scrape_samples);
        }
        let view = render_obs_table(&back);
        assert!(view.contains("overhead%"), "{view}");
        assert!(view.contains("valid"), "{view}");
    }

    #[test]
    fn validator_rejects_dishonest_overhead() {
        assert!(validate_obs_json("").is_err());
        assert!(validate_obs_json("{\"schema\": \"other/v9\"}").is_err());
        let good = obs_json(&sample());
        assert!(validate_obs_json(&good.replace("spsep-obs-bench/v1", "x")).is_err());

        // A claimed overhead the recorded throughputs contradict.
        let mut rows = sample();
        rows[0].overhead_pct = 0.0;
        let err = validate_obs_json(&obs_json(&rows)).unwrap_err();
        assert!(err.contains("overhead_pct"), "{err}");

        // An invalid scrape must never be committed.
        let mut rows = sample();
        rows[1].scrape_valid = false;
        assert!(validate_obs_json(&obs_json(&rows)).is_err());

        // A trivial exposition cannot back the claim.
        let mut rows = sample();
        rows[0].scrape_samples = 2;
        assert!(validate_obs_json(&obs_json(&rows)).is_err());
    }

    #[test]
    fn committed_artifact_validates_and_stays_under_the_claim() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        let json =
            std::fs::read_to_string(path).expect("BENCH_obs.json committed at repo root");
        let entries =
            validate_obs_json(&json).expect("committed artifact is valid spsep-obs-bench/v1");
        assert_eq!(entries, 2, "one row per measured worker count");
        let records = read_obs_json(&json).unwrap();
        for r in &records {
            assert!(
                r.overhead_pct <= 5.0,
                "workers={}: committed overhead {:.2}% exceeds the 5% claim",
                r.workers,
                r.overhead_pct
            );
        }
    }

    #[test]
    fn e22_smoke_runs_both_legs_and_scrapes() {
        let (report, records) = e22_telemetry_overhead(true);
        assert_eq!(records.len(), 2, "{report}");
        for r in &records {
            assert!(r.scrape_valid, "workers={}: scrape invalid", r.workers);
            assert!(r.served_total > 0, "workers={}", r.workers);
        }
        let json = obs_json(&records);
        assert_eq!(validate_obs_json(&json), Ok(2));
    }
}
