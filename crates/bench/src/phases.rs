//! E17 — per-phase wall-clock breakdown of the full pipeline, plus the
//! `BENCH_phases.json` artifact (schema `spsep-phase-bench/v1`).
//!
//! Each family runs build-tree → preprocess → one query, and the
//! [`spsep_pram::PhaseRecord`] log of the augmentation is bucketed into
//! the pipeline's coarse stages:
//!
//! * `build_tree` — decomposition construction ([`Family::instance_timed`]);
//! * `leaves`     — leaf closures: Alg 4.1's deepest level, or the
//!   init phase of Alg 4.3 / Remark 4.4;
//! * `levels`     — per-level internal-node work (Alg 4.1 levels above
//!   the deepest; Remark 4.4's shared-table construction);
//! * `doubling`   — the squaring rounds of Alg 4.3 / Remark 4.4;
//! * `query`      — one sequential scheduled SSSP run.
//!
//! Same no-serde discipline as E16: the artifact is written with
//! `format!`, re-parsed by `jsonv` (the crate-private mini JSON parser), and validated before the
//! `tables` binary writes it.

use crate::families::Family;
use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;
use std::time::Instant;

/// One measured (family, algorithm) pipeline breakdown, milliseconds.
pub struct PhaseBenchRecord {
    /// Machine-readable family slug (`grid2d`, `tree`, …).
    pub family: String,
    /// `alg41`, `alg43`, or `alg44`.
    pub algo: String,
    /// Instance size (vertices).
    pub n: usize,
    /// Decomposition-tree construction.
    pub build_tree_ms: f64,
    /// Leaf closures (Alg 4.1 deepest level / doubling init).
    pub leaves_ms: f64,
    /// Internal-level work (Alg 4.1 upper levels / Remark 4.4 table).
    pub levels_ms: f64,
    /// Path-doubling squaring rounds (zero for Alg 4.1).
    pub doubling_ms: f64,
    /// One scheduled sequential SSSP query.
    pub query_ms: f64,
}

impl PhaseBenchRecord {
    /// Sum of all five phases.
    pub fn total_ms(&self) -> f64 {
        self.build_tree_ms + self.leaves_ms + self.levels_ms + self.doubling_ms + self.query_ms
    }
}

fn algo_slug(algo: Algorithm) -> &'static str {
    match algo {
        Algorithm::LeavesUp => "alg41",
        Algorithm::PathDoubling => "alg43",
        Algorithm::SharedDoubling => "alg44",
    }
}

/// Bucket one augmentation phase log into `(leaves_ms, levels_ms,
/// doubling_ms)` by label prefix.
fn bucket_phases(records: &[spsep_pram::PhaseRecord], algo: Algorithm) -> (f64, f64, f64) {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut leaves = 0.0;
    let mut levels = 0.0;
    let mut doubling = 0.0;
    // Alg 4.1 logs one record per level, deepest first; the deepest
    // level holds the leaf closures (shallower leaves of a ragged tree
    // are attributed to `levels` — a coarse, honest split).
    let deepest = records
        .iter()
        .filter_map(|r| r.label.strip_prefix("alg41/level "))
        .filter_map(|s| s.parse::<u32>().ok())
        .max();
    for r in records {
        let t = ms(r.wall_ns);
        match algo {
            Algorithm::LeavesUp => {
                let depth = r
                    .label
                    .strip_prefix("alg41/level ")
                    .and_then(|s| s.parse::<u32>().ok());
                if depth.is_some() && depth == deepest {
                    leaves += t;
                } else {
                    levels += t;
                }
            }
            Algorithm::PathDoubling | Algorithm::SharedDoubling => {
                if r.label.ends_with("/init") {
                    leaves += t;
                } else if r.label.ends_with("/table") {
                    levels += t;
                } else {
                    doubling += t;
                }
            }
        }
    }
    (leaves, levels, doubling)
}

/// E17 — wall-clock phase breakdown of build-tree / leaves / levels /
/// doubling / query for every family × algorithm. Returns the rendered
/// report plus the raw records for the JSON artifact.
///
/// `smoke` shrinks the instances so CI exercises the full pipeline
/// (measure → bucket → serialize → validate) in seconds.
pub fn e17_phase_breakdown(smoke: bool) -> (String, Vec<PhaseBenchRecord>) {
    let n_target = if smoke { 300 } else { 1500 };
    let mut records = Vec::new();
    for family in Family::all() {
        let (g, tree, build_tree_ms) = family.instance_timed(n_target, 17);
        for algo in [
            Algorithm::LeavesUp,
            Algorithm::PathDoubling,
            Algorithm::SharedDoubling,
        ] {
            let metrics = Metrics::new();
            let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", family.slug(), algo_slug(algo)));
            let (leaves_ms, levels_ms, doubling_ms) =
                bucket_phases(&metrics.phase_records(), algo);
            let t0 = Instant::now();
            let (dist, _) = pre.distances_seq(0);
            let query_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(dist[0] == 0.0, "source distance must be 1̄");
            records.push(PhaseBenchRecord {
                family: family.slug().to_owned(),
                algo: algo_slug(algo).to_owned(),
                n: g.n(),
                build_tree_ms,
                leaves_ms,
                levels_ms,
                doubling_ms,
                query_ms,
            });
        }
    }

    let mut out = format!(
        "E17 — pipeline phase breakdown (wall-clock, n≈{n_target} per \
         family): decomposition build, leaf closures, per-level internal \
         work, doubling rounds, one scheduled query.\n\n",
    );
    out.push_str(&render_phase_table(&records));
    (out, records)
}

/// Render the E17 view: per-family % of wall-clock in each pipeline
/// phase, plus the row total in milliseconds.
pub fn render_phase_table(records: &[PhaseBenchRecord]) -> String {
    let mut t = Table::new(&[
        "family", "algo", "n", "build%", "leaves%", "levels%", "dbl%", "query%", "total_ms",
    ]);
    for r in records {
        let total = r.total_ms().max(1e-9);
        let pct = |x: f64| format!("{:.1}", 100.0 * x / total);
        t.row(vec![
            r.family.clone(),
            r.algo.clone(),
            r.n.to_string(),
            pct(r.build_tree_ms),
            pct(r.leaves_ms),
            pct(r.levels_ms),
            pct(r.doubling_ms),
            pct(r.query_ms),
            fmt_f(r.total_ms()),
        ]);
    }
    t.render()
}

/// Parse a validated `spsep-phase-bench/v1` document back into records —
/// the `tables e17 --phases-in` path that renders the committed artifact
/// without re-measuring.
pub fn read_phases_json(json: &str) -> Result<Vec<PhaseBenchRecord>, String> {
    validate_phases_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        unreachable!("validated above")
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        unreachable!("validated above")
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            unreachable!("validated above")
        };
        let s = |key: &str| -> String {
            match field(e, key) {
                Ok(Json::Str(v)) => v.clone(),
                _ => unreachable!("validated above"),
            }
        };
        let num = |key: &str| -> f64 {
            match field(e, key) {
                Ok(Json::Num(v)) => *v,
                _ => unreachable!("validated above"),
            }
        };
        out.push(PhaseBenchRecord {
            family: s("family"),
            algo: s("algo"),
            n: num("n") as usize,
            build_tree_ms: num("build_tree_ms"),
            leaves_ms: num("leaves_ms"),
            levels_ms: num("levels_ms"),
            doubling_ms: num("doubling_ms"),
            query_ms: num("query_ms"),
        });
    }
    Ok(out)
}

/// Serialize records as `spsep-phase-bench/v1` JSON.
pub fn phases_json(records: &[PhaseBenchRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-phase-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"algo\": \"{}\", \"n\": {}, \
             \"build_tree_ms\": {:.4}, \"leaves_ms\": {:.4}, \
             \"levels_ms\": {:.4}, \"doubling_ms\": {:.4}, \
             \"query_ms\": {:.4}}}{}\n",
            r.family,
            r.algo,
            r.n,
            r.build_tree_ms,
            r.leaves_ms,
            r.levels_ms,
            r.doubling_ms,
            r.query_ms,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validate a `spsep-phase-bench/v1` document. Returns the entry count.
///
/// Checks structure and types, entry-level invariants (known algorithm
/// slugs, positive `n`, finite non-negative phase times), and that the
/// Alg 4.1 rows charge nothing to `doubling_ms`.
pub fn validate_phases_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-phase-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Num(cores) = field(&top, "host_cores")? else {
        return Err("`host_cores` must be a number".into());
    };
    if *cores < 1.0 {
        return Err("`host_cores` must be >= 1".into());
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        match field(e, "family").map_err(|m| ctx(&m))? {
            Json::Str(s) if !s.is_empty() => {}
            _ => return Err(ctx("`family` must be a non-empty string")),
        }
        let algo = match field(e, "algo").map_err(|m| ctx(&m))? {
            Json::Str(s) if s == "alg41" || s == "alg43" || s == "alg44" => s.clone(),
            other => return Err(ctx(&format!("unknown algo {other:?}"))),
        };
        match field(e, "n").map_err(|m| ctx(&m))? {
            Json::Num(v) if *v >= 1.0 && v.fract() == 0.0 => {}
            _ => return Err(ctx("`n` must be a positive integer")),
        }
        for key in [
            "build_tree_ms",
            "leaves_ms",
            "levels_ms",
            "doubling_ms",
            "query_ms",
        ] {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 0.0 && v.is_finite() => {}
                _ => return Err(ctx(&format!("`{key}` must be a finite non-negative number"))),
            }
        }
        if algo == "alg41" {
            match field(e, "doubling_ms").map_err(|m| ctx(&m))? {
                Json::Num(v) if *v == 0.0 => {}
                _ => return Err(ctx("alg41 has no doubling rounds: `doubling_ms` must be 0")),
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PhaseBenchRecord> {
        vec![
            PhaseBenchRecord {
                family: "grid2d".into(),
                algo: "alg41".into(),
                n: 256,
                build_tree_ms: 0.4,
                leaves_ms: 1.2,
                levels_ms: 0.8,
                doubling_ms: 0.0,
                query_ms: 0.1,
            },
            PhaseBenchRecord {
                family: "grid2d".into(),
                algo: "alg43".into(),
                n: 256,
                build_tree_ms: 0.4,
                leaves_ms: 0.7,
                levels_ms: 0.0,
                doubling_ms: 3.1,
                query_ms: 0.1,
            },
        ]
    }

    #[test]
    fn writer_output_validates() {
        let json = phases_json(&sample());
        assert_eq!(validate_phases_json(&json), Ok(2));
    }

    #[test]
    fn json_roundtrips_through_reader() {
        let rows = sample();
        let back = read_phases_json(&phases_json(&rows)).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.algo, b.algo);
            assert_eq!(a.n, b.n);
            assert!((a.total_ms() - b.total_ms()).abs() < 1e-6);
        }
        let view = render_phase_table(&back);
        assert!(view.contains("grid2d"), "{view}");
        assert!(view.contains("total_ms"), "{view}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_phases_json("").is_err());
        assert!(validate_phases_json("[]").is_err());
        assert!(validate_phases_json("{\"schema\": \"other/v9\"}").is_err());
        let bad = phases_json(&sample()).replace("spsep-phase-bench/v1", "nope");
        assert!(validate_phases_json(&bad).is_err());
        // Unknown algorithm slug.
        let bad = phases_json(&sample()).replace("alg43", "alg99");
        assert!(validate_phases_json(&bad).is_err());
        // Alg 4.1 with doubling time is an attribution bug.
        let mut rows = sample();
        rows[0].doubling_ms = 1.0;
        assert!(validate_phases_json(&phases_json(&rows)).is_err());
        // Empty entry list / truncated document.
        let mut empty = phases_json(&[]);
        assert!(validate_phases_json(&empty).is_err());
        empty.truncate(empty.len() / 2);
        assert!(validate_phases_json(&empty).is_err());
    }

    #[test]
    fn committed_artifact_validates() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phases.json");
        let json =
            std::fs::read_to_string(path).expect("BENCH_phases.json committed at repo root");
        let entries =
            validate_phases_json(&json).expect("committed artifact is valid spsep-phase-bench/v1");
        // 5 families x 3 algorithms.
        assert_eq!(entries, 15);
    }

    #[test]
    fn e17_smoke_covers_every_family_and_algorithm() {
        let (report, records) = e17_phase_breakdown(true);
        assert_eq!(records.len(), 15, "{report}");
        for r in &records {
            assert!(r.total_ms() > 0.0, "{}/{}: empty row", r.family, r.algo);
            // Augmentation work must land in the buckets: every run
            // closes leaves.
            assert!(r.leaves_ms > 0.0, "{}/{}: no leaf time", r.family, r.algo);
            if r.algo == "alg41" {
                assert_eq!(r.doubling_ms, 0.0, "{}: alg41 doubling", r.family);
            } else {
                assert!(r.doubling_ms > 0.0, "{}/{}: no rounds", r.family, r.algo);
            }
        }
        let json = phases_json(&records);
        assert_eq!(validate_phases_json(&json), Ok(15));
    }
}
