//! E16 — naive-vs-blocked kernel wall-clock, plus the
//! `BENCH_kernels.json` artifact (schema `spsep-kernel-bench/v1`).
//!
//! The workspace has no serde, so the artifact is written with `format!`
//! and checked by the hand-rolled parser of `jsonv` (the crate-private mini JSON parser); the
//! `tables` binary validates every artifact it writes, and CI's
//! bench-smoke job validates the committed copy.

use crate::families::Family;
use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use spsep_graph::dense::SemiMatrix;
use spsep_graph::semiring::Tropical;
use std::time::Instant;

/// One measured (family, n, kernel) point.
pub struct KernelRecord {
    /// Machine-readable family slug (`grid2d`, `tree`, …).
    pub family: &'static str,
    /// Matrix dimension.
    pub n: usize,
    /// `floyd_warshall` or `square_step`.
    pub kernel: &'static str,
    /// Median wall-clock of the naive kernel, milliseconds.
    pub naive_ms: f64,
    /// Median wall-clock of the blocked kernel, milliseconds.
    pub blocked_ms: f64,
    /// `naive_ms / blocked_ms`.
    pub speedup: f64,
    /// Result matrices byte-for-byte equal on every run.
    pub bit_identical: bool,
}

/// Densify the first `size` vertices of a family instance into a
/// tropical matrix (identity diagonal, edge weights elsewhere).
pub(crate) fn dense_from_family(family: Family, size: usize, seed: u64) -> SemiMatrix<Tropical> {
    // Request twice the target so every family (notably 3-D grids, which
    // round to a cube) yields at least `size` vertices.
    let (g, _) = family.instance(size * 2, seed);
    let n = size.min(g.n());
    let mut m = SemiMatrix::<Tropical>::identity(n);
    for u in 0..n {
        for e in g.out_edges(u) {
            let v = e.to as usize;
            if v < n && v != u {
                m.relax(u, v, e.w);
            }
        }
    }
    m
}

pub(crate) fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

pub(crate) fn same_bits(a: &SemiMatrix<Tropical>, b: &SemiMatrix<Tropical>) -> bool {
    a.data()
        .iter()
        .zip(b.data())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// E16 — single-thread wall-clock of the blocked kernels against their
/// naive references, per family. Returns the rendered report plus the
/// raw records for the JSON artifact.
///
/// `smoke` shrinks sizes and run counts so CI can exercise the full
/// pipeline (measure → serialize → validate) in seconds.
pub fn e16_kernel_speedup(smoke: bool) -> (String, Vec<KernelRecord>) {
    let sizes: &[usize] = if smoke { &[40, 64] } else { &[256, 512, 768] };
    let runs = if smoke { 1 } else { 5 };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let mut records = Vec::new();
    for family in Family::all() {
        for &size in sizes {
            let base = dense_from_family(family, size, 11);
            let n = base.n();

            // Full closure: naive FW vs k-tiled FW.
            let mut fw_naive = Vec::new();
            let mut fw_blocked = Vec::new();
            let mut fw_bits = true;
            for _ in 0..runs {
                let mut a = base.clone();
                let t0 = Instant::now();
                pool.install(|| a.floyd_warshall_naive());
                fw_naive.push(t0.elapsed().as_secs_f64() * 1e3);
                let mut b = base.clone();
                let t0 = Instant::now();
                pool.install(|| b.floyd_warshall());
                fw_blocked.push(t0.elapsed().as_secs_f64() * 1e3);
                fw_bits &= same_bits(&a, &b);
            }
            let (nm, bm) = (median(fw_naive), median(fw_blocked));
            records.push(KernelRecord {
                family: family.slug(),
                n,
                kernel: "floyd_warshall",
                naive_ms: nm,
                blocked_ms: bm,
                speedup: nm / bm.max(1e-9),
                bit_identical: fw_bits,
            });

            // One doubling step: clone-per-call naive vs transpose-packed.
            let mut sq_naive = Vec::new();
            let mut sq_blocked = Vec::new();
            let mut sq_bits = true;
            for _ in 0..runs {
                let mut a = base.clone();
                let t0 = Instant::now();
                pool.install(|| a.square_step_naive());
                sq_naive.push(t0.elapsed().as_secs_f64() * 1e3);
                let mut b = base.clone();
                let t0 = Instant::now();
                pool.install(|| b.square_step());
                sq_blocked.push(t0.elapsed().as_secs_f64() * 1e3);
                sq_bits &= same_bits(&a, &b);
            }
            let (nm, bm) = (median(sq_naive), median(sq_blocked));
            records.push(KernelRecord {
                family: family.slug(),
                n,
                kernel: "square_step",
                naive_ms: nm,
                blocked_ms: bm,
                speedup: nm / bm.max(1e-9),
                bit_identical: sq_bits,
            });
        }
    }

    let mut out = format!(
        "E16 — blocked vs naive kernel wall-clock, single thread (median \
         of {runs} run(s), sizes {sizes:?}). `floyd_warshall` is the \
         k-tiled order-preserving schedule; `square_step` multiplies \
         against a packed transpose with per-tile change flags. The \
         `bitident` column asserts the determinism contract: blocked \
         results are byte-for-byte the naive results.\n\n",
    );
    let mut t = Table::new(&[
        "family", "n", "kernel", "naive_ms", "blocked_ms", "speedup", "bitident",
    ]);
    for r in &records {
        t.row(vec![
            r.family.into(),
            r.n.to_string(),
            r.kernel.into(),
            fmt_f(r.naive_ms),
            fmt_f(r.blocked_ms),
            format!("{:.2}x", r.speedup),
            if r.bit_identical { "yes" } else { "NO" }.into(),
        ]);
    }
    out.push_str(&t.render());
    if !smoke {
        let span = |kernel: &str| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in records.iter().filter(|r| r.kernel == kernel && r.n >= 256) {
                lo = lo.min(r.speedup);
                hi = hi.max(r.speedup);
            }
            (lo, hi)
        };
        let (fw_lo, fw_hi) = span("floyd_warshall");
        let (sq_lo, sq_hi) = span("square_step");
        out.push_str(&format!(
            "\nAcceptance note: the target was >= 1.30x blocked-vs-naive \
             floyd_warshall at n >= 256; this host measures \
             {fw_lo:.2}x-{fw_hi:.2}x (square_step: {sq_lo:.2}x-{sq_hi:.2}x). \
             The FW target is not reached here: on this single-vCPU box the \
             naive schedule already streams the matrix from the last-level \
             cache at full bandwidth, so tiling only converts cache misses \
             that never happen; the win grows with matrix density and size \
             (best case is the densest family at the largest n) and with \
             core count, where the tiled outer phase hands out \
             row-chunk x k-tile blocks instead of single rows. The numbers \
             above are the honest medians either way.\n"
        ));
    }
    (out, records)
}

/// Serialize records as `spsep-kernel-bench/v1` JSON.
pub fn kernels_json(records: &[KernelRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-kernel-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"threads\": 1,\n  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"kernel\": \"{}\", \
             \"naive_ms\": {:.4}, \"blocked_ms\": {:.4}, \
             \"speedup\": {:.4}, \"bit_identical\": {}}}{}\n",
            r.family,
            r.n,
            r.kernel,
            r.naive_ms,
            r.blocked_ms,
            r.speedup,
            r.bit_identical,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validate a `spsep-kernel-bench/v1` document. Returns the entry count.
///
/// Checks structure and types, entry-level invariants (known kernel
/// names, positive `n`, non-negative times, finite positive speedup),
/// and that at least one entry is present. Truth of `bit_identical` is a
/// *result*, not a schema property, so it is type-checked here and
/// asserted by the `tables` binary instead.
pub fn validate_kernels_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-kernel-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    for key in ["host_cores", "threads"] {
        let Json::Num(v) = field(&top, key)? else {
            return Err(format!("`{key}` must be a number"));
        };
        if *v < 1.0 {
            return Err(format!("`{key}` must be >= 1"));
        }
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        match field(e, "family").map_err(|m| ctx(&m))? {
            Json::Str(s) if !s.is_empty() => {}
            _ => return Err(ctx("`family` must be a non-empty string")),
        }
        match field(e, "kernel").map_err(|m| ctx(&m))? {
            Json::Str(s) if s == "floyd_warshall" || s == "square_step" => {}
            other => return Err(ctx(&format!("unknown kernel {other:?}"))),
        }
        match field(e, "n").map_err(|m| ctx(&m))? {
            Json::Num(v) if *v >= 1.0 && v.fract() == 0.0 => {}
            _ => return Err(ctx("`n` must be a positive integer")),
        }
        for key in ["naive_ms", "blocked_ms"] {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 0.0 && v.is_finite() => {}
                _ => return Err(ctx(&format!("`{key}` must be a finite non-negative number"))),
            }
        }
        match field(e, "speedup").map_err(|m| ctx(&m))? {
            Json::Num(v) if *v > 0.0 && v.is_finite() => {}
            _ => return Err(ctx("`speedup` must be a finite positive number")),
        }
        if !matches!(field(e, "bit_identical").map_err(|m| ctx(&m))?, Json::Bool(_)) {
            return Err(ctx("`bit_identical` must be a bool"));
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<KernelRecord> {
        vec![KernelRecord {
            family: "grid2d",
            n: 64,
            kernel: "floyd_warshall",
            naive_ms: 2.5,
            blocked_ms: 1.5,
            speedup: 2.5 / 1.5,
            bit_identical: true,
        }]
    }

    #[test]
    fn writer_output_validates() {
        let json = kernels_json(&sample());
        assert_eq!(validate_kernels_json(&json), Ok(1));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_kernels_json("").is_err());
        assert!(validate_kernels_json("[]").is_err());
        assert!(validate_kernels_json("{\"schema\": \"other/v9\"}").is_err());
        // Wrong schema string.
        let bad = kernels_json(&sample()).replace("spsep-kernel-bench/v1", "nope");
        assert!(validate_kernels_json(&bad).is_err());
        // Unknown kernel name.
        let bad = kernels_json(&sample()).replace("floyd_warshall", "strassen");
        assert!(validate_kernels_json(&bad).is_err());
        // Empty entry list.
        let mut empty = kernels_json(&[]);
        assert!(validate_kernels_json(&empty).is_err());
        // Truncated document.
        empty.truncate(empty.len() / 2);
        assert!(validate_kernels_json(&empty).is_err());
    }

    #[test]
    fn validator_accepts_reordered_keys_and_whitespace() {
        let json = "{\"threads\":1,\"entries\":[{\"bit_identical\":false,\
                     \"speedup\":0.9,\"blocked_ms\":1.0,\"naive_ms\":0.9,\
                     \"n\":32,\"kernel\":\"square_step\",\"family\":\"tree\"}],\
                     \"host_cores\":4,\"schema\":\"spsep-kernel-bench/v1\"}";
        assert_eq!(validate_kernels_json(json), Ok(1));
    }

    #[test]
    fn committed_artifact_validates() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        let json =
            std::fs::read_to_string(path).expect("BENCH_kernels.json committed at repo root");
        let entries =
            validate_kernels_json(&json).expect("committed artifact is valid spsep-kernel-bench/v1");
        // 5 families x 3 sizes x 2 kernels.
        assert_eq!(entries, 30);
    }

    #[test]
    fn e16_smoke_measures_all_families_bit_identically() {
        let (report, records) = e16_kernel_speedup(true);
        // 5 families x 2 sizes x 2 kernels.
        assert_eq!(records.len(), 20);
        assert!(records.iter().all(|r| r.bit_identical), "{report}");
        let json = kernels_json(&records);
        assert_eq!(validate_kernels_json(&json), Ok(20));
    }
}
