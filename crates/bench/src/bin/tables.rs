//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p spsep-bench --bin tables            # everything
//! cargo run --release -p spsep-bench --bin tables -- e1 fig2 # a subset
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e16 --kernels-out BENCH_kernels.json     # kernel bench + artifact
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e17 --phases-out BENCH_phases.json       # phase bench + artifact
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e17 --phases-in BENCH_phases.json        # re-render the artifact
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e18 --amortize-out BENCH_amortize.json   # oracle snapshot bench
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e19 --serve-out BENCH_serve.json         # daemon chaos-load bench
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e20 --mmap-out BENCH_mmap.json           # v1-decode vs v2-mmap load
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e21 --simd-out BENCH_simd.json           # scalar-vs-SIMD kernels
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e22 --obs-out BENCH_obs.json             # telemetry overhead
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e23 --sep-out BENCH_sep.json             # road-network separators
//! ```
//!
//! Experiment ids: e1 e2 e3 e4 e5 fig1 fig2 e8 e9 e10 e11 e12 e13 e14
//! e15 e16 e17 e18 e19 e20 e21 e22 e23 check
//! (see DESIGN.md §4 for the paper-artifact mapping).
//!
//! Flags: `--kernels-out <path>` writes the validated
//! `spsep-kernel-bench/v1` JSON artifact of E16; `--phases-out <path>`
//! writes the `spsep-phase-bench/v1` artifact of E17; `--phases-in
//! <path>` renders E17 from a committed artifact instead of
//! re-measuring; `--amortize-out <path>` / `--amortize-in <path>` do the
//! same for E18's `spsep-amortize/v1` oracle-snapshot benchmark;
//! `--serve-out <path>` / `--serve-in <path>` for E19's
//! `spsep-serve-bench/v1` daemon chaos-load benchmark; `--mmap-out
//! <path>` / `--mmap-in <path>` for E20's `spsep-mmap-bench/v1`
//! v1-decode vs v2-mmap load benchmark; `--simd-out
//! <path>` / `--simd-in <path>` for E21's `spsep-simd-bench/v1`
//! scalar-vs-SIMD kernel benchmark; `--obs-out <path>` / `--obs-in
//! <path>` for E22's `spsep-obs-bench/v1` telemetry-overhead
//! benchmark; `--sep-out <path>` / `--sep-in <path>` for E23's
//! `spsep-sep-bench/v1` road-network separator-quality benchmark;
//! `--smoke` shrinks E16/E17/E18/E19/E20/E21/E22/E23 to CI-sized
//! instances.
//!
//! Unknown experiment ids and flags are reported with the valid set —
//! never a bare panic.

use spsep_bench::{amortize, experiments, kernels, mmap, obs, phases, sep, serve, simd};

/// Every experiment id `tables` understands, in presentation order.
const VALID_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "fig1", "fig2", "e8", "e9", "e10", "e11", "e12", "e13",
    "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "check", "all",
];

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: tables [ids...] [--smoke] [--kernels-out p] [--phases-out p] \
         [--phases-in p] [--amortize-out p] [--amortize-in p] \
         [--serve-out p] [--serve-in p] [--mmap-out p] [--mmap-in p] \
         [--simd-out p] [--simd-in p] [--obs-out p] [--obs-in p] \
         [--sep-out p] [--sep-in p]\n\
         valid ids: {}",
        VALID_IDS.join(" ")
    );
    std::process::exit(2);
}

fn flag_value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| fail(&format!("{flag} needs a path")))
}

fn write_or_fail(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        fail(&format!("cannot write {what} to {path}: {e}"));
    }
}

fn read_or_fail(path: &str, what: &str) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {what} from {path}: {e}")))
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut kernels_out: Option<String> = None;
    let mut phases_out: Option<String> = None;
    let mut phases_in: Option<String> = None;
    let mut amortize_out: Option<String> = None;
    let mut amortize_in: Option<String> = None;
    let mut serve_out: Option<String> = None;
    let mut serve_in: Option<String> = None;
    let mut mmap_out: Option<String> = None;
    let mut mmap_in: Option<String> = None;
    let mut simd_out: Option<String> = None;
    let mut simd_in: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut obs_in: Option<String> = None;
    let mut sep_out: Option<String> = None;
    let mut sep_in: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--kernels-out" => kernels_out = Some(flag_value(&mut it, "--kernels-out")),
            "--phases-out" => phases_out = Some(flag_value(&mut it, "--phases-out")),
            "--phases-in" => phases_in = Some(flag_value(&mut it, "--phases-in")),
            "--amortize-out" => amortize_out = Some(flag_value(&mut it, "--amortize-out")),
            "--amortize-in" => amortize_in = Some(flag_value(&mut it, "--amortize-in")),
            "--serve-out" => serve_out = Some(flag_value(&mut it, "--serve-out")),
            "--serve-in" => serve_in = Some(flag_value(&mut it, "--serve-in")),
            "--mmap-out" => mmap_out = Some(flag_value(&mut it, "--mmap-out")),
            "--mmap-in" => mmap_in = Some(flag_value(&mut it, "--mmap-in")),
            "--simd-out" => simd_out = Some(flag_value(&mut it, "--simd-out")),
            "--simd-in" => simd_in = Some(flag_value(&mut it, "--simd-in")),
            "--obs-out" => obs_out = Some(flag_value(&mut it, "--obs-out")),
            "--obs-in" => obs_in = Some(flag_value(&mut it, "--obs-in")),
            "--sep-out" => sep_out = Some(flag_value(&mut it, "--sep-out")),
            "--sep-in" => sep_in = Some(flag_value(&mut it, "--sep-in")),
            flag if flag.starts_with("--") => fail(&format!("unknown flag '{flag}'")),
            id if !VALID_IDS.contains(&id) => fail(&format!("unknown experiment id '{id}'")),
            _ => args.push(a),
        }
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);
    let mut sweep = None;
    let sweep_points = || {
        experiments::run_sweep()
    };
    let get_sweep = |sweep: &mut Option<Vec<experiments::SweepPoint>>| {
        if sweep.is_none() {
            eprintln!("[tables] running the Table 1 sweep (E1–E3 share it)…");
            *sweep = Some(sweep_points());
        }
    };

    let hr = "=".repeat(78);
    if want("e1") {
        get_sweep(&mut sweep);
        println!("{hr}\n{}", experiments::e1_preprocessing_work(sweep.as_ref().unwrap()));
    }
    if want("e2") {
        get_sweep(&mut sweep);
        println!("{hr}\n{}", experiments::e2_per_source_work(sweep.as_ref().unwrap()));
    }
    if want("e3") {
        get_sweep(&mut sweep);
        println!("{hr}\n{}", experiments::e3_eplus_size(sweep.as_ref().unwrap()));
    }
    if want("e4") {
        println!("{hr}\n{}", experiments::e4_diameter());
    }
    if want("e5") {
        println!("{hr}\n{}", experiments::e5_alg41_vs_alg43());
    }
    if want("fig1") {
        println!("{hr}\n{}", experiments::fig1());
    }
    if want("fig2") {
        println!("{hr}\n{}", experiments::fig2());
    }
    if want("e8") {
        println!("{hr}\n{}", experiments::e8_reachability());
    }
    if want("e9") {
        println!("{hr}\n{}", experiments::e9_thread_scaling());
    }
    if want("e10") {
        println!("{hr}\n{}", experiments::e10_qfaces());
    }
    if want("e11") {
        println!("{hr}\n{}", experiments::e11_crossover());
    }
    if want("e12") {
        println!("{hr}\n{}", experiments::e12_tvpi());
    }
    if want("e13") {
        println!("{hr}\n{}", experiments::e13_leaf_ablation());
    }
    if want("e14") {
        println!("{hr}\n{}", experiments::e14_builder_comparison());
    }
    if want("e15") {
        println!("{hr}\n{}", experiments::e15_family_speedup());
    }
    if want("e16") || kernels_out.is_some() {
        let (report, records) = kernels::e16_kernel_speedup(smoke);
        println!("{hr}\n{report}");
        assert!(
            records.iter().all(|r| r.bit_identical),
            "blocked kernels diverged from naive — determinism contract broken"
        );
        let json = kernels::kernels_json(&records);
        let entries = kernels::validate_kernels_json(&json)
            .unwrap_or_else(|e| fail(&format!("kernels artifact failed validation: {e}")));
        if let Some(path) = &kernels_out {
            write_or_fail(path, &json, "kernels artifact");
            eprintln!("[tables] wrote {path} ({entries} entries)");
        }
    }
    if want("e17") || phases_out.is_some() || phases_in.is_some() {
        if let Some(path) = &phases_in {
            let json = read_or_fail(path, "phases artifact");
            let records = phases::read_phases_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE17 — phase breakdown from {path} ({} entries):\n\n{}",
                records.len(),
                phases::render_phase_table(&records)
            );
        } else {
            let (report, records) = phases::e17_phase_breakdown(smoke);
            println!("{hr}\n{report}");
            let json = phases::phases_json(&records);
            let entries = phases::validate_phases_json(&json)
                .unwrap_or_else(|e| fail(&format!("phases artifact failed validation: {e}")));
            if let Some(path) = &phases_out {
                write_or_fail(path, &json, "phases artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("e18") || amortize_out.is_some() || amortize_in.is_some() {
        if let Some(path) = &amortize_in {
            let json = read_or_fail(path, "amortize artifact");
            let records = amortize::read_amortize_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE18 — snapshot amortization from {path} ({} entries):\n\n{}",
                records.len(),
                amortize::render_amortize_table(&records)
            );
        } else {
            let (report, records) = amortize::e18_amortization(smoke);
            println!("{hr}\n{report}");
            assert!(
                records.iter().all(|r| r.bit_identical),
                "snapshot round-trip diverged from fresh preprocessing — \
                 determinism contract broken"
            );
            let json = amortize::amortize_json(&records);
            let entries = amortize::validate_amortize_json(&json)
                .unwrap_or_else(|e| fail(&format!("amortize artifact failed validation: {e}")));
            if let Some(path) = &amortize_out {
                write_or_fail(path, &json, "amortize artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("e19") || serve_out.is_some() || serve_in.is_some() {
        if let Some(path) = &serve_in {
            let json = read_or_fail(path, "serve artifact");
            let records = serve::read_serve_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE19 — daemon serving latency from {path} ({} entries):\n\n{}",
                records.len(),
                serve::render_serve_table(&records)
            );
        } else {
            let (report, records) = serve::e19_serve_latency(smoke);
            println!("{hr}\n{report}");
            let json = serve::serve_json(&records);
            let entries = serve::validate_serve_json(&json)
                .unwrap_or_else(|e| fail(&format!("serve artifact failed validation: {e}")));
            if let Some(path) = &serve_out {
                write_or_fail(path, &json, "serve artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("e20") || mmap_out.is_some() || mmap_in.is_some() {
        if let Some(path) = &mmap_in {
            let json = read_or_fail(path, "mmap artifact");
            let records = mmap::read_mmap_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE20 — snapshot load paths from {path} ({} entries):\n\n{}",
                records.len(),
                mmap::render_mmap_table(&records)
            );
        } else {
            let (report, records) = mmap::e20_mmap(smoke);
            println!("{hr}\n{report}");
            assert!(
                records.iter().all(|r| r.bit_identical),
                "a snapshot-loaded oracle diverged from fresh preprocessing — \
                 determinism contract broken"
            );
            let json = mmap::mmap_json(&records);
            let entries = mmap::validate_mmap_json(&json)
                .unwrap_or_else(|e| fail(&format!("mmap artifact failed validation: {e}")));
            if let Some(path) = &mmap_out {
                write_or_fail(path, &json, "mmap artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("e21") || simd_out.is_some() || simd_in.is_some() {
        if let Some(path) = &simd_in {
            let json = read_or_fail(path, "simd artifact");
            let records = simd::read_simd_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE21 — scalar-vs-SIMD kernels from {path} ({} entries):\n\n{}",
                records.len(),
                simd::render_simd_table(&records)
            );
        } else {
            let (report, records) = simd::e21_simd_speedup(smoke);
            println!("{hr}\n{report}");
            assert!(
                records.iter().all(|r| r.bit_identical),
                "SIMD kernels diverged from blocked scalar — determinism \
                 contract broken"
            );
            let json = simd::simd_json(&records);
            let entries = simd::validate_simd_json(&json)
                .unwrap_or_else(|e| fail(&format!("simd artifact failed validation: {e}")));
            if let Some(path) = &simd_out {
                write_or_fail(path, &json, "simd artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("e22") || obs_out.is_some() || obs_in.is_some() {
        if let Some(path) = &obs_in {
            let json = read_or_fail(path, "obs artifact");
            let records = obs::read_obs_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE22 — telemetry-plane overhead from {path} ({} entries):\n\n{}",
                records.len(),
                obs::render_obs_table(&records)
            );
        } else {
            let (report, records) = obs::e22_telemetry_overhead(smoke);
            println!("{hr}\n{report}");
            assert!(
                records.iter().all(|r| r.scrape_valid),
                "GET /metrics exposition failed the Prometheus validator"
            );
            let json = obs::obs_json(&records);
            let entries = obs::validate_obs_json(&json)
                .unwrap_or_else(|e| fail(&format!("obs artifact failed validation: {e}")));
            if let Some(path) = &obs_out {
                write_or_fail(path, &json, "obs artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("e23") || sep_out.is_some() || sep_in.is_some() {
        if let Some(path) = &sep_in {
            let json = read_or_fail(path, "sep artifact");
            let records = sep::read_sep_json(&json)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "{hr}\nE23 — separator quality from {path} ({} entries):\n\n{}",
                records.len(),
                sep::render_sep_table(&records)
            );
        } else {
            let (report, records) = sep::e23_separators(smoke);
            println!("{hr}\n{report}");
            let json = sep::sep_json(&records);
            let entries = sep::validate_sep_json(&json)
                .unwrap_or_else(|e| fail(&format!("sep artifact failed validation: {e}")));
            if let Some(path) = &sep_out {
                write_or_fail(path, &json, "sep artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("check") {
        println!("{hr}\n{}", experiments::consistency_check());
    }
}
