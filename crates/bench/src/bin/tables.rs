//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p spsep-bench --bin tables            # everything
//! cargo run --release -p spsep-bench --bin tables -- e1 fig2 # a subset
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e16 --kernels-out BENCH_kernels.json     # kernel bench + artifact
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e17 --phases-out BENCH_phases.json       # phase bench + artifact
//! cargo run --release -p spsep-bench --bin tables -- \
//!     e17 --phases-in BENCH_phases.json        # re-render the artifact
//! ```
//!
//! Experiment ids: e1 e2 e3 e4 e5 fig1 fig2 e8 e9 e10 e11 e12 e13 e14
//! e15 e16 e17 check
//! (see DESIGN.md §4 for the paper-artifact mapping).
//!
//! Flags: `--kernels-out <path>` writes the validated
//! `spsep-kernel-bench/v1` JSON artifact of E16; `--phases-out <path>`
//! writes the `spsep-phase-bench/v1` artifact of E17; `--phases-in
//! <path>` renders E17 from a committed artifact instead of
//! re-measuring; `--smoke` shrinks E16/E17 to CI-sized instances.

use spsep_bench::{experiments, kernels, phases};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut kernels_out: Option<String> = None;
    let mut phases_out: Option<String> = None;
    let mut phases_in: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--kernels-out" => {
                kernels_out = Some(it.next().expect("--kernels-out needs a path"));
            }
            "--phases-out" => {
                phases_out = Some(it.next().expect("--phases-out needs a path"));
            }
            "--phases-in" => {
                phases_in = Some(it.next().expect("--phases-in needs a path"));
            }
            _ => args.push(a),
        }
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);
    let mut sweep = None;
    let sweep_points = || {
        experiments::run_sweep()
    };
    let get_sweep = |sweep: &mut Option<Vec<experiments::SweepPoint>>| {
        if sweep.is_none() {
            eprintln!("[tables] running the Table 1 sweep (E1–E3 share it)…");
            *sweep = Some(sweep_points());
        }
    };

    let hr = "=".repeat(78);
    if want("e1") {
        get_sweep(&mut sweep);
        println!("{hr}\n{}", experiments::e1_preprocessing_work(sweep.as_ref().unwrap()));
    }
    if want("e2") {
        get_sweep(&mut sweep);
        println!("{hr}\n{}", experiments::e2_per_source_work(sweep.as_ref().unwrap()));
    }
    if want("e3") {
        get_sweep(&mut sweep);
        println!("{hr}\n{}", experiments::e3_eplus_size(sweep.as_ref().unwrap()));
    }
    if want("e4") {
        println!("{hr}\n{}", experiments::e4_diameter());
    }
    if want("e5") {
        println!("{hr}\n{}", experiments::e5_alg41_vs_alg43());
    }
    if want("fig1") {
        println!("{hr}\n{}", experiments::fig1());
    }
    if want("fig2") {
        println!("{hr}\n{}", experiments::fig2());
    }
    if want("e8") {
        println!("{hr}\n{}", experiments::e8_reachability());
    }
    if want("e9") {
        println!("{hr}\n{}", experiments::e9_thread_scaling());
    }
    if want("e10") {
        println!("{hr}\n{}", experiments::e10_qfaces());
    }
    if want("e11") {
        println!("{hr}\n{}", experiments::e11_crossover());
    }
    if want("e12") {
        println!("{hr}\n{}", experiments::e12_tvpi());
    }
    if want("e13") {
        println!("{hr}\n{}", experiments::e13_leaf_ablation());
    }
    if want("e14") {
        println!("{hr}\n{}", experiments::e14_builder_comparison());
    }
    if want("e15") {
        println!("{hr}\n{}", experiments::e15_family_speedup());
    }
    if want("e16") || kernels_out.is_some() {
        let (report, records) = kernels::e16_kernel_speedup(smoke);
        println!("{hr}\n{report}");
        assert!(
            records.iter().all(|r| r.bit_identical),
            "blocked kernels diverged from naive — determinism contract broken"
        );
        let json = kernels::kernels_json(&records);
        let entries = kernels::validate_kernels_json(&json).expect("artifact schema");
        if let Some(path) = &kernels_out {
            std::fs::write(path, &json).expect("write kernels artifact");
            eprintln!("[tables] wrote {path} ({entries} entries)");
        }
    }
    if want("e17") || phases_out.is_some() || phases_in.is_some() {
        if let Some(path) = &phases_in {
            let json = std::fs::read_to_string(path).expect("read phases artifact");
            let records = phases::read_phases_json(&json).expect("artifact schema");
            println!(
                "{hr}\nE17 — phase breakdown from {path} ({} entries):\n\n{}",
                records.len(),
                phases::render_phase_table(&records)
            );
        } else {
            let (report, records) = phases::e17_phase_breakdown(smoke);
            println!("{hr}\n{report}");
            let json = phases::phases_json(&records);
            let entries = phases::validate_phases_json(&json).expect("artifact schema");
            if let Some(path) = &phases_out {
                std::fs::write(path, &json).expect("write phases artifact");
                eprintln!("[tables] wrote {path} ({entries} entries)");
            }
        }
    }
    if want("check") {
        println!("{hr}\n{}", experiments::consistency_check());
    }
}
