//! E19 — daemon serving latency under chaos load, plus the
//! `BENCH_serve.json` artifact (schema `spsep-serve-bench/v1`).
//!
//! The query daemon (`spsep_serve`, DESIGN.md §11) claims it sustains a
//! mixed open-loop load with protocol chaos injected, without panics,
//! hangs, or wrong answers, and that its admission control and
//! graceful-shutdown paths only ever produce typed errors. E19 measures
//! that claim at 1, 2, 4, and 8 workers against an in-process daemon:
//! client-side latency percentiles (open-loop, measured from the
//! scheduled arrival, so coordinated omission cannot flatter the tail),
//! daemon-side queue-wait vs service-time split, the error taxonomy,
//! and the row-cache shard counters. Every answer is verified
//! bit-for-bit against direct `Oracle` calls.
//!
//! Same no-serde discipline as E16–E18: the artifact is written with
//! `format!`, re-parsed by `jsonv`, and validated before the `tables`
//! binary writes it. The validator is deliberately strict about the
//! robustness invariants — a document recording an unhandled chaos
//! injection or a verification mismatch must never validate.

use crate::jsonv::{field, parse_json, Json};
use crate::{fmt_f, Table};
use rand::SeedableRng;
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{run_load, LoadConfig, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// One measured worker count: client-side and daemon-side view of a
/// chaos load run.
pub struct ServeRecord {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Load duration in seconds.
    pub duration_s: f64,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests scheduled (including chaos injections).
    pub scheduled: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Chaos injections sent.
    pub chaos_sent: u64,
    /// Chaos injections that ended in a typed error or clean close.
    pub chaos_handled: u64,
    /// Sustained throughput over the run.
    pub qps: f64,
    /// Client-side latency percentiles, µs (p50, p99, p999), measured
    /// from the scheduled arrival.
    pub latency_us: [f64; 3],
    /// Error taxonomy observed by the harness (wire-error labels,
    /// `io`, plus the always-zero `verify_mismatch`/`chaos_unhandled`).
    pub errors: BTreeMap<String, u64>,
    /// Requests the daemon answered (its own counter).
    pub served: u64,
    /// Connections shed by admission control.
    pub shed: u64,
    /// Daemon-side queue-wait percentiles, µs (p50, p99).
    pub queue_wait_us: [f64; 2],
    /// Daemon-side service-time percentiles, µs (p50, p99).
    pub service_us: [f64; 2],
    /// Row-cache hits across all shards.
    pub cache_hits: u64,
    /// Row-cache misses across all shards.
    pub cache_misses: u64,
    /// Lock shards in the row cache.
    pub cache_shards: u64,
}

/// E19 — run the chaos load against an in-process daemon at every
/// worker count. Returns the rendered report plus the raw records.
///
/// `smoke` shrinks the instance and the load so CI exercises the full
/// pipeline (bind → load → verify → drain → validate) in seconds.
pub fn e19_serve_latency(smoke: bool) -> (String, Vec<ServeRecord>) {
    let dims = if smoke { [8, 8] } else { [16, 16] };
    let (rate, secs) = if smoke { (600.0, 0.5) } else { (2000.0, 2.0) };
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    let oracle = Arc::new(
        Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new())
            .unwrap_or_else(|e| panic!("e19: prepare failed: {e}")),
    );
    let n = oracle.n();

    let mut records = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let server = Server::bind(
            Arc::clone(&oracle),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("e19: bind failed: {e}"));
        let addr = server.local_addr().unwrap_or_else(|e| panic!("e19: {e}"));
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run());

        let report = run_load(&LoadConfig {
            addr: addr.to_string(),
            rate,
            duration: Duration::from_secs_f64(secs),
            connections: 4,
            n,
            zipf_theta: 0.9,
            chaos: 0.03,
            seed: 0xe19 + workers as u64,
            verify: Some(Arc::clone(&oracle)),
            ..LoadConfig::default()
        })
        .unwrap_or_else(|e| panic!("e19: load against workers={workers} failed: {e}"));

        handle.shutdown();
        let stats = daemon
            .join()
            .unwrap_or_else(|_| panic!("e19: daemon panicked at workers={workers}"))
            .unwrap_or_else(|e| panic!("e19: daemon failed at workers={workers}: {e}"));

        assert_eq!(
            report.chaos_handled, report.chaos_sent,
            "e19: unhandled chaos at workers={workers}: {:?}",
            report.errors
        );
        assert_eq!(
            *report.errors.get("verify_mismatch").unwrap_or(&0),
            0,
            "e19: answers diverged from direct Oracle calls at workers={workers}"
        );

        records.push(ServeRecord {
            workers,
            rate,
            duration_s: secs,
            connections: 4,
            scheduled: report.scheduled,
            ok: report.ok,
            chaos_sent: report.chaos_sent,
            chaos_handled: report.chaos_handled,
            qps: report.qps,
            latency_us: report.latency_us,
            errors: report.errors,
            served: stats.served,
            shed: stats.shed,
            // The wire now carries p50/p99/p999; the v1 artifact schema
            // keeps its original two-percentile shape.
            queue_wait_us: [stats.queue_wait_us[0], stats.queue_wait_us[1]],
            service_us: [stats.service_us[0], stats.service_us[1]],
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_shards: stats.cache_shards as u64,
        });
    }

    let mut out = format!(
        "E19 — daemon serving latency under chaos load (grid {dims:?}, \
         {rate:.0} req/s offered for {secs}s, 4 connections, 3% chaos, \
         zipf 0.9): open-loop client percentiles vs the daemon's own \
         queue-wait/service split; every answer verified bit-for-bit.\n\n",
        dims = dims,
    );
    out.push_str(&render_serve_table(&records));
    (out, records)
}

/// Render the E19 view.
pub fn render_serve_table(records: &[ServeRecord]) -> String {
    let mut t = Table::new(&[
        "workers",
        "qps",
        "ok/sched",
        "chaos",
        "p50_us",
        "p99_us",
        "p999_us",
        "queue_p99",
        "svc_p99",
        "shed",
        "cache_hit%",
    ]);
    for r in records {
        let lookups = r.cache_hits + r.cache_misses;
        let hit = if lookups == 0 {
            0.0
        } else {
            100.0 * r.cache_hits as f64 / lookups as f64
        };
        t.row(vec![
            r.workers.to_string(),
            format!("{:.0}", r.qps),
            format!("{}/{}", r.ok, r.scheduled),
            format!("{}/{}", r.chaos_handled, r.chaos_sent),
            fmt_f(r.latency_us[0]),
            fmt_f(r.latency_us[1]),
            fmt_f(r.latency_us[2]),
            fmt_f(r.queue_wait_us[1]),
            fmt_f(r.service_us[1]),
            r.shed.to_string(),
            format!("{hit:.1}"),
        ]);
    }
    t.render()
}

/// Serialize records as `spsep-serve-bench/v1` JSON.
pub fn serve_json(records: &[ServeRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-serve-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        let mut errors = String::from("{");
        for (j, (name, count)) in r.errors.iter().enumerate() {
            if j > 0 {
                errors.push_str(", ");
            }
            errors.push_str(&format!("\"{name}\": {count}"));
        }
        errors.push('}');
        s.push_str(&format!(
            "    {{\"workers\": {}, \"rate\": {:.1}, \"duration_s\": {:.3}, \
             \"connections\": {}, \"scheduled\": {}, \"ok\": {}, \
             \"chaos_sent\": {}, \"chaos_handled\": {}, \"qps\": {:.2}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \
             \"errors\": {}, \"served\": {}, \"shed\": {}, \
             \"queue_p50_us\": {:.2}, \"queue_p99_us\": {:.2}, \
             \"service_p50_us\": {:.2}, \"service_p99_us\": {:.2}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_shards\": {}}}{}\n",
            r.workers,
            r.rate,
            r.duration_s,
            r.connections,
            r.scheduled,
            r.ok,
            r.chaos_sent,
            r.chaos_handled,
            r.qps,
            r.latency_us[0],
            r.latency_us[1],
            r.latency_us[2],
            errors,
            r.served,
            r.shed,
            r.queue_wait_us[0],
            r.queue_wait_us[1],
            r.service_us[0],
            r.service_us[1],
            r.cache_hits,
            r.cache_misses,
            r.cache_shards,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse a validated `spsep-serve-bench/v1` document back into records
/// — the `tables e19 --serve-in` path that renders the committed
/// artifact without re-measuring.
pub fn read_serve_json(json: &str) -> Result<Vec<ServeRecord>, String> {
    validate_serve_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        unreachable!("validated above")
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        unreachable!("validated above")
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            unreachable!("validated above")
        };
        let num = |key: &str| -> f64 {
            match field(e, key) {
                Ok(Json::Num(v)) => *v,
                _ => unreachable!("validated above"),
            }
        };
        let mut errors = BTreeMap::new();
        if let Ok(Json::Obj(map)) = field(e, "errors") {
            for (name, v) in map {
                let Json::Num(count) = v else {
                    unreachable!("validated above")
                };
                errors.insert(name.clone(), *count as u64);
            }
        }
        out.push(ServeRecord {
            workers: num("workers") as usize,
            rate: num("rate"),
            duration_s: num("duration_s"),
            connections: num("connections") as usize,
            scheduled: num("scheduled") as u64,
            ok: num("ok") as u64,
            chaos_sent: num("chaos_sent") as u64,
            chaos_handled: num("chaos_handled") as u64,
            qps: num("qps"),
            latency_us: [num("p50_us"), num("p99_us"), num("p999_us")],
            errors,
            served: num("served") as u64,
            shed: num("shed") as u64,
            queue_wait_us: [num("queue_p50_us"), num("queue_p99_us")],
            service_us: [num("service_p50_us"), num("service_p99_us")],
            cache_hits: num("cache_hits") as u64,
            cache_misses: num("cache_misses") as u64,
            cache_shards: num("cache_shards") as u64,
        });
    }
    Ok(out)
}

/// Validate a `spsep-serve-bench/v1` document. Returns the entry count.
///
/// Beyond structure and types, this enforces the robustness invariants
/// the daemon is benchmarked on: every chaos injection handled, zero
/// verification mismatches, zero unhandled chaos, `ok ≤ scheduled`,
/// monotone latency percentiles, and a positive throughput. An
/// artifact violating any of these must never validate (and therefore
/// never be committed).
pub fn validate_serve_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-serve-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Json::Num(cores) = field(&top, "host_cores")? else {
        return Err("`host_cores` must be a number".into());
    };
    if *cores < 1.0 {
        return Err("`host_cores` must be >= 1".into());
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        let int = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a non-negative integer"))),
            }
        };
        let fin = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 0.0 && v.is_finite() => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a finite non-negative number"))),
            }
        };
        let workers = int("workers")?;
        if workers < 1.0 {
            return Err(ctx("`workers` must be >= 1"));
        }
        for key in ["rate", "duration_s"] {
            if fin(key)? <= 0.0 {
                return Err(ctx(&format!("`{key}` must be positive")));
            }
        }
        if int("connections")? < 1.0 {
            return Err(ctx("`connections` must be >= 1"));
        }
        let scheduled = int("scheduled")?;
        let ok = int("ok")?;
        if scheduled < 1.0 {
            return Err(ctx("`scheduled` must be >= 1"));
        }
        if ok > scheduled {
            return Err(ctx("`ok` exceeds `scheduled`"));
        }
        let chaos_sent = int("chaos_sent")?;
        let chaos_handled = int("chaos_handled")?;
        if chaos_handled != chaos_sent {
            return Err(ctx(&format!(
                "unhandled chaos injections: {chaos_handled} of {chaos_sent} handled"
            )));
        }
        if fin("qps")? <= 0.0 {
            return Err(ctx("`qps` must be positive"));
        }
        let p50 = fin("p50_us")?;
        let p99 = fin("p99_us")?;
        let p999 = fin("p999_us")?;
        if !(p50 <= p99 && p99 <= p999) {
            return Err(ctx("latency percentiles must be monotone (p50 <= p99 <= p999)"));
        }
        if fin("queue_p50_us")? > fin("queue_p99_us")? {
            return Err(ctx("queue-wait percentiles must be monotone"));
        }
        if fin("service_p50_us")? > fin("service_p99_us")? {
            return Err(ctx("service-time percentiles must be monotone"));
        }
        if int("served")? < 1.0 {
            return Err(ctx("`served` must be >= 1"));
        }
        int("shed")?;
        int("cache_hits")?;
        int("cache_misses")?;
        if int("cache_shards")? < 1.0 {
            return Err(ctx("`cache_shards` must be >= 1"));
        }
        let Json::Obj(errors) = field(e, "errors").map_err(|m| ctx(&m))? else {
            return Err(ctx("`errors` must be an object"));
        };
        for (name, v) in errors {
            match v {
                Json::Num(count) if *count >= 0.0 && count.fract() == 0.0 => {
                    // Robustness invariants: these classes must be zero
                    // in any artifact worth committing.
                    if (name == "verify_mismatch" || name == "chaos_unhandled") && *count > 0.0 {
                        return Err(ctx(&format!("`{name}` is {count}: the run failed")));
                    }
                }
                _ => {
                    return Err(ctx(&format!(
                        "error counter `{name}` must be a non-negative integer"
                    )))
                }
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ServeRecord> {
        let mk = |workers: usize, qps: f64| ServeRecord {
            workers,
            rate: 2000.0,
            duration_s: 2.0,
            connections: 4,
            scheduled: 4000,
            ok: 3890,
            chaos_sent: 110,
            chaos_handled: 110,
            qps,
            latency_us: [180.0, 900.0, 2400.0],
            errors: BTreeMap::from([
                ("io".to_string(), 0),
                ("verify_mismatch".to_string(), 0),
            ]),
            served: 3890,
            shed: 3,
            queue_wait_us: [20.0, 350.0],
            service_us: [100.0, 700.0],
            cache_hits: 3000,
            cache_misses: 890,
            cache_shards: 8,
        };
        vec![mk(1, 1800.0), mk(4, 1950.0)]
    }

    #[test]
    fn writer_output_validates_and_roundtrips() {
        let rows = sample();
        let json = serve_json(&rows);
        assert_eq!(validate_serve_json(&json), Ok(2));
        let back = read_serve_json(&json).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.workers, b.workers);
            assert_eq!((a.scheduled, a.ok), (b.scheduled, b.ok));
            assert_eq!((a.chaos_sent, a.chaos_handled), (b.chaos_sent, b.chaos_handled));
            assert_eq!(a.errors, b.errors);
            assert!((a.qps - b.qps).abs() < 1e-6);
            assert_eq!(a.cache_shards, b.cache_shards);
        }
        let view = render_serve_table(&back);
        assert!(view.contains("queue_p99"), "{view}");
        assert!(view.contains("cache_hit%"), "{view}");
    }

    #[test]
    fn validator_rejects_malformed_and_failed_runs() {
        assert!(validate_serve_json("").is_err());
        assert!(validate_serve_json("[]").is_err());
        assert!(validate_serve_json("{\"schema\": \"other/v9\"}").is_err());
        let good = serve_json(&sample());
        assert!(validate_serve_json(&good.replace("spsep-serve-bench/v1", "x")).is_err());
        // An unhandled chaos injection must never validate.
        let mut rows = sample();
        rows[0].chaos_handled -= 1;
        assert!(validate_serve_json(&serve_json(&rows)).is_err());
        // A verification mismatch must never validate.
        let mut rows = sample();
        rows[1].errors.insert("verify_mismatch".to_string(), 2);
        assert!(validate_serve_json(&serve_json(&rows)).is_err());
        // ok > scheduled is impossible.
        let mut rows = sample();
        rows[0].ok = rows[0].scheduled + 1;
        assert!(validate_serve_json(&serve_json(&rows)).is_err());
        // Non-monotone percentiles.
        let mut rows = sample();
        rows[0].latency_us = [900.0, 180.0, 2400.0];
        assert!(validate_serve_json(&serve_json(&rows)).is_err());
        // Empty entry list / truncated document.
        let mut empty = serve_json(&[]);
        assert!(validate_serve_json(&empty).is_err());
        empty.truncate(empty.len() / 2);
        assert!(validate_serve_json(&empty).is_err());
    }

    #[test]
    fn committed_artifact_validates_and_covers_every_worker_count() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let json =
            std::fs::read_to_string(path).expect("BENCH_serve.json committed at repo root");
        let entries =
            validate_serve_json(&json).expect("committed artifact is valid spsep-serve-bench/v1");
        assert_eq!(entries, 4, "one row per worker count");
        let records = read_serve_json(&json).unwrap();
        let workers: Vec<usize> = records.iter().map(|r| r.workers).collect();
        assert_eq!(workers, vec![1, 2, 4, 8]);
        for r in &records {
            // The acceptance bar, as measured on the committed run: all
            // chaos handled, zero mismatches, healthy traffic served.
            assert_eq!(r.chaos_handled, r.chaos_sent, "workers={}", r.workers);
            assert!(
                r.ok as f64 >= (r.scheduled - r.chaos_sent) as f64 * 0.95,
                "workers={}: only {}/{} ok",
                r.workers,
                r.ok,
                r.scheduled
            );
        }
    }

    #[test]
    fn e19_smoke_runs_the_full_pipeline() {
        let (report, records) = e19_serve_latency(true);
        assert_eq!(records.len(), 4, "{report}");
        for r in &records {
            assert_eq!(r.chaos_handled, r.chaos_sent, "workers={}", r.workers);
            assert!(r.ok > 0, "workers={}: nothing succeeded", r.workers);
            assert!(r.served > 0, "workers={}", r.workers);
        }
        let json = serve_json(&records);
        assert_eq!(validate_serve_json(&json), Ok(4));
    }
}
