//! E21 — scalar-vs-SIMD dense kernel wall-clock, plus the
//! `BENCH_simd.json` artifact (schema `spsep-simd-bench/v1`).
//!
//! The baseline is the *blocked scalar* tier ([`SemiMatrix::floyd_warshall_blocked`]
//! / [`SemiMatrix::square_step_blocked`]); the candidate is the
//! auto-dispatched entry point, which resolves to the AVX-512F or AVX2
//! relax kernel on capable hosts and to the same blocked scalar code
//! everywhere else. The artifact records which tier actually ran
//! (`dispatch` / `simd_active`), so a scalar-fallback run is an honest
//! ~1.0x row rather than a silent lie. Every run re-checks that both
//! tiers produce byte-for-byte identical matrices.
//!
//! [`SemiMatrix::floyd_warshall_blocked`]: spsep_graph::dense::SemiMatrix::floyd_warshall_blocked
//! [`SemiMatrix::square_step_blocked`]: spsep_graph::dense::SemiMatrix::square_step_blocked

use crate::families::Family;
use crate::jsonv::{field, parse_json, Json};
use crate::kernels::{dense_from_family, median, same_bits};
use crate::{fmt_f, Table};
use spsep_graph::dense::{select_kernel, simd_active};
use spsep_graph::semiring::Tropical;
use std::time::Instant;

/// One measured (family, n, kernel) point.
pub struct SimdRecord {
    /// Machine-readable family slug (`grid2d`, `tree`, …).
    pub family: String,
    /// Matrix dimension.
    pub n: usize,
    /// `floyd_warshall` or `square_step`.
    pub kernel: String,
    /// Median wall-clock of the blocked scalar tier, milliseconds.
    pub scalar_ms: f64,
    /// Median wall-clock of the auto-dispatched tier, milliseconds.
    pub simd_ms: f64,
    /// `scalar_ms / simd_ms`.
    pub speedup: f64,
    /// Result matrices byte-for-byte equal on every run.
    pub bit_identical: bool,
}

/// The dispatched kernel tier, as reported by the kernel itself
/// (`simd-avx512`, `simd-avx2`, `simd-fallback-blocked`, or `blocked`
/// when the `simd` feature is compiled out).
pub fn dispatch_name() -> &'static str {
    select_kernel::<Tropical>().name()
}

/// E21 — single-thread wall-clock of the auto-dispatched (SIMD where the
/// host supports it) kernels against the blocked scalar tier, per
/// family. Returns the rendered report plus the raw records.
///
/// `smoke` shrinks sizes and run counts so CI can exercise the full
/// pipeline (measure → serialize → validate) in seconds.
pub fn e21_simd_speedup(smoke: bool) -> (String, Vec<SimdRecord>) {
    let sizes: &[usize] = if smoke { &[40, 64] } else { &[256, 512, 768] };
    let runs = if smoke { 1 } else { 5 };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let mut records = Vec::new();
    for family in Family::all() {
        for &size in sizes {
            let base = dense_from_family(family, size, 11);
            let n = base.n();

            // Full closure: blocked scalar FW vs auto (SIMD) FW.
            let mut fw_scalar = Vec::new();
            let mut fw_simd = Vec::new();
            let mut fw_bits = true;
            for _ in 0..runs {
                let mut a = base.clone();
                let t0 = Instant::now();
                pool.install(|| a.floyd_warshall_blocked());
                fw_scalar.push(t0.elapsed().as_secs_f64() * 1e3);
                let mut b = base.clone();
                let t0 = Instant::now();
                pool.install(|| b.floyd_warshall());
                fw_simd.push(t0.elapsed().as_secs_f64() * 1e3);
                fw_bits &= same_bits(&a, &b);
            }
            let (sm, vm) = (median(fw_scalar), median(fw_simd));
            records.push(SimdRecord {
                family: family.slug().into(),
                n,
                kernel: "floyd_warshall".into(),
                scalar_ms: sm,
                simd_ms: vm,
                speedup: sm / vm.max(1e-9),
                bit_identical: fw_bits,
            });

            // One doubling step: blocked scalar vs auto (SIMD relax form).
            let mut sq_scalar = Vec::new();
            let mut sq_simd = Vec::new();
            let mut sq_bits = true;
            for _ in 0..runs {
                let mut a = base.clone();
                let t0 = Instant::now();
                pool.install(|| a.square_step_blocked());
                sq_scalar.push(t0.elapsed().as_secs_f64() * 1e3);
                let mut b = base.clone();
                let t0 = Instant::now();
                pool.install(|| b.square_step());
                sq_simd.push(t0.elapsed().as_secs_f64() * 1e3);
                sq_bits &= same_bits(&a, &b);
            }
            let (sm, vm) = (median(sq_scalar), median(sq_simd));
            records.push(SimdRecord {
                family: family.slug().into(),
                n,
                kernel: "square_step".into(),
                scalar_ms: sm,
                simd_ms: vm,
                speedup: sm / vm.max(1e-9),
                bit_identical: sq_bits,
            });
        }
    }

    let mut out = format!(
        "E21 — auto-dispatched (SIMD) vs blocked scalar kernel wall-clock, \
         single thread (median of {runs} run(s), sizes {sizes:?}). \
         Dispatch on this host: `{}` (simd_active = {}). The candidate \
         order per cell is identical across tiers, so the `bitident` \
         column must read `yes` everywhere — the SIMD tier is a pure \
         speed change.\n\n",
        dispatch_name(),
        simd_active::<Tropical>(),
    );
    out.push_str(&render_simd_table(&records));
    if !smoke {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in records.iter().filter(|r| r.kernel == "square_step" && r.n >= 512) {
            lo = lo.min(r.speedup);
            hi = hi.max(r.speedup);
        }
        out.push_str(&format!(
            "\nAcceptance note: the target was >= 1.5x SIMD-vs-scalar on \
             kernel-bound square_step rows at n >= 512; this host measures \
             {lo:.2}x-{hi:.2}x. Honest decomposition of that number: the \
             SIMD tier's square_step also switches from the scalar tier's \
             dot-product (ijk) form to the relax (ikj) form, which skips a \
             whole 0-weight pivot row with one test — on these sparse \
             family matrices (first squaring step) that form change is a \
             large share of the gain. The floyd_warshall rows, where both \
             tiers run the same schedule and only the inner loop widens, \
             are the clean lane-width signal.\n"
        ));
    }
    (out, records)
}

/// Render records as the E21 table (shared by measure and `--simd-in`).
pub fn render_simd_table(records: &[SimdRecord]) -> String {
    let mut t = Table::new(&[
        "family", "n", "kernel", "scalar_ms", "simd_ms", "speedup", "bitident",
    ]);
    for r in records {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.kernel.clone(),
            fmt_f(r.scalar_ms),
            fmt_f(r.simd_ms),
            format!("{:.2}x", r.speedup),
            if r.bit_identical { "yes" } else { "NO" }.into(),
        ]);
    }
    t.render()
}

/// Serialize records as `spsep-simd-bench/v1` JSON.
pub fn simd_json(records: &[SimdRecord]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut s = String::from("{\n  \"schema\": \"spsep-simd-bench/v1\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!("  \"dispatch\": \"{}\",\n", dispatch_name()));
    s.push_str(&format!(
        "  \"simd_active\": {},\n",
        simd_active::<Tropical>()
    ));
    s.push_str("  \"threads\": 1,\n  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"kernel\": \"{}\", \
             \"scalar_ms\": {:.4}, \"simd_ms\": {:.4}, \
             \"speedup\": {:.4}, \"bit_identical\": {}}}{}\n",
            r.family,
            r.n,
            r.kernel,
            r.scalar_ms,
            r.simd_ms,
            r.speedup,
            r.bit_identical,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validate a `spsep-simd-bench/v1` document. Returns the entry count.
///
/// Checks structure and types, entry-level invariants (known kernel
/// names, positive `n`, non-negative times, finite positive speedup),
/// and that at least one entry is present. As with the E16 artifact,
/// truth of `bit_identical` is a *result*, not a schema property — the
/// `tables` binary asserts it.
pub fn validate_simd_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    match field(&top, "schema")? {
        Json::Str(s) if s == "spsep-simd-bench/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    match field(&top, "dispatch")? {
        Json::Str(s) if !s.is_empty() => {}
        _ => return Err("`dispatch` must be a non-empty string".into()),
    }
    if !matches!(field(&top, "simd_active")?, Json::Bool(_)) {
        return Err("`simd_active` must be a bool".into());
    }
    for key in ["host_cores", "threads"] {
        let Json::Num(v) = field(&top, key)? else {
            return Err(format!("`{key}` must be a number"));
        };
        if *v < 1.0 {
            return Err(format!("`{key}` must be >= 1"));
        }
    }
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (idx, e) in entries.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("entry {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("entry {idx}: {msg}");
        match field(e, "family").map_err(|m| ctx(&m))? {
            Json::Str(s) if !s.is_empty() => {}
            _ => return Err(ctx("`family` must be a non-empty string")),
        }
        match field(e, "kernel").map_err(|m| ctx(&m))? {
            Json::Str(s) if s == "floyd_warshall" || s == "square_step" => {}
            other => return Err(ctx(&format!("unknown kernel {other:?}"))),
        }
        match field(e, "n").map_err(|m| ctx(&m))? {
            Json::Num(v) if *v >= 1.0 && v.fract() == 0.0 => {}
            _ => return Err(ctx("`n` must be a positive integer")),
        }
        for key in ["scalar_ms", "simd_ms"] {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if *v >= 0.0 && v.is_finite() => {}
                _ => return Err(ctx(&format!("`{key}` must be a finite non-negative number"))),
            }
        }
        match field(e, "speedup").map_err(|m| ctx(&m))? {
            Json::Num(v) if *v > 0.0 && v.is_finite() => {}
            _ => return Err(ctx("`speedup` must be a finite positive number")),
        }
        if !matches!(field(e, "bit_identical").map_err(|m| ctx(&m))?, Json::Bool(_)) {
            return Err(ctx("`bit_identical` must be a bool"));
        }
    }
    Ok(entries.len())
}

/// Parse a validated `spsep-simd-bench/v1` document back into records
/// (for `tables e21 --simd-in`).
pub fn read_simd_json(json: &str) -> Result<Vec<SimdRecord>, String> {
    validate_simd_json(json)?;
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    let Json::Arr(entries) = field(&top, "entries")? else {
        return Err("`entries` must be an array".into());
    };
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Json::Obj(e) = e else {
            return Err("entry is not an object".into());
        };
        let str_of = |key: &str| -> Result<String, String> {
            match field(e, key)? {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(format!("`{key}` must be a string")),
            }
        };
        let num_of = |key: &str| -> Result<f64, String> {
            match field(e, key)? {
                Json::Num(v) => Ok(*v),
                _ => Err(format!("`{key}` must be a number")),
            }
        };
        let bit = match field(e, "bit_identical")? {
            Json::Bool(b) => *b,
            _ => return Err("`bit_identical` must be a bool".into()),
        };
        out.push(SimdRecord {
            family: str_of("family")?,
            n: num_of("n")? as usize,
            kernel: str_of("kernel")?,
            scalar_ms: num_of("scalar_ms")?,
            simd_ms: num_of("simd_ms")?,
            speedup: num_of("speedup")?,
            bit_identical: bit,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SimdRecord> {
        vec![SimdRecord {
            family: "grid2d".into(),
            n: 512,
            kernel: "square_step".into(),
            scalar_ms: 30.0,
            simd_ms: 12.0,
            speedup: 2.5,
            bit_identical: true,
        }]
    }

    #[test]
    fn writer_output_validates_and_round_trips() {
        let json = simd_json(&sample());
        assert_eq!(validate_simd_json(&json), Ok(1));
        let back = read_simd_json(&json).expect("round-trip");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].family, "grid2d");
        assert_eq!(back[0].n, 512);
        assert_eq!(back[0].kernel, "square_step");
        assert!(back[0].bit_identical);
        assert!((back[0].speedup - 2.5).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_simd_json("").is_err());
        assert!(validate_simd_json("[]").is_err());
        assert!(validate_simd_json("{\"schema\": \"other/v9\"}").is_err());
        // Wrong schema string.
        let bad = simd_json(&sample()).replace("spsep-simd-bench/v1", "nope");
        assert!(validate_simd_json(&bad).is_err());
        // Unknown kernel name.
        let bad = simd_json(&sample()).replace("square_step", "strassen");
        assert!(validate_simd_json(&bad).is_err());
        // Missing dispatch field.
        let bad = simd_json(&sample()).replace("\"dispatch\"", "\"dispatched\"");
        assert!(validate_simd_json(&bad).is_err());
        // Empty entry list.
        let mut empty = simd_json(&[]);
        assert!(validate_simd_json(&empty).is_err());
        // Truncated document.
        empty.truncate(empty.len() / 2);
        assert!(validate_simd_json(&empty).is_err());
    }

    #[test]
    fn dispatch_name_matches_simd_active() {
        let name = dispatch_name();
        if simd_active::<Tropical>() {
            assert!(name == "simd-avx512" || name == "simd-avx2", "{name}");
        } else {
            assert!(
                name == "simd-fallback-blocked" || name == "blocked",
                "{name}"
            );
        }
    }

    #[test]
    fn committed_artifact_validates() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd.json");
        let json = std::fs::read_to_string(path).expect("BENCH_simd.json committed at repo root");
        let entries =
            validate_simd_json(&json).expect("committed artifact is valid spsep-simd-bench/v1");
        // 5 families x 3 sizes x 2 kernels.
        assert_eq!(entries, 30);
    }

    #[test]
    fn e21_smoke_measures_all_families_bit_identically() {
        let (report, records) = e21_simd_speedup(true);
        // 5 families x 2 sizes x 2 kernels.
        assert_eq!(records.len(), 20);
        assert!(records.iter().all(|r| r.bit_identical), "{report}");
        let json = simd_json(&records);
        assert_eq!(validate_simd_json(&json), Ok(20));
    }
}
