//! Minimal JSON reader shared by the artifact validators — just enough
//! to check the documents this crate writes (`BENCH_kernels.json`,
//! `BENCH_phases.json`). The workspace has no serde; writers use
//! `format!` and every artifact is re-parsed and validated before it is
//! written (see the `tables` binary).

/// Parsed JSON value (no numbers-as-strings cleverness; f64 only).
#[derive(Debug, PartialEq)]
pub(crate) enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(format!("unsupported escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                    }
                }
            }
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
}

pub(crate) fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(v)
}

pub(crate) fn field<'j>(obj: &'j [(String, Json)], key: &str) -> Result<&'j Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key `{key}`"))
}
