//! One function per reproduced table/figure (DESIGN.md §4 index).
//!
//! Each returns a plain-text report; the `tables` binary prints them and
//! `EXPERIMENTS.md` archives the output next to the paper's claims.

use crate::families::Family;
use crate::{fmt_f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep_core::{alg41, alg43, analysis, preprocess, reach, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use std::time::Instant;

/// Problem sizes for the Table 1 sweeps.
const SWEEP_NS: [usize; 5] = [1_000, 2_000, 4_000, 8_000, 16_000];

/// One measured point of the Table 1 sweep.
pub struct SweepPoint {
    /// Family measured.
    pub family: Family,
    /// Actual vertex count of the instance.
    pub n: usize,
    /// `|E|`.
    pub m: usize,
    /// Total preprocessing work (op count) of Algorithm 4.1.
    pub work41: u64,
    /// `|E⁺|`.
    pub eplus: usize,
    /// Scheduled relaxations for one source.
    pub per_source: u64,
    /// Relaxations a naive Bellman–Ford on `G⁺` would use
    /// (`rounds · |E ∪ E⁺|`).
    pub naive_per_source: u64,
    /// Tree height `d_G`.
    pub d_g: u32,
}

/// Run the shared sweep behind experiments E1–E3 (cached by the caller).
pub fn run_sweep() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for family in Family::all() {
        for (i, &n_target) in SWEEP_NS.iter().enumerate() {
            let (g, tree) = family.instance(n_target, 42 + i as u64);
            let metrics = Metrics::new();
            let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
                .expect("positive weights");
            let (_, qstats) = pre.distances_seq(0);
            // Idealized naive parallel Bellman–Ford on G⁺ (Section 2.2):
            // it must scan every augmented edge for ecc_hops(source) + 1
            // rounds. (Measuring the fixpoint directly over-counts: float
            // re-association keeps the strict `<` test firing with
            // ulp-sized "improvements" long after true convergence.)
            let aug = spsep_graph::DiGraph::from_edges(g.n(), pre.augmented_edges().to_vec());
            let ecc = analysis::min_hops_at_optimum::<Tropical>(&aug, 0)
                .expect("no neg cycles")
                .into_iter()
                .filter(|&h| h != usize::MAX)
                .max()
                .unwrap_or(0);
            let rounds = ecc + 1;
            points.push(SweepPoint {
                family,
                n: g.n(),
                m: g.m(),
                work41: metrics.total_work(),
                eplus: pre.stats().eplus_edges,
                per_source: qstats.relaxations,
                naive_per_source: (rounds as u64) * pre.augmented_edges().len() as u64,
                d_g: tree.height(),
            });
        }
    }
    points
}

fn fit_for(points: &[SweepPoint], family: Family, f: impl Fn(&SweepPoint) -> f64) -> f64 {
    let xs: Vec<f64> = points
        .iter()
        .filter(|p| p.family == family)
        .map(|p| p.n as f64)
        .collect();
    let ys: Vec<f64> = points
        .iter()
        .filter(|p| p.family == family)
        .map(f)
        .collect();
    analysis::fit_exponent(&xs, &ys)
}

/// E1 — Table 1, preprocessing-work rows.
pub fn e1_preprocessing_work(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "E1 — Table 1 preprocessing work: paper predicts Θ(n + n^{3μ}) \
         (n^1.5 for μ=1/2, n^2 for μ=2/3, ~n for trees; log factors elided)\n\n",
    );
    let mut t = Table::new(&["family", "n", "m", "work(Alg4.1)", "d_G"]);
    for p in points {
        t.row(vec![
            p.family.label().into(),
            p.n.to_string(),
            p.m.to_string(),
            p.work41.to_string(),
            p.d_g.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    for fam in Family::all() {
        let slope = fit_for(points, fam, |p| p.work41 as f64);
        let predicted = (3.0 * fam.mu()).max(1.0);
        out.push_str(&format!(
            "{}: fitted work exponent {:.2} (paper: n^{:.2} up to logs)\n",
            fam.label(),
            slope,
            predicted
        ));
    }
    out
}

/// E2 — Table 1, work-per-source rows.
pub fn e2_per_source_work(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "E2 — Table 1 work per source: paper predicts O(n + n^{2μ}) \
         (n log n at μ=1/2, n^{4/3} at μ=2/3, ~n for trees); the scheduled\n\
         scan must also beat naive Bellman–Ford on G⁺ (rounds·|E∪E⁺|).\n\n",
    );
    let mut t = Table::new(&["family", "n", "scheduled", "naive-BF(G+)", "ratio"]);
    for p in points {
        t.row(vec![
            p.family.label().into(),
            p.n.to_string(),
            p.per_source.to_string(),
            p.naive_per_source.to_string(),
            fmt_f(p.naive_per_source as f64 / p.per_source.max(1) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    for fam in Family::all() {
        let slope = fit_for(points, fam, |p| p.per_source as f64);
        let predicted = (2.0 * fam.mu()).max(1.0);
        out.push_str(&format!(
            "{}: fitted per-source exponent {:.2} (paper: n^{:.2} up to logs)\n",
            fam.label(),
            slope,
            predicted
        ));
    }
    out
}

/// E3 — Theorem 5.1(iii): `|E⁺| = O(n + n^{2μ})`.
pub fn e3_eplus_size(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "E3 — Theorem 5.1(iii): |E⁺| = O(n + n^{2μ}) (n log n at μ=1/2).\n\n",
    );
    let mut t = Table::new(&["family", "n", "|E|", "|E+|", "|E+|/n"]);
    for p in points {
        t.row(vec![
            p.family.label().into(),
            p.n.to_string(),
            p.m.to_string(),
            p.eplus.to_string(),
            fmt_f(p.eplus as f64 / p.n as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    for fam in Family::all() {
        let slope = fit_for(points, fam, |p| p.eplus as f64);
        let predicted = (2.0 * fam.mu()).max(1.0);
        out.push_str(&format!(
            "{}: fitted |E+| exponent {:.2} (paper: n^{:.2} up to logs)\n",
            fam.label(),
            slope,
            predicted
        ));
    }
    out
}

/// E4 — Theorem 3.1: `diam(G⁺) ≤ 4 d_G + 2l + 1`.
pub fn e4_diameter() -> String {
    let mut out = String::from(
        "E4 — Theorem 3.1: measured min-weight diameter of G⁺ vs the bound \
         4·d_G + 2l + 1 (diam(G) shown for contrast; 16 sampled sources).\n\n",
    );
    let mut t = Table::new(&["family", "n", "diam(G)", "diam(G+)", "bound", "d_G"]);
    for family in Family::all() {
        for n_target in [256usize, 1024, 4096] {
            let (g, tree) = family.instance(n_target, 7);
            let metrics = Metrics::new();
            let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
            let stats = pre.stats();
            let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
            let mut rng = StdRng::seed_from_u64(3);
            let sources: Vec<usize> = (0..16).map(|_| rng.gen_range(0..g.n())).collect();
            let diam_plus = analysis::min_weight_diameter_sampled::<Tropical>(
                g.n(),
                pre.augmented_edges(),
                &sources,
            )
            .unwrap();
            let diam_g =
                analysis::min_weight_diameter_sampled::<Tropical>(g.n(), g.edges(), &sources)
                    .unwrap();
            assert!(diam_plus <= bound, "bound violated");
            t.row(vec![
                family.label().into(),
                g.n().to_string(),
                diam_g.to_string(),
                diam_plus.to_string(),
                bound.to_string(),
                stats.d_g.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// E5 — Algorithm 4.1 vs Algorithm 4.3 (Table 1's two preprocessing
/// variants: time vs work trade-off).
pub fn e5_alg41_vs_alg43() -> String {
    let mut out = String::from(
        "E5 — Alg 4.1 (leaves-up) vs Alg 4.3 (path doubling): the paper \
         trades O(log n) depth for O(log n) extra work.\n\n",
    );
    let mut t = Table::new(&[
        "family", "n", "alg", "wall_ms", "work", "depth", "phases",
    ]);
    for family in Family::all() {
        let (g, tree) = family.instance(8_000, 9);
        // Estimated shared pairing-table size for Remark 4.4:
        // Σ_t (|S(t)| + |B(t)|)³ triples before dedup. Above ~1.5e8 the
        // materialized table does not fit comfortably in this host's RAM.
        let triple_estimate: u64 = tree
            .nodes()
            .iter()
            .map(|t| {
                let i = (t.separator.len() + t.boundary.len()) as u64;
                i * i * i
            })
            .sum();
        for (name, algo) in [
            ("4.1", Algorithm::LeavesUp),
            ("4.3", Algorithm::PathDoubling),
            ("4.4", Algorithm::SharedDoubling),
        ] {
            if algo == Algorithm::SharedDoubling && triple_estimate > 150_000_000 {
                t.row(vec![
                    family.label().into(),
                    g.n().to_string(),
                    name.into(),
                    "-".into(),
                    format!("(table ~{triple_estimate} triples: skipped)"),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let metrics = Metrics::new();
            let t0 = Instant::now();
            let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics).unwrap();
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            let _ = pre;
            t.row(vec![
                family.label().into(),
                g.n().to_string(),
                name.into(),
                fmt_f(wall),
                metrics.total_work().to_string(),
                metrics.depth().to_string(),
                metrics.phases().to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nExpected shape: 4.3 does more total work (doubling repeats full \
         squaring steps) but needs fewer, wider phases (lower depth per \
         useful step at scale).\n",
    );
    out
}

/// Figure 1 — the separator decomposition tree of the 9×9 grid.
pub fn fig1() -> String {
    let tree = builders::grid_tree(&[9, 9], RecursionLimits::default());
    let mut out = String::from(
        "Figure 1 — separator decomposition tree of the 9×9 grid \
         (top levels; root separator is the middle grid line):\n\n",
    );
    out.push_str(&tree.render(2));
    out.push_str(&format!(
        "\n… ({} nodes total, height {}, max leaf size {})\n",
        tree.nodes().len(),
        tree.height(),
        tree.max_leaf_size()
    ));
    out
}

/// Figure 2 — right shortcuts along an actual shortest path of the 9×9
/// grid.
pub fn fig2() -> String {
    let tree = builders::grid_tree(&[9, 9], RecursionLimits::default());
    let mut rng = StdRng::seed_from_u64(1);
    let (g, _) = spsep_graph::generators::grid(&[9, 9], &mut rng);
    // A corner-to-corner shortest path.
    let truth = spsep_baselines::dijkstra(&g, 0);
    let path = truth
        .path_to(&g, g.n() - 1)
        .expect("grid connected");
    let levels: Vec<u32> = path.iter().map(|&v| tree.vertex_level(v as usize)).collect();
    // Restrict to the maximal defined-level section (the proof's i1..i2).
    let i1 = levels.iter().position(|&l| l != u32::MAX);
    let i2 = levels.iter().rposition(|&l| l != u32::MAX);
    let mut out = String::from(
        "Figure 2 — level labels and right shortcuts along a shortest \
         0 → 80 path of the 9×9 grid:\n\n",
    );
    out.push_str(&format!("path vertices: {path:?}\n"));
    match (i1, i2) {
        (Some(i1), Some(i2)) if i1 < i2 => {
            let section = &levels[i1..=i2];
            if section.iter().all(|&l| l != u32::MAX) {
                out.push_str(&spsep_core::shortcuts::render_figure2(section));
            } else {
                out.push_str("interior undefined levels; see unit tests for synthetic demo\n");
            }
        }
        _ => out.push_str("path has no defined-level section\n"),
    }
    out
}

/// E8 — reachability: bit-matrix pipeline vs per-source BFS vs dense
/// transitive closure (the `M(n^μ)` claim of Sections 4–5).
pub fn e8_reachability() -> String {
    let mut out = String::from(
        "E8 — reachability work: paper predicts Õ(M(n^μ)) preprocessing + \
         cheap per-source queries, vs Õ(M(n)) dense closure, vs O(m) BFS \
         per source.\n\n",
    );
    let mut t = Table::new(&[
        "n",
        "prep_ms(sep)",
        "query_us(sep)",
        "bfs_us",
        "dense_ms",
        "sep_depth",
        "bfs_depth",
    ]);
    for side in [40usize, 64, 90] {
        let mut rng = StdRng::seed_from_u64(11);
        let (base, _) = spsep_graph::generators::grid(&[side, side], &mut rng);
        // Sparse directed version: drop every 4th arc.
        let edges: Vec<spsep_graph::Edge<bool>> = base
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 0)
            .map(|(_, e)| spsep_graph::Edge::new(e.from as usize, e.to as usize, true))
            .collect();
        let g = spsep_graph::DiGraph::from_edges(base.n(), edges);
        let tree = builders::grid_tree(&[side, side], RecursionLimits::default());
        let metrics = Metrics::new();
        let t0 = Instant::now();
        let pre = reach::preprocess_reach(&g, &tree, &metrics);
        let prep = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for s in 0..32 {
            std::hint::black_box(pre.distances_seq(s * g.n() / 32).0);
        }
        let query = t1.elapsed().as_secs_f64() * 1e6 / 32.0;
        let t2 = Instant::now();
        for s in 0..32 {
            std::hint::black_box(spsep_baselines::reachable_from(&g, s * g.n() / 32));
        }
        let bfs = t2.elapsed().as_secs_f64() * 1e6 / 32.0;
        let t3 = Instant::now();
        std::hint::black_box(spsep_baselines::transitive_closure_dense(&g));
        let dense = t3.elapsed().as_secs_f64() * 1e3;
        // Depth comparison (the NC claim): scheduled query needs
        // O((l + d_G) log n) depth; BFS depth is the hop diameter.
        let qm = Metrics::new();
        std::hint::black_box(pre.distances(0, &qm));
        let sep_depth = qm.depth();
        let bfs_depth = spsep_graph::traversal::bfs_directed(&g, 0)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        t.row(vec![
            g.n().to_string(),
            fmt_f(prep),
            fmt_f(query),
            fmt_f(bfs),
            fmt_f(dense),
            sep_depth.to_string(),
            bfs_depth.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nExpected shape: dense closure explodes with n; the separator \
         preprocessing stays near-linear and amortizes over sources. Raw \
         per-source wall time favours BFS (tiny constants); the NC claim \
         lives in the depth columns — scheduled depth grows ~log²n while \
         BFS depth grows with the hop diameter (~√n here).\n",
    );
    out
}

/// E9 — parallel scalability (the "NC algorithm" claim, realized as
/// multicore speedup under the PRAM cost model).
pub fn e9_thread_scaling() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut out = format!(
        "E9 — wall-clock of Alg 4.1 preprocessing vs rayon threads \
         (grid2d, n = 16384). This host exposes {cores} core(s): the \
         expected speedup ceiling is {cores}x; with 1 core the sweep \
         measures pure threading overhead and the machine-independent \
         parallelism evidence is the PRAM depth counter (phases ≈ d_G, \
         depth ≈ d_G·log n — see E5).\n\n",
    );
    let mut t = Table::new(&["threads", "wall_ms", "speedup"]);
    let (g, tree) = Family::Grid2D.instance(16_384, 3);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let metrics = Metrics::new();
        let t0 = Instant::now();
        pool.install(|| {
            std::hint::black_box(
                preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap(),
            );
        });
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let speedup = base.get_or_insert(wall).max(1e-9) / wall;
        t.row(vec![
            threads.to_string(),
            fmt_f(wall),
            format!("{speedup:.2}x"),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// E15 — executor speedup per family: Alg 4.1 preprocessing wall-clock
/// at 1/2/4/8 threads for every generator family, plus a bit-identity
/// check that the executor's determinism contract holds at bench sizes.
pub fn e15_family_speedup() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut out = format!(
        "E15 — Alg 4.1 preprocessing wall-clock vs worker threads, per \
         family (n ≈ 4096, median of 3 runs). This host exposes {cores} \
         core(s), so the expected speedup ceiling is {cores}x; on a \
         single core the t>1 columns measure scheduling overhead only \
         (see E9 for the machine-independent depth evidence). The \
         `bitident` column asserts the determinism contract: distances \
         from n/2 are byte-for-byte equal at every thread count.\n\n",
    );
    let mut t = Table::new(&[
        "family", "t1_ms", "t2_ms", "t4_ms", "t8_ms", "speedup@4", "bitident",
    ]);
    for family in Family::all() {
        let (g, tree) = family.instance(4096, 3);
        let mut walls = Vec::new();
        let mut reference: Option<Vec<u64>> = None;
        let mut identical = true;
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let mut runs = Vec::new();
            for _ in 0..3 {
                let metrics = Metrics::new();
                let t0 = Instant::now();
                let pre = pool.install(|| {
                    preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap()
                });
                runs.push(t0.elapsed().as_secs_f64() * 1e3);
                let bits: Vec<u64> = pool
                    .install(|| pre.distances_seq(g.n() / 2).0)
                    .iter()
                    .map(|d| d.to_bits())
                    .collect();
                identical &= *reference.get_or_insert(bits.clone()) == bits;
            }
            runs.sort_by(f64::total_cmp);
            walls.push(runs[1]);
        }
        let speedup = walls[0] / walls[2].max(1e-9);
        t.row(vec![
            family.label().into(),
            fmt_f(walls[0]),
            fmt_f(walls[1]),
            fmt_f(walls[2]),
            fmt_f(walls[3]),
            format!("{speedup:.2}x"),
            if identical { "yes" } else { "NO" }.into(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// E10 — Section 6: hammock pipeline vs running the main algorithm on all
/// of `G`, as `q` varies at (roughly) fixed `n`.
pub fn e10_qfaces() -> String {
    let mut out = String::from(
        "E10 — Section 6 few-faces pipeline: preprocessing + 8-source \
         query cost vs q at n ≈ 20k. Paper predicts per-source work \
         O(n + q log q) for the G′ reduction vs O(n + n^{2μ}·polylog) \
         direct — the win shows in the query columns and widens as \
         sources accumulate; preprocessing is ~linear either way at \
         these q.\n\n",
    );
    let mut t = Table::new(&[
        "q", "n", "ham_prep_ms", "ham_q_ms", "dir_prep_ms", "dir_q_ms",
    ]);
    for side in [3usize, 5, 8, 12] {
        let q = side * side;
        let skeleton_edges = 2 * side * (side - 1);
        let ladder = ((20_000usize.saturating_sub(q)) / (2 * skeleton_edges)).max(1);
        let mut rng = StdRng::seed_from_u64(13);
        let hg = spsep_planar::generate_hammock_graph(side, ladder, &mut rng);
        let sources: Vec<usize> = (0..8).map(|i| i * hg.graph.n() / 8).collect();

        let metrics = Metrics::new();
        let t0 = Instant::now();
        let sp = spsep_planar::HammockSP::preprocess(&hg, &metrics);
        let ham_prep = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        std::hint::black_box(sp.distances_multi(&sources));
        let ham_q = t1.elapsed().as_secs_f64() * 1e3;

        let metrics = Metrics::new();
        let t2 = Instant::now();
        let adj = hg.graph.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        let pre =
            preprocess::<Tropical>(&hg.graph, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        let dir_prep = t2.elapsed().as_secs_f64() * 1e3;
        let t3 = Instant::now();
        std::hint::black_box(pre.distances_multi(&sources));
        let dir_q = t3.elapsed().as_secs_f64() * 1e3;

        t.row(vec![
            q.to_string(),
            hg.graph.n().to_string(),
            fmt_f(ham_prep),
            fmt_f(ham_q),
            fmt_f(dir_prep),
            fmt_f(dir_q),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// E11 — sequential crossover vs Johnson's algorithm as the number of
/// sources `s` grows (the intro's O(mn + n² log n) comparison).
pub fn e11_crossover() -> String {
    let mut out = String::from(
        "E11 — s-source crossover on a 96×96 grid with negative edges: \
         separator = one preprocessing + s scheduled queries; Johnson = \
         one Bellman–Ford + s Dijkstras.\n\n",
    );
    let mut rng = StdRng::seed_from_u64(17);
    let (g0, _) = spsep_graph::generators::grid(&[96, 96], &mut rng);
    let g = spsep_graph::generators::skew_by_potentials(&g0, 3.0, &mut rng);
    let tree = builders::grid_tree(&[96, 96], RecursionLimits::default());

    let metrics = Metrics::new();
    let t0 = Instant::now();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let prep = t0.elapsed().as_secs_f64() * 1e3;
    // Per-query cost, averaged.
    let t1 = Instant::now();
    for s in 0..64 {
        std::hint::black_box(pre.distances_seq(s * g.n() / 64).0);
    }
    let per_query = t1.elapsed().as_secs_f64() * 1e3 / 64.0;
    // Johnson cost model: potentials once + per-source Dijkstra.
    let t2 = Instant::now();
    let aug = spsep_baselines::johnson(&g, &[0]).unwrap();
    let johnson_fixed = t2.elapsed().as_secs_f64() * 1e3;
    drop(aug);
    let t3 = Instant::now();
    let sources: Vec<usize> = (0..64).map(|s| s * g.n() / 64).collect();
    std::hint::black_box(spsep_baselines::johnson(&g, &sources).unwrap());
    let johnson_64 = t3.elapsed().as_secs_f64() * 1e3;
    let johnson_per = (johnson_64 - johnson_fixed).max(0.0) / 63.0;

    // Depth per query (the parallel claim): scheduled phases vs the
    // inherently sequential heap of Dijkstra (depth ≈ #pops ≈ n).
    let qm = Metrics::new();
    std::hint::black_box(pre.distances(0, &qm));
    let sep_depth = qm.depth();
    let dijkstra_depth = g.n(); // one heap pop per settled vertex

    let mut t = Table::new(&["s", "separator_ms", "johnson_ms", "wall_winner"]);
    for s in [1usize, 4, 16, 64, 256, 1024] {
        let sep = prep + per_query * s as f64;
        let joh = johnson_fixed + johnson_per * (s.saturating_sub(1)) as f64;
        t.row(vec![
            s.to_string(),
            fmt_f(sep),
            fmt_f(joh),
            if sep < joh { "separator" } else { "johnson" }.into(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n(preprocessing {prep:.1} ms, per scheduled query {per_query:.2} ms, \
         Johnson fixed {johnson_fixed:.1} ms, per Dijkstra {johnson_per:.2} ms)\n\
         Per-query PRAM depth: scheduled = {sep_depth} vs Dijkstra ≈ {dijkstra_depth} \
         (sequential heap) — the paper's actual claim is this depth gap, \
         which no sequential wall-clock can show.\n",
    ));
    out
}

/// E12 — the two-variable-inequality application: separator solve vs the
/// Bellman–Ford engine on grid-structured systems.
pub fn e12_tvpi() -> String {
    let mut out = String::from(
        "E12 — difference-constraint systems on grid constraint graphs: \
         the paper replaces the Õ(n³) path-computation term of \
         Cohen–Megiddo by the separator bound.\n\n",
    );
    let mut t = Table::new(&["vars", "constraints", "sep_ms", "sep_work", "bf_ms"]);
    for side in [20usize, 40, 80] {
        let mut rng = StdRng::seed_from_u64(19);
        let sys = spsep_tvpi::grid_schedule_system(side, side, 5.0, 2.0, &mut rng);
        let metrics = Metrics::new();
        let t0 = Instant::now();
        let a = sys.solve(&metrics);
        let sep_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let b = sys.solve_bellman_ford();
        let bf_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(matches!(a, spsep_tvpi::Solution::Feasible(_)));
        assert!(matches!(b, spsep_tvpi::Solution::Feasible(_)));
        t.row(vec![
            sys.num_vars().to_string(),
            sys.len().to_string(),
            fmt_f(sep_ms),
            metrics.total_work().to_string(),
            fmt_f(bf_ms),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(One feasibility solve is a single multi-source query: Bellman–Ford \
         wins on raw wall-clock; the separator engine's value is the reusable \
         E⁺ — incremental re-solves and the parallel depth bound.)\n",
    );
    out
}

/// E13 (ablation) — leaf-size knob: smaller leaves shrink `l` (fewer
/// entry/exit E-phases per query) but add tree nodes (more `E⁺`
/// candidates and preprocessing phases). DESIGN.md calls this out as the
/// main tunable of the implementation.
pub fn e13_leaf_ablation() -> String {
    let mut out = String::from(
        "E13 — ablation: leaf_size vs preprocessing work, |E+|, and \
         per-source relaxations (grid2d, n = 4096). Per-source work is \
         O(l·|E| + |E∪E+|) with l = leaf_size − 1.\n\n",
    );
    let mut t = Table::new(&[
        "leaf_size",
        "tree_nodes",
        "d_G",
        "prep_work",
        "|E+|",
        "per_source",
    ]);
    let mut rng = StdRng::seed_from_u64(29);
    let (g, _) = spsep_graph::generators::grid(&[64, 64], &mut rng);
    for leaf in [4usize, 8, 16, 32, 64] {
        let tree = builders::grid_tree(
            &[64, 64],
            RecursionLimits {
                leaf_size: leaf,
                ..Default::default()
            },
        );
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        let (_, q) = pre.distances_seq(0);
        t.row(vec![
            leaf.to_string(),
            tree.nodes().len().to_string(),
            tree.height().to_string(),
            metrics.total_work().to_string(),
            pre.stats().eplus_edges.to_string(),
            q.relaxations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// E14 (ablation) — separator-builder comparison on one planar graph:
/// the same triangulated mesh decomposed by (a) BFS levels, (b)
/// geometric median cuts on the lattice coordinates, (c) Lipton–Tarjan
/// fundamental cycles. Tree quality drives every downstream bound.
pub fn e14_builder_comparison() -> String {
    let mut out = String::from(
        "E14 — ablation: decomposition builders on the same 64×64 \
         triangulated planar mesh. Smaller/balanced separators ⇒ shallower \
         trees, smaller E⁺, cheaper queries.\n\n",
    );
    let side = 64usize;
    let mut rng = StdRng::seed_from_u64(31);
    let (g, tri) = spsep_separator::planar::triangulated_grid(side, side, &mut rng);
    let adj = g.undirected_skeleton();
    // Lattice coordinates for the geometric builder.
    let coords = {
        let mut data = Vec::with_capacity(g.n() * 2);
        for v in 0..g.n() {
            data.push((v / side) as f64);
            data.push((v % side) as f64);
        }
        spsep_graph::generators::Coords::new(2, data)
    };
    let trees: Vec<(&str, spsep_separator::SepTree)> = vec![
        (
            "bfs-levels",
            builders::bfs_tree(&adj, RecursionLimits::default()),
        ),
        (
            "geometric",
            builders::geometric_tree(&adj, &coords, RecursionLimits::default()),
        ),
        (
            "lt-cycles",
            spsep_separator::planar::planar_cycle_tree(&adj, &tri, 4),
        ),
    ];
    let mut t = Table::new(&[
        "builder",
        "height",
        "root|S|",
        "sum|S|",
        "prep_work",
        "|E+|",
        "per_src",
    ]);
    for (name, tree) in &trees {
        tree.validate(&adj).expect("builder must be exact");
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, tree, Algorithm::LeavesUp, &metrics).unwrap();
        let (_, q) = pre.distances_seq(0);
        t.row(vec![
            (*name).into(),
            tree.height().to_string(),
            tree.node(0).separator.len().to_string(),
            tree.total_separator_size().to_string(),
            metrics.total_work().to_string(),
            pre.stats().eplus_edges.to_string(),
            q.relaxations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(Reference point: E1's grid2d family uses exact hyperplane \
         separators on the undiagonalized grid — the quality ceiling the \
         general builders approach.)\n",
    );
    out
}

/// Sanity check used by `tables --exp check`: the two augmentation
/// algorithms agree on a midsize instance of every family.
pub fn consistency_check() -> String {
    let mut out = String::new();
    for family in Family::all() {
        let (g, tree) = family.instance(2_000, 23);
        let m = Metrics::new();
        let a = alg41::augment_leaves_up::<Tropical>(&g, &tree, &m).unwrap();
        let b = alg43::augment_path_doubling::<Tropical>(&g, &tree, &m).unwrap();
        assert_eq!(a.eplus.len(), b.eplus.len(), "{family:?}");
        out.push_str(&format!(
            "{}: |E+| = {} identical across Alg 4.1 / Alg 4.3\n",
            family.label(),
            a.eplus.len()
        ));
    }
    out
}
