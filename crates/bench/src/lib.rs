//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper maps to one experiment here (see
//! DESIGN.md §4 for the index); the `tables` binary prints them, the
//! criterion benches wall-clock the kernels, and `EXPERIMENTS.md` records
//! paper-vs-measured.

pub mod amortize;
pub mod experiments;
pub mod families;
mod jsonv;
pub mod kernels;
pub mod loadrep;
pub mod mmap;
pub mod obs;
pub mod phases;
pub mod sep;
pub mod serve;
pub mod simd;

/// Fixed-width table printer for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        for (w, _) in widths.iter().zip(&self.header) {
            out.push_str(&"-".repeat(*w));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Format a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 || x.abs() < 0.01 {
        format!("{x:.2e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "work"]);
        t.row(vec!["100".into(), "12345".into()]);
        t.row(vec!["20000".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("n"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert!(fmt_f(123456.0).contains('e'));
        assert_eq!(fmt_f(1.5), "1.500");
    }
}
