//! The graph families of Section 5, parameterized by the separator
//! exponent `μ`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_graph::DiGraph;
use spsep_separator::{builders, RecursionLimits, SepTree};

/// One of the paper's `k^μ`-separator families.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// 2-D grid: `μ = 1/2` (the planar case of Section 6).
    Grid2D,
    /// 3-D grid: `μ = 2/3`.
    Grid3D,
    /// Random tree with centroid separators: `μ → 0`.
    Tree,
    /// Partial 4-tree with a width-4 tree decomposition: bounded
    /// treewidth (`μ → 0` with |S| ≤ 5), the Robertson–Seymour family of
    /// the paper's introduction.
    KTree,
    /// Triangulated planar mesh decomposed by Lipton–Tarjan
    /// fundamental-cycle separators: `μ = 1/2` via the genuine planar
    /// mechanism (vs the exact hyperplanes of [`Family::Grid2D`]).
    PlanarMesh,
}

impl Family {
    /// The separator exponent.
    pub fn mu(self) -> f64 {
        match self {
            Family::Grid2D => 0.5,
            Family::Grid3D => 2.0 / 3.0,
            Family::Tree | Family::KTree => 0.0,
            Family::PlanarMesh => 0.5,
        }
    }

    /// Short label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            Family::Grid2D => "grid2d (mu=1/2)",
            Family::Grid3D => "grid3d (mu=2/3)",
            Family::Tree => "tree   (mu~0)",
            Family::KTree => "4-tree (mu~0)",
            Family::PlanarMesh => "planar (mu=1/2)",
        }
    }

    /// Machine-readable slug for JSON artifacts.
    pub fn slug(self) -> &'static str {
        match self {
            Family::Grid2D => "grid2d",
            Family::Grid3D => "grid3d",
            Family::Tree => "tree",
            Family::KTree => "ktree",
            Family::PlanarMesh => "planar",
        }
    }

    /// Build an instance with roughly `n_target` vertices, plus its
    /// decomposition tree. Deterministic in `seed`.
    pub fn instance(self, n_target: usize, seed: u64) -> (DiGraph<f64>, SepTree) {
        let (g, tree, _) = self.instance_timed(n_target, seed);
        (g, tree)
    }

    /// Like [`Family::instance`], also reporting the wall-clock
    /// milliseconds of the decomposition build alone (graph generation
    /// excluded) — the `build_tree` phase of experiment E17.
    pub fn instance_timed(self, n_target: usize, seed: u64) -> (DiGraph<f64>, SepTree, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let timed = |f: &dyn Fn() -> SepTree| {
            let t0 = std::time::Instant::now();
            let tree = f();
            (tree, t0.elapsed().as_secs_f64() * 1e3)
        };
        match self {
            Family::Grid2D => {
                let side = (n_target as f64).sqrt().round().max(2.0) as usize;
                let (g, _) = spsep_graph::generators::grid(&[side, side], &mut rng);
                let (tree, ms) =
                    timed(&|| builders::grid_tree(&[side, side], RecursionLimits::default()));
                (g, tree, ms)
            }
            Family::Grid3D => {
                let side = (n_target as f64).cbrt().round().max(2.0) as usize;
                let (g, _) = spsep_graph::generators::grid(&[side, side, side], &mut rng);
                let (tree, ms) = timed(&|| {
                    builders::grid_tree(&[side, side, side], RecursionLimits::default())
                });
                (g, tree, ms)
            }
            Family::Tree => {
                let g = spsep_graph::generators::random_tree(n_target.max(2), &mut rng);
                let (tree, ms) = timed(&|| {
                    builders::centroid_tree(&g.undirected_skeleton(), RecursionLimits::default())
                });
                (g, tree, ms)
            }
            Family::KTree => {
                let (g, td) = spsep_separator::treewidth::partial_ktree(
                    n_target.max(6),
                    4,
                    0.8,
                    &mut rng,
                );
                let (tree, ms) = timed(&|| {
                    spsep_separator::treewidth::treewidth_tree(
                        &g.undirected_skeleton(),
                        &td,
                        RecursionLimits::default(),
                    )
                });
                (g, tree, ms)
            }
            Family::PlanarMesh => {
                let side = (n_target as f64).sqrt().round().max(2.0) as usize;
                let (g, tri) =
                    spsep_separator::planar::triangulated_grid(side, side, &mut rng);
                let (tree, ms) = timed(&|| {
                    spsep_separator::planar::planar_cycle_tree(&g.undirected_skeleton(), &tri, 4)
                });
                (g, tree, ms)
            }
        }
    }

    /// All families.
    pub fn all() -> [Family; 5] {
        [
            Family::Grid2D,
            Family::Grid3D,
            Family::Tree,
            Family::KTree,
            Family::PlanarMesh,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_valid() {
        for fam in Family::all() {
            let (g, tree) = fam.instance(300, 1);
            tree.validate(&g.undirected_skeleton())
                .unwrap_or_else(|e| panic!("{fam:?}: {e}"));
            assert!(g.n() >= 100, "{fam:?} too small: {}", g.n());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (g1, _) = Family::Tree.instance(100, 7);
        let (g2, _) = Family::Tree.instance(100, 7);
        assert_eq!(g1.m(), g2.m());
        assert_eq!(g1.edges()[5].w, g2.edges()[5].w);
    }
}
