//! E2 wall-clock: per-source query cost — scheduled Bellman–Ford vs
//! exhaustive Bellman–Ford on `G⁺` vs Dijkstra on `G`.

use criterion::{criterion_group, criterion_main, Criterion};
use spsep_bench::families::Family;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;
use std::time::Duration;

fn bench_per_source(c: &mut Criterion) {
    let (g, tree) = Family::Grid2D.instance(16_384, 2);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();

    let mut group = c.benchmark_group("per_source_grid2d_16k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("scheduled_bf", |b| {
        b.iter(|| std::hint::black_box(pre.distances_seq(0).0))
    });
    group.bench_function("unscheduled_bf_gplus", |b| {
        b.iter(|| std::hint::black_box(pre.distances_unscheduled(0, g.n()).unwrap().0))
    });
    group.bench_function("dijkstra_on_g", |b| {
        b.iter(|| std::hint::black_box(spsep_baselines::dijkstra(&g, 0).dist))
    });
    group.finish();
}

criterion_group!(benches, bench_per_source);
criterion_main!(benches);
