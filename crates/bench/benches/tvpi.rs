//! E12 wall-clock: difference-constraint solving — separator pipeline vs
//! Bellman–Ford on grid-structured systems.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_pram::Metrics;
use spsep_tvpi::grid_schedule_system;
use std::time::Duration;

fn bench_tvpi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let sys = grid_schedule_system(40, 40, 5.0, 2.0, &mut rng);

    let mut group = c.benchmark_group("tvpi_grid_40x40");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("separator_solve", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            std::hint::black_box(sys.solve(&metrics))
        })
    });
    group.bench_function("bellman_ford_solve", |b| {
        b.iter(|| std::hint::black_box(sys.solve_bellman_ford()))
    });
    group.finish();
}

criterion_group!(benches, bench_tvpi);
criterion_main!(benches);
