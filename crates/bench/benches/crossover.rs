//! E11 wall-clock: 32-source shortest paths with negative edges —
//! separator pipeline (preprocess + queries) vs Johnson's algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use std::time::Duration;

fn bench_crossover(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let (g0, _) = spsep_graph::generators::grid(&[64, 64], &mut rng);
    let g = spsep_graph::generators::skew_by_potentials(&g0, 3.0, &mut rng);
    let tree = builders::grid_tree(&[64, 64], RecursionLimits::default());
    let sources: Vec<usize> = (0..32).map(|i| i * g.n() / 32).collect();

    let mut group = c.benchmark_group("multi_source_grid_64x64_s32");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("separator_end_to_end", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            let pre =
                preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
            std::hint::black_box(pre.distances_multi(&sources))
        })
    });
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    group.bench_function("separator_queries_only", |b| {
        b.iter(|| std::hint::black_box(pre.distances_multi(&sources)))
    });
    group.bench_function("johnson", |b| {
        b.iter(|| std::hint::black_box(spsep_baselines::johnson(&g, &sources).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
