//! E8 wall-clock: reachability — bit-matrix separator pipeline vs dense
//! transitive closure vs per-source BFS.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_core::reach;
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use std::time::Duration;

fn bench_reachability(c: &mut Criterion) {
    let side = 32usize;
    let mut rng = StdRng::seed_from_u64(4);
    let (base, _) = spsep_graph::generators::grid(&[side, side], &mut rng);
    let edges: Vec<spsep_graph::Edge<bool>> = base
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 != 0)
        .map(|(_, e)| spsep_graph::Edge::new(e.from as usize, e.to as usize, true))
        .collect();
    let g = spsep_graph::DiGraph::from_edges(base.n(), edges);
    let tree = builders::grid_tree(&[side, side], RecursionLimits::default());

    let mut group = c.benchmark_group("reachability_grid_32x32");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("separator_preprocess_bitmatrix", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            std::hint::black_box(reach::preprocess_reach(&g, &tree, &metrics))
        })
    });
    let metrics = Metrics::new();
    let pre = reach::preprocess_reach(&g, &tree, &metrics);
    group.bench_function("separator_query", |b| {
        b.iter(|| std::hint::black_box(pre.distances_seq(0).0))
    });
    group.bench_function("bfs_per_source", |b| {
        b.iter(|| std::hint::black_box(spsep_baselines::reachable_from(&g, 0)))
    });
    group.bench_function("dense_transitive_closure", |b| {
        b.iter(|| std::hint::black_box(spsep_baselines::transitive_closure_dense(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
