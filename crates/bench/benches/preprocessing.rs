//! E1 wall-clock: `E⁺` construction (Algorithm 4.1) across the three
//! `k^μ` families of Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spsep_bench::families::Family;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;
use std::time::Duration;

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing_alg41");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for family in Family::all() {
        for n in [1_000usize, 4_000] {
            let (g, tree) = family.instance(n, 1);
            group.bench_with_input(
                BenchmarkId::new(family.label().trim(), g.n()),
                &(&g, &tree),
                |b, (g, tree)| {
                    b.iter(|| {
                        let metrics = Metrics::new();
                        std::hint::black_box(
                            preprocess::<Tropical>(g, tree, Algorithm::LeavesUp, &metrics)
                                .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
