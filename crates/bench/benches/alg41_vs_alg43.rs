//! E5 wall-clock: the two `E⁺` constructions on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use spsep_bench::families::Family;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;
use std::time::Duration;

fn bench_constructions(c: &mut Criterion) {
    let (g, tree) = Family::Grid2D.instance(4_000, 3);
    let mut group = c.benchmark_group("eplus_construction_grid2d_4k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("alg41_leaves_up", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            std::hint::black_box(
                preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap(),
            )
        })
    });
    group.bench_function("alg43_path_doubling", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            std::hint::black_box(
                preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics).unwrap(),
            )
        })
    });
    group.bench_function("alg44_shared_doubling", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            std::hint::black_box(
                preprocess::<Tropical>(&g, &tree, Algorithm::SharedDoubling, &metrics).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_constructions);
criterion_main!(benches);
