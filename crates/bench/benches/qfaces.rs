//! E10 wall-clock: the Section 6 hammock pipeline vs the direct pipeline
//! on a few-faces planar graph.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_planar::{generate_hammock_graph, HammockSP};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use std::time::Duration;

fn bench_qfaces(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let hg = generate_hammock_graph(6, 20, &mut rng);
    let sources: Vec<usize> = (0..8).map(|i| i * hg.graph.n() / 8).collect();

    let mut group = c.benchmark_group("qfaces_side6_ladder20");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("hammock_preprocess", |b| {
        b.iter(|| {
            let metrics = Metrics::new();
            std::hint::black_box(HammockSP::preprocess(&hg, &metrics))
        })
    });
    let metrics = Metrics::new();
    let sp = HammockSP::preprocess(&hg, &metrics);
    group.bench_function("hammock_queries", |b| {
        b.iter(|| std::hint::black_box(sp.distances_multi(&sources)))
    });
    let adj = hg.graph.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits::default());
    let pre = preprocess::<Tropical>(&hg.graph, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    group.bench_function("direct_queries", |b| {
        b.iter(|| std::hint::black_box(pre.distances_multi(&sources)))
    });
    group.finish();
}

criterion_group!(benches, bench_qfaces);
criterion_main!(benches);
