//! Hierarchical span tracing for the spsep pipeline.
//!
//! The pipeline's cost model (`spsep-pram`) answers *how much* work and
//! depth an algorithm charged; this crate answers *where the wall time
//! went*: every instrumented region opens a [`Span`] guard (usually via
//! the [`span!`] macro), and on drop the span records its label,
//! wall-clock interval, nesting depth, thread, and whatever op/byte
//! counts the region attributed to it.
//!
//! # Design constraints
//!
//! * **Zero-cost when disabled.** Tracing is off by default; [`span!`]
//!   reduces to one relaxed atomic load and constructs nothing — no
//!   label formatting, no buffer touch, no timestamp. The differential
//!   and kernel-bench hot paths therefore pay (sub-)nanoseconds per
//!   instrumented region.
//! * **Purely observational.** Spans never feed back into the
//!   computation; enabling tracing cannot change a single output bit at
//!   any thread count (pinned by the determinism suite).
//! * **Per-thread buffers.** Each thread owns a buffer registered once
//!   in a global registry; a finished span locks only its own thread's
//!   mutex (uncontended except during a drain), which is the
//!   "lock-free-ish" middle ground that needs no atomics in the span
//!   body itself.
//! * **Deterministic ordered log.** Every span draws a global sequence
//!   number at *enter*; [`drain`] merges all thread buffers and sorts by
//!   that sequence, so the exported order is a total order consistent
//!   with the enter order — stable under buffer-drain timing.
//!
//! # Exporters
//!
//! * [`render_tree`] — indented human-readable report for `--trace`;
//! * [`chrome::chrome_trace_json`] — Chrome trace-event JSON loadable in
//!   `chrome://tracing` and Perfetto, with executor telemetry joined in
//!   as metadata events ([`chrome::PoolMeta`]);
//! * [`chrome::validate_chrome_json`] — structural validator (required
//!   fields, strictly nested spans per thread) used by unit tests and
//!   the CI artifact job.

// Every public item must explain itself — the crate is the paper's
// reference implementation and doubles as its documentation.
#![warn(missing_docs)]

pub mod chrome;

pub use chrome::{chrome_trace_json, validate_chrome_json, PoolMeta, WorkerMeta};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span label, e.g. `"alg41.level"`.
    pub label: String,
    /// Space-separated `key=value` arguments captured at enter.
    pub args: String,
    /// Small dense thread id assigned by the tracer (0 = first tracing
    /// thread), stable for the life of the thread.
    pub tid: u32,
    /// Name of the owning thread (`"main"`, `"spsep-worker-3"`, …).
    pub thread_name: String,
    /// Global enter-order sequence number; the drain sort key.
    pub seq: u64,
    /// Nanoseconds since the trace epoch at enter.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on the owning thread at enter (0 = top level).
    pub depth: u32,
    /// Model ops attributed to this span by the instrumented region.
    pub ops: u64,
    /// Bytes (peak live, or moved — region-defined) attributed to it.
    pub bytes: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Lock that shrugs off poisoning: trace buffers hold plain data, and a
/// panicking instrumented region must not cascade into the tracer.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A registered per-thread buffer, shared between the owning thread
/// (pushes) and [`drain`] (takes).
struct ThreadBuf {
    name: String,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

fn registry() -> &'static Mutex<Vec<ThreadBuf>> {
    static REGISTRY: OnceLock<Mutex<Vec<ThreadBuf>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// This thread's handle into the registry.
struct Local {
    tid: u32,
    depth: u32,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let local = slot.get_or_insert_with(|| {
            let events = Arc::new(Mutex::new(Vec::new()));
            let mut reg = lock(registry());
            let tid = reg.len() as u32;
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_owned);
            reg.push(ThreadBuf {
                name,
                events: Arc::clone(&events),
            });
            Local {
                tid,
                depth: 0,
                events,
            }
        });
        f(local)
    })
}

/// Turn tracing on. Also pins the trace epoch so the first span does not
/// pay the `OnceLock` initialization inside its timed region.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turn tracing off. In-flight spans on other threads still record.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans currently record. One relaxed load — this is the whole
/// disabled-path cost of [`span!`].
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Take every finished span out of every thread buffer, sorted by the
/// global enter sequence (a deterministic total order per run).
pub fn drain() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let reg = lock(registry());
    for buf in reg.iter() {
        out.append(&mut lock(&buf.events));
    }
    drop(reg);
    out.sort_unstable_by_key(|e| e.seq);
    out
}

/// Discard all buffered spans (test isolation).
pub fn clear() {
    let reg = lock(registry());
    for buf in reg.iter() {
        lock(&buf.events).clear();
    }
}

/// An open span. Created inert (a no-op) when tracing is disabled;
/// otherwise records a [`TraceEvent`] on drop.
///
/// Spans are strictly scoped guards, so on any single thread they form a
/// properly nested forest — the invariant the Chrome exporter's
/// validator checks.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    label: String,
    args: String,
    seq: u64,
    start_ns: u64,
    depth: u32,
    ops: u64,
    bytes: u64,
}

impl Span {
    /// An inert span: nothing is recorded. What [`span!`] produces when
    /// tracing is disabled.
    #[inline]
    pub fn inert() -> Span {
        Span(None)
    }

    /// Open a recording span. Prefer [`span!`], which skips label/args
    /// construction entirely when tracing is disabled.
    pub fn enter_active(label: String, args: String) -> Span {
        let depth = with_local(|l| {
            let d = l.depth;
            l.depth += 1;
            d
        });
        Span(Some(ActiveSpan {
            label,
            args,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            start_ns: now_ns(),
            depth,
            ops: 0,
            bytes: 0,
        }))
    }

    /// Attribute `n` model ops to this span (no-op when inert).
    #[inline]
    pub fn add_ops(&mut self, n: u64) {
        if let Some(a) = &mut self.0 {
            a.ops += n;
        }
    }

    /// Attribute `n` bytes to this span (no-op when inert). Repeated
    /// calls keep the maximum — the common use is peak-live tracking.
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        if let Some(a) = &mut self.0 {
            a.bytes = a.bytes.max(n);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_ns = now_ns().saturating_sub(a.start_ns);
        with_local(|l| {
            l.depth = l.depth.saturating_sub(1);
            lock(&l.events).push(TraceEvent {
                label: a.label,
                args: a.args,
                tid: l.tid,
                thread_name: String::new(), // filled at drain-export time
                seq: a.seq,
                start_ns: a.start_ns,
                dur_ns,
                depth: a.depth,
                ops: a.ops,
                bytes: a.bytes,
            });
        });
    }
}

/// Thread names by tid, for exporters (index = tid).
pub fn thread_names() -> Vec<String> {
    lock(registry()).iter().map(|b| b.name.clone()).collect()
}

/// Open a span when tracing is enabled; a no-op otherwise.
///
/// ```
/// let mut span = spsep_trace::span!("alg41.level", level = 3, width = 8);
/// // ... do the work ...
/// span.add_ops(1234);
/// drop(span);
/// ```
///
/// With tracing disabled the expansion is a single relaxed atomic load:
/// the label string and the argument formatting are never evaluated.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        if $crate::is_enabled() {
            $crate::Span::enter_active(::std::string::String::from($label), ::std::string::String::new())
        } else {
            $crate::Span::inert()
        }
    };
    ($label:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::is_enabled() {
            let mut __args = ::std::string::String::new();
            $(
                {
                    use ::std::fmt::Write as _;
                    let _ = ::core::write!(__args, "{}={} ", stringify!($k), $v);
                }
            )+
            let __args = __args.trim_end().to_owned();
            $crate::Span::enter_active(::std::string::String::from($label), __args)
        } else {
            $crate::Span::inert()
        }
    };
}

/// Render the drained events as an indented per-thread tree — the human
/// `--trace` report. Events must come from [`drain`] (sorted by `seq`).
pub fn render_tree(events: &[TraceEvent]) -> String {
    let names = thread_names();
    let mut out = String::new();
    let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let name = names
            .get(tid as usize)
            .map_or("?", String::as_str);
        out.push_str(&format!("tid {tid} ({name})\n"));
        for e in events.iter().filter(|e| e.tid == tid) {
            let indent = "  ".repeat(e.depth as usize + 1);
            out.push_str(&format!(
                "{indent}{label}{sep}{args}  {ms:.3} ms",
                label = e.label,
                sep = if e.args.is_empty() { "" } else { " " },
                args = e.args,
                ms = e.dur_ns as f64 / 1e6,
            ));
            if e.ops > 0 {
                out.push_str(&format!("  ops={}", e.ops));
            }
            if e.bytes > 0 {
                out.push_str(&format!("  bytes={}", e.bytes));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is global; tests that enable/drain must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        lock(&GATE)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        disable();
        clear();
        {
            let mut s = span!("quiet", x = 1);
            s.add_ops(10);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_attribute_counts() {
        let _g = serial();
        enable();
        clear();
        {
            let mut outer = span!("outer", which = "o");
            {
                let mut inner = span!("inner");
                inner.add_ops(7);
                inner.add_bytes(100);
                inner.add_bytes(40); // max-keeps
            }
            outer.add_ops(3);
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 2);
        // Sorted by enter order: outer first.
        assert_eq!(events[0].label, "outer");
        assert_eq!(events[0].args, "which=o");
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[0].ops, 3);
        assert_eq!(events[1].label, "inner");
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[1].ops, 7);
        assert_eq!(events[1].bytes, 100);
        // Inner is contained in outer.
        assert!(events[1].start_ns >= events[0].start_ns);
        assert!(
            events[1].start_ns + events[1].dur_ns <= events[0].start_ns + events[0].dur_ns
        );
        // Same thread, and the registry knows its name.
        assert_eq!(events[0].tid, events[1].tid);
        assert!(thread_names().len() > events[0].tid as usize);
    }

    #[test]
    fn drain_merges_threads_in_enter_order() {
        let _g = serial();
        enable();
        clear();
        let _outer = {
            let s = span!("main.first");
            drop(s);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let s = span!("helper");
                    drop(s);
                });
            });
            span!("main.second")
        };
        drop(_outer);
        disable();
        let events = drain();
        assert_eq!(events.len(), 3);
        let labels: Vec<&str> = events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["main.first", "helper", "main.second"]);
        // Two distinct tids participated.
        let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 2);
        // Sequence numbers strictly increase.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn tree_report_shows_nesting_and_counts() {
        let _g = serial();
        enable();
        clear();
        {
            let mut outer = span!("phase", width = 4);
            outer.add_ops(11);
            let _inner = span!("kernel");
        }
        disable();
        let tree = render_tree(&drain());
        assert!(tree.contains("phase width=4"), "{tree}");
        assert!(tree.contains("ops=11"), "{tree}");
        // The inner span is indented one level deeper than the outer.
        let outer_indent = tree
            .lines()
            .find(|l| l.contains("phase"))
            .map(|l| l.len() - l.trim_start().len())
            .unwrap();
        let inner_indent = tree
            .lines()
            .find(|l| l.contains("kernel"))
            .map(|l| l.len() - l.trim_start().len())
            .unwrap();
        assert_eq!(inner_indent, outer_indent + 2, "{tree}");
    }
}
