//! Chrome trace-event JSON: exporter and structural validator.
//!
//! The export targets the [Trace Event Format] consumed by
//! `chrome://tracing` and Perfetto's legacy-JSON importer: one top-level
//! object with a `traceEvents` array of complete (`"ph": "X"`) events
//! carrying `name`/`ts`/`dur`/`pid`/`tid`, plus metadata (`"ph": "M"`)
//! events naming the process, each traced thread, and — joined in from
//! the executor — per-worker busy/task counters so span timelines can be
//! read against worker occupancy.
//!
//! Timestamps are microseconds (the format's unit), derived from the
//! tracer's integer-nanosecond clock; the validator therefore allows a
//! sub-nanosecond tolerance when it checks that spans on one thread are
//! strictly nested.
//!
//! The workspace has no serde, so the validator is a hand-rolled minimal
//! JSON parser (mirroring the `BENCH_kernels.json` pattern): enough to
//! re-read what the exporter writes and to reject structural drift in
//! CI.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::TraceEvent;

/// Executor telemetry snapshot joined into the export, shaped so this
/// crate needs no dependency on the executor: the caller (CLI, bench)
/// converts its `rayon::PoolStats` into this.
#[derive(Clone, Debug, Default)]
pub struct PoolMeta {
    /// Per-worker counters, in worker order.
    pub workers: Vec<WorkerMeta>,
    /// `join` second-closures stolen back by their caller.
    pub steal_backs: u64,
    /// Stale batch handles reclaimed by their caller.
    pub reclaimed_handles: u64,
    /// Maximum injector queue depth observed.
    pub max_queue_depth: u64,
}

/// One worker's counters.
#[derive(Clone, Debug, Default)]
pub struct WorkerMeta {
    /// Worker thread name (`spsep-worker-3`).
    pub name: String,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Tasks executed.
    pub tasks: u64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Serialize drained [`TraceEvent`]s (plus optional executor telemetry)
/// as Chrome trace-event JSON.
///
/// Span `args` (`k=v` pairs), `ops` and `bytes` land in each event's
/// `args` object; worker telemetry becomes `worker_stats` metadata
/// events on dedicated tids `10000 + i` so Perfetto shows them as their
/// own (empty) tracks with inspectable args.
pub fn chrome_trace_json(events: &[TraceEvent], pool: Option<&PoolMeta>) -> String {
    let names = crate::thread_names();
    let mut s = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let push = |line: String, s: &mut String, first: &mut bool| {
        if !*first {
            s.push_str(",\n");
        }
        *first = false;
        s.push_str(&line);
    };
    push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"spsep\"}}"
            .into(),
        &mut s,
        &mut first,
    );
    let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        let name = names.get(*tid as usize).map_or("?", String::as_str);
        push(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            ),
            &mut s,
            &mut first,
        );
    }
    for e in events {
        let mut args = format!("\"ops\": {}, \"bytes\": {}", e.ops, e.bytes);
        for kv in e.args.split(' ').filter(|kv| !kv.is_empty()) {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            args.push_str(&format!(", \"{}\": \"{}\"", escape(k), escape(v)));
        }
        push(
            format!(
                "{{\"name\": \"{}\", \"cat\": \"spsep\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \
                 \"args\": {{{args}}}}}",
                escape(&e.label),
                us(e.start_ns),
                us(e.dur_ns),
                e.tid,
            ),
            &mut s,
            &mut first,
        );
    }
    if let Some(pool) = pool {
        push(
            format!(
                "{{\"name\": \"pool_stats\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
                 \"args\": {{\"steal_backs\": {}, \"reclaimed_handles\": {}, \
                 \"max_queue_depth\": {}, \"workers\": {}}}}}",
                pool.steal_backs,
                pool.reclaimed_handles,
                pool.max_queue_depth,
                pool.workers.len(),
            ),
            &mut s,
            &mut first,
        );
        for (i, w) in pool.workers.iter().enumerate() {
            let tid = 10_000 + i;
            push(
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    escape(&w.name)
                ),
                &mut s,
                &mut first,
            );
            push(
                format!(
                    "{{\"name\": \"worker_stats\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"busy_ns\": {}, \"tasks\": {}}}}}",
                    w.busy_ns, w.tasks,
                ),
                &mut s,
                &mut first,
            );
        }
    }
    s.push_str("\n]\n}\n");
    s
}

// ---------------------------------------------------------------------
// Minimal JSON reader — enough to validate what the exporter writes.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            out.push(hex);
                            self.i += 4;
                        }
                        _ => return Err(format!("unsupported escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                    }
                }
            }
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(v)
}

fn field<'j>(obj: &'j [(String, Json)], key: &str) -> Result<&'j Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key `{key}`"))
}

/// Nesting tolerance in microseconds: timestamps are exact integer
/// nanoseconds rendered with three decimals, so anything beyond one
/// nanosecond of slack is a real violation.
const NEST_EPS_US: f64 = 2e-3;

/// Validate a Chrome trace-event JSON document structurally. Returns the
/// number of `"X"` (complete span) events.
///
/// Checks:
/// * top level is an object with a non-empty `traceEvents` array;
/// * every event has a non-empty string `name`, a known `ph`
///   (`X`/`M`/`C`/`B`/`E`/`I`), and numeric `pid`/`tid`;
/// * `X` events carry finite `ts ≥ 0` and `dur ≥ 0`;
/// * per `tid`, `X` events are **strictly nested**: any two spans are
///   disjoint or one contains the other (the guard-scoped span model).
pub fn validate_chrome_json(json: &str) -> Result<usize, String> {
    let Json::Obj(top) = parse_json(json)? else {
        return Err("top level must be an object".into());
    };
    let Json::Arr(events) = field(&top, "traceEvents")? else {
        return Err("`traceEvents` must be an array".into());
    };
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }
    // (tid, ts, dur) of every complete event.
    let mut spans: Vec<(i64, f64, f64)> = Vec::new();
    for (idx, e) in events.iter().enumerate() {
        let Json::Obj(e) = e else {
            return Err(format!("event {idx} is not an object"));
        };
        let ctx = |msg: &str| format!("event {idx}: {msg}");
        match field(e, "name").map_err(|m| ctx(&m))? {
            Json::Str(s) if !s.is_empty() => {}
            _ => return Err(ctx("`name` must be a non-empty string")),
        }
        let ph = match field(e, "ph").map_err(|m| ctx(&m))? {
            Json::Str(s) if ["X", "M", "C", "B", "E", "I"].contains(&s.as_str()) => s.clone(),
            other => return Err(ctx(&format!("unknown `ph` {other:?}"))),
        };
        let num = |key: &str| -> Result<f64, String> {
            match field(e, key).map_err(|m| ctx(&m))? {
                Json::Num(v) if v.is_finite() => Ok(*v),
                _ => Err(ctx(&format!("`{key}` must be a finite number"))),
            }
        };
        let tid = num("tid")?;
        num("pid")?;
        if ph == "X" {
            let ts = num("ts")?;
            let dur = num("dur")?;
            if ts < 0.0 || dur < 0.0 {
                return Err(ctx("`ts` and `dur` must be non-negative"));
            }
            spans.push((tid as i64, ts, dur));
        }
    }
    // Strict nesting per tid: sweep spans by (start, longest-first); a
    // span must fit inside whatever enclosing span is still open.
    spans.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.total_cmp(&b.1))
            .then(b.2.total_cmp(&a.2))
    });
    let mut open: Vec<f64> = Vec::new(); // stack of end timestamps
    let mut cur_tid = i64::MIN;
    for &(tid, ts, dur) in &spans {
        if tid != cur_tid {
            open.clear();
            cur_tid = tid;
        }
        while open.last().is_some_and(|&end| end <= ts + NEST_EPS_US) {
            open.pop();
        }
        if let Some(&end) = open.last() {
            if ts + dur > end + NEST_EPS_US {
                return Err(format!(
                    "tid {tid}: span [{ts}, {}] overlaps its enclosing span ending at {end} \
                     without being nested",
                    ts + dur
                ));
            }
        }
        open.push(ts + dur);
    }
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str, tid: u32, start_ns: u64, dur_ns: u64, depth: u32) -> TraceEvent {
        TraceEvent {
            label: label.into(),
            args: "k=v".into(),
            tid,
            thread_name: String::new(),
            seq: start_ns,
            start_ns,
            dur_ns,
            depth,
            ops: 5,
            bytes: 9,
        }
    }

    #[test]
    fn exporter_output_validates() {
        let events = vec![
            ev("outer", 0, 1000, 10_000, 0),
            ev("inner", 0, 2000, 3_000, 1),
            ev("other-thread", 3, 1500, 500, 0),
        ];
        let pool = PoolMeta {
            workers: vec![WorkerMeta {
                name: "spsep-worker-0".into(),
                busy_ns: 123,
                tasks: 4,
            }],
            steal_backs: 2,
            reclaimed_handles: 1,
            max_queue_depth: 7,
        };
        let json = chrome_trace_json(&events, Some(&pool));
        assert_eq!(validate_chrome_json(&json), Ok(3));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker_stats\""));
        assert!(json.contains("\"steal_backs\": 2"));
        assert!(json.contains("\"k\": \"v\""));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("").is_err());
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\": []}").is_err());
        // Missing ts on an X event.
        let bad = "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", \
                    \"pid\": 1, \"tid\": 0, \"dur\": 1}]}";
        assert!(validate_chrome_json(bad).is_err());
        // Unknown phase.
        let bad = "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"Q\", \
                    \"pid\": 1, \"tid\": 0}]}";
        assert!(validate_chrome_json(bad).is_err());
        // Empty name.
        let bad = "{\"traceEvents\": [{\"name\": \"\", \"ph\": \"M\", \
                    \"pid\": 1, \"tid\": 0}]}";
        assert!(validate_chrome_json(bad).is_err());
        // Truncated document.
        let json = chrome_trace_json(&[ev("x", 0, 0, 10, 0)], None);
        assert!(validate_chrome_json(&json[..json.len() / 2]).is_err());
    }

    #[test]
    fn validator_rejects_overlapping_non_nested_spans() {
        // [0, 10) and [5, 15) on one tid: overlap without containment.
        let bad = "{\"traceEvents\": [\
            {\"name\": \"a\", \"ph\": \"X\", \"ts\": 0, \"dur\": 10, \"pid\": 1, \"tid\": 0},\
            {\"name\": \"b\", \"ph\": \"X\", \"ts\": 5, \"dur\": 10, \"pid\": 1, \"tid\": 0}]}";
        assert!(validate_chrome_json(bad).is_err());
        // The same intervals on different tids are fine.
        let ok = "{\"traceEvents\": [\
            {\"name\": \"a\", \"ph\": \"X\", \"ts\": 0, \"dur\": 10, \"pid\": 1, \"tid\": 0},\
            {\"name\": \"b\", \"ph\": \"X\", \"ts\": 5, \"dur\": 10, \"pid\": 1, \"tid\": 1}]}";
        assert_eq!(validate_chrome_json(ok), Ok(2));
        // Proper nesting on one tid is fine.
        let ok = "{\"traceEvents\": [\
            {\"name\": \"a\", \"ph\": \"X\", \"ts\": 0, \"dur\": 10, \"pid\": 1, \"tid\": 0},\
            {\"name\": \"b\", \"ph\": \"X\", \"ts\": 2, \"dur\": 3, \"pid\": 1, \"tid\": 0}]}";
        assert_eq!(validate_chrome_json(ok), Ok(2));
    }

    #[test]
    fn labels_are_escaped() {
        let events = vec![ev("with \"quotes\" and \\slash", 0, 0, 5, 0)];
        let json = chrome_trace_json(&events, None);
        assert_eq!(validate_chrome_json(&json), Ok(1));
    }
}
