//! The wire-corruption catalog driven against a *live* daemon.
//!
//! Every [`wire_corruptions`] entry is sent over a real TCP connection
//! to a running daemon, under a watchdog: the daemon must react with a
//! typed error response or a clean close — never a panic, never a hung
//! connection — and must stay fully healthy for other clients
//! afterward. The suite finishes with the acceptance-bar chaos run:
//! 10k mixed requests with chaos injections enabled and every answer
//! verified bit-for-bit against direct `Oracle` calls, at 1, 2, 4, and
//! 8 workers.

use rand::SeedableRng;
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{
    load, Client, LoadConfig, Request, Response, ServeConfig, Server, WireError,
};
use spsep_testkit::{wire_corruptions, WireExpectation};
use std::net::SocketAddr;
use std::panic::resume_unwind;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

/// Generous bound for CI under load; a pass takes well under a second
/// per corruption.
const WATCHDOG: Duration = Duration::from_secs(120);

fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("sender dropped without a panic"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("watchdog: '{name}' exceeded {WATCHDOG:?} — hung connection or deadlock")
        }
    }
}

fn grid_oracle(dims: [usize; 2], seed: u64) -> Arc<Oracle> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    Arc::new(Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new()).unwrap())
}

/// Spawn a daemon; returns its address and a closure that shuts it
/// down and returns the final stats.
fn spawn_daemon(
    oracle: Arc<Oracle>,
    workers: usize,
) -> (SocketAddr, impl FnOnce() -> spsep_serve::WireStats) {
    let server = Server::bind(
        oracle,
        ServeConfig {
            workers,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.run().unwrap());
    });
    let stop = move || {
        handle.shutdown();
        rx.recv_timeout(Duration::from_secs(30))
            .expect("daemon did not shut down within 30s")
    };
    (addr, stop)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Duration::from_secs(5)).expect("connect to live daemon")
}

/// Drain responses after a corruption until the daemon closes the
/// connection (or a few frames arrive), asserting every decoded frame
/// is well-formed. Returns the decoded responses.
fn drain_responses(client: &mut Client, name: &str) -> Vec<Response> {
    let mut out = Vec::new();
    for _ in 0..4 {
        match client.read_response_or_close() {
            Ok(Some(resp)) => out.push(resp),
            Ok(None) => break,       // clean close
            Err(_) => break,         // daemon closed mid-read: acceptable
        }
    }
    for resp in &out {
        assert!(
            matches!(resp, Response::Error { .. } | Response::Pong),
            "'{name}': unexpected response {resp:?}"
        );
    }
    out
}

#[test]
fn every_wire_corruption_yields_a_typed_error_or_clean_close() {
    let oracle = grid_oracle([6, 6], 90);
    let (addr, stop) = spawn_daemon(Arc::clone(&oracle), 2);
    for corruption in wire_corruptions() {
        let name = corruption.name;
        with_watchdog(name, move || {
            let mut client = connect(addr);
            client.send_raw(&(corruption.bytes)()).expect(name);
            if corruption.disconnect_after {
                let _ = client.shutdown_write();
            }
            match corruption.expect {
                WireExpectation::TypedErrorKeepsConnection => {
                    // Exactly one typed Parse error, and the same
                    // connection must still serve afterward.
                    match client.read_response().expect(name) {
                        Response::Error {
                            code: WireError::Parse,
                            ..
                        } => {}
                        other => panic!("'{name}': expected a Parse error, got {other:?}"),
                    }
                    assert_eq!(
                        client.request(&Request::Ping).expect(name),
                        Response::Pong,
                        "'{name}': connection did not survive a payload-level error"
                    );
                }
                WireExpectation::TypedErrorOrClose => {
                    let responses = drain_responses(&mut client, name);
                    for resp in &responses {
                        assert!(
                            matches!(resp, Response::Error { .. }),
                            "'{name}': non-error response {resp:?}"
                        );
                    }
                }
                WireExpectation::AnswerThenTypedErrorOrClose => {
                    let responses = drain_responses(&mut client, name);
                    assert_eq!(
                        responses.first(),
                        Some(&Response::Pong),
                        "'{name}': pipelined valid request was not answered first: {responses:?}"
                    );
                    for resp in &responses[1..] {
                        assert!(
                            matches!(resp, Response::Error { .. }),
                            "'{name}': non-error response after the answer {resp:?}"
                        );
                    }
                }
            }
        });
        // The daemon as a whole stays healthy after every entry: a
        // fresh connection gets a correct answer.
        let metrics = Metrics::new();
        let want = oracle.distance(0, 5, &metrics).unwrap();
        let mut probe = connect(addr);
        match probe
            .request(&Request::Point {
                source: 0,
                target: 5,
            })
            .unwrap_or_else(|e| panic!("'{name}': daemon unhealthy after corruption: {e}"))
        {
            Response::Dist(d) => assert_eq!(d.to_bits(), want.to_bits(), "'{name}'"),
            other => panic!("'{name}': wrong response {other:?}"),
        }
    }
    let stats = stop();
    assert!(
        stats.errors[WireError::Parse as usize - 1] > 0,
        "no Parse errors were charged across the catalog: {stats:?}"
    );
}

/// The acceptance bar: 10k-request mixed load with chaos injections,
/// answers verified bit-for-bit against the oracle, at every worker
/// count. Zero panics and zero hangs are enforced by the daemon
/// thread's `unwrap` and the watchdog; typed-only errors by the
/// report's taxonomy.
#[test]
fn chaos_load_of_10k_requests_stays_typed_and_bit_identical() {
    let oracle = grid_oracle([7, 6], 91);
    let n = oracle.n();
    for workers in [1usize, 2, 4, 8] {
        let (addr, stop) = spawn_daemon(Arc::clone(&oracle), workers);
        let oracle = Arc::clone(&oracle);
        let report = with_watchdog("chaos-load", move || {
            let config = LoadConfig {
                addr: addr.to_string(),
                // 2500 requests per worker count → 10k across the test.
                rate: 2500.0,
                duration: Duration::from_secs(1),
                connections: 4,
                n,
                zipf_theta: 0.9,
                chaos: 0.05,
                seed: 0xc4a05 + workers as u64,
                verify: Some(oracle),
                ..LoadConfig::default()
            };
            load::run_load(&config).expect("daemon reachable")
        });
        assert_eq!(report.scheduled, 2500, "workers={workers}");
        assert!(report.chaos_sent > 0, "workers={workers}: chaos never fired");
        assert_eq!(
            report.chaos_handled, report.chaos_sent,
            "workers={workers}: unhandled chaos injections: {:?}",
            report.errors
        );
        assert_eq!(
            *report.errors.get("verify_mismatch").unwrap_or(&0),
            0,
            "workers={workers}: answers diverged from direct Oracle calls"
        );
        assert_eq!(
            *report.errors.get("chaos_unhandled").unwrap_or(&0),
            0,
            "workers={workers}"
        );
        // Healthy requests overwhelmingly succeed; the only tolerated
        // error classes are transport blips from chaos neighbors.
        assert!(
            report.ok as f64 >= (report.scheduled - report.chaos_sent) as f64 * 0.95,
            "workers={workers}: only {}/{} ok ({:?})",
            report.ok,
            report.scheduled - report.chaos_sent,
            report.errors
        );
        let stats = stop();
        assert!(stats.served > 0, "workers={workers}");
        assert!(
            stats.workers == workers as u32,
            "workers={workers}: daemon reports {}",
            stats.workers
        );
    }
}
