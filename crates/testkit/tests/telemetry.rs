//! The telemetry plane driven against a *live* daemon.
//!
//! DESIGN.md §14's acceptance bar, as integration tests: a daemon
//! under chaos load must serve a Prometheus exposition that passes the
//! strict validator over both transports (the wire `Metrics` opcode
//! and plain-HTTP `GET /metrics`), with counters that only ever move
//! forward; forced slow and erroring requests must each produce a
//! flight-recorder dump containing the trigger; histogram-derived
//! percentiles must sit within one log-bucket width of the exact
//! nearest-rank value; and turning telemetry on must not change a
//! single answer bit at any worker count.

use rand::{Rng, SeedableRng};
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{
    run_load, Client, LoadConfig, Request, Response, ServeConfig, Server, ServerHandle,
};
use spsep_telemetry::{counter_samples, validate_prometheus_text, DumpReason, Histogram};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn grid_oracle(dims: [usize; 2], seed: u64) -> Arc<Oracle> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    Arc::new(Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new()).unwrap())
}

/// Spawn a daemon with the given telemetry config; returns the query
/// address, the optional metrics side-port address, the handle, and a
/// closure that drains it.
fn spawn_daemon(
    oracle: Arc<Oracle>,
    config: ServeConfig,
) -> (
    SocketAddr,
    Option<SocketAddr>,
    ServerHandle,
    impl FnOnce() -> spsep_serve::WireStats,
) {
    let server = Server::bind(oracle, config).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics_addr = server.metrics_addr();
    let handle = server.handle();
    let shutdown = handle.clone();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.run().unwrap());
    });
    (addr, metrics_addr, handle, move || {
        shutdown.shutdown();
        rx.recv_timeout(Duration::from_secs(120))
            .expect("daemon did not drain")
    })
}

fn scrape_wire(addr: SocketAddr) -> String {
    let mut client = Client::connect(addr.to_string(), Duration::from_secs(5)).unwrap();
    match client.request(&Request::Metrics).unwrap() {
        Response::Metrics(text) => text,
        other => panic!("Metrics answered with {other:?}"),
    }
}

fn scrape_http(addr: SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "GET /metrics answered: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .expect("HTTP response has a body")
}

/// Chaos load against a telemetry-on daemon: both transports must
/// serve a validator-clean exposition, counters must be monotone
/// across scrapes, and the served counter must cover the harness view.
#[test]
fn chaos_load_scrape_stays_valid_and_monotone() {
    let oracle = grid_oracle([8, 8], 141);
    let (addr, metrics_addr, _handle, drain) = spawn_daemon(
        Arc::clone(&oracle),
        ServeConfig {
            workers: 4,
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    );
    let metrics_addr = metrics_addr.expect("side port bound");

    let before_text = scrape_wire(addr);
    validate_prometheus_text(&before_text).expect("pre-load exposition is valid");
    let before = counter_samples(&before_text).unwrap();

    let report = run_load(&LoadConfig {
        addr: addr.to_string(),
        rate: 600.0,
        duration: Duration::from_millis(400),
        connections: 4,
        n: oracle.n(),
        zipf_theta: 0.9,
        chaos: 0.05,
        seed: 0x7e1,
        verify: Some(Arc::clone(&oracle)),
        ..LoadConfig::default()
    })
    .unwrap();
    assert_eq!(report.chaos_handled, report.chaos_sent, "{:?}", report.errors);
    assert_eq!(*report.errors.get("verify_mismatch").unwrap_or(&0), 0);

    let wire_text = scrape_wire(addr);
    let http_text = scrape_http(metrics_addr);
    validate_prometheus_text(&wire_text).expect("wire exposition is valid");
    validate_prometheus_text(&http_text).expect("HTTP exposition is valid");

    let after = counter_samples(&wire_text).unwrap();
    for (id, v0) in &before {
        let v1 = after.get(id).copied().unwrap_or_else(|| {
            panic!("counter {id} disappeared between scrapes")
        });
        assert!(v1 >= *v0, "counter {id} moved backwards: {v0} -> {v1}");
    }
    let served = after.get("spsep_served_total").copied().unwrap_or(0.0);
    assert!(
        served >= report.ok as f64,
        "daemon served {served} but the harness saw {} succeed",
        report.ok
    );
    // The HTTP scrape is later than the wire scrape, so it must agree
    // or be ahead on every shared counter.
    let http = counter_samples(&http_text).unwrap();
    for (id, v1) in &after {
        if let Some(v2) = http.get(id) {
            assert!(v2 >= v1, "counter {id} regressed across transports");
        }
    }
    drain();
}

/// `slow_us = 0` marks every request slow: the flight recorder must
/// capture a dump whose window contains the trigger record.
#[test]
fn forced_slow_query_produces_a_flight_dump() {
    let oracle = grid_oracle([6, 6], 142);
    let (addr, _, handle, drain) = spawn_daemon(
        oracle,
        ServeConfig {
            workers: 2,
            slow_us: Some(0),
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(addr.to_string(), Duration::from_secs(5)).unwrap();
    for v in 1..5u64 {
        let resp = client
            .request(&Request::Point { source: 0, target: v })
            .unwrap();
        assert!(matches!(resp, Response::Dist(_)), "{resp:?}");
    }
    drop(client);
    let dumps = handle.flight_dumps();
    assert!(!dumps.is_empty(), "no dump despite slow_us = 0");
    for dump in &dumps {
        assert_eq!(dump.reason, DumpReason::Slow);
        assert!(
            dump.records.iter().any(|r| r.seq == dump.trigger_seq),
            "window is missing its own trigger (seq {})",
            dump.trigger_seq
        );
        let windows: Vec<u64> = dump.records.iter().map(|r| r.seq).collect();
        let mut sorted = windows.clone();
        sorted.sort_unstable();
        assert_eq!(windows, sorted, "dump window is not seq-ordered");
    }
    drain();
}

/// An erroring request triggers a dump labelled with the wire-error
/// taxonomy, and the rendered dump names it.
#[test]
fn erroring_query_produces_a_labelled_flight_dump() {
    let oracle = grid_oracle([6, 6], 143);
    let n = oracle.n() as u64;
    let (addr, _, handle, drain) = spawn_daemon(
        oracle,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(addr.to_string(), Duration::from_secs(5)).unwrap();
    // A healthy request first, so the window has context.
    let _ = client.request(&Request::Point { source: 0, target: 1 }).unwrap();
    let resp = client
        .request(&Request::Point { source: n + 7, target: 0 })
        .unwrap();
    assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
    drop(client);
    let dumps = handle.flight_dumps();
    assert_eq!(dumps.len(), 1, "exactly the erroring request triggers");
    let dump = &dumps[0];
    assert_eq!(dump.reason, DumpReason::Error);
    let trigger = dump
        .records
        .iter()
        .find(|r| r.seq == dump.trigger_seq)
        .expect("trigger record present");
    assert_eq!(trigger.error.as_deref(), Some("invalid_query"));
    let rendered = spsep_telemetry::render_dump(dump);
    assert!(rendered.contains("invalid_query"), "{rendered}");
    drain();
}

/// Histogram quantiles must land within one log-bucket width
/// (≤ 3.125% relative) of the exact nearest-rank value over a
/// latency-shaped sample set.
#[test]
fn histogram_quantiles_sit_within_one_bucket_of_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(144);
    let hist = Histogram::new();
    let mut exact: Vec<u64> = Vec::with_capacity(20_000);
    for _ in 0..20_000 {
        // Log-uniform over [1µs, 100ms) in ns — spans 17 octaves, the
        // shape real service times take.
        let exp = rng.gen_range(0.0..5.0);
        let v = (1_000.0 * 10f64.powf(exp)) as u64;
        hist.record(v);
        exact.push(v);
    }
    exact.sort_unstable();
    let snap = hist.snapshot();
    for q in [0.5, 0.9, 0.99, 0.999] {
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len()) - 1;
        let truth = exact[rank] as f64;
        let got = snap.quantile(q) as f64;
        let rel = (got - truth).abs() / truth;
        assert!(
            rel <= 0.04,
            "q{q}: histogram said {got}, exact nearest-rank is {truth} \
             ({:.2}% off; bucket width is 3.125%)",
            rel * 100.0
        );
    }
}

/// Telemetry must be observational: the same queries at 1/2/4/8
/// workers, telemetry and flight recorder fully on, return answers
/// bit-identical to direct `Oracle` calls.
#[test]
fn answers_are_bit_identical_across_workers_with_telemetry_on() {
    let oracle = grid_oracle([8, 8], 145);
    let n = oracle.n();
    let mut rng = rand::rngs::StdRng::seed_from_u64(146);
    let pairs: Vec<(u64, u64)> = (0..64)
        .map(|_| (rng.gen_range(0..n) as u64, rng.gen_range(0..n) as u64))
        .collect();
    let metrics = Metrics::new();
    let expected: Vec<u64> = pairs
        .iter()
        .map(|&(u, v)| {
            oracle
                .distance(u as usize, v as usize, &metrics)
                .unwrap()
                .to_bits()
        })
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let (addr, metrics_addr, _handle, drain) = spawn_daemon(
            Arc::clone(&oracle),
            ServeConfig {
                workers,
                metrics_addr: Some("127.0.0.1:0".into()),
                slow_us: Some(0),
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(addr.to_string(), Duration::from_secs(5)).unwrap();
        let got: Vec<u64> = pairs
            .iter()
            .map(|&(source, target)| {
                match client.request(&Request::Point { source, target }).unwrap() {
                    Response::Dist(d) => d.to_bits(),
                    other => panic!("workers={workers}: {other:?}"),
                }
            })
            .collect();
        assert_eq!(
            got, expected,
            "workers={workers}: telemetry changed an answer bit"
        );
        validate_prometheus_text(&scrape_http(metrics_addr.unwrap())).unwrap();
        drop(client);
        drain();
    }
}
