//! The CSR-core differential suite.
//!
//! Contracts under test:
//!
//! 1. **Pinned answer digests** — for every family × algorithm the
//!    distance rows from four probe sources hash (FNV-1a over the raw
//!    `f64` bit patterns) to a digest pinned in this file, and the same
//!    digest is produced at 1, 2, 4, and 8 threads. The digests were
//!    recorded from the flat-CSR implementation; any future layout
//!    change that perturbs even one output bit fails loudly here.
//!    Reachability closures get the same treatment per family.
//! 2. **Dijkstra agreement** — the digested rows are not merely stable
//!    but correct: every entry is cross-checked against the Dijkstra
//!    oracle before its digest is compared.
//! 3. **CSR construction properties** — for random edge lists,
//!    `DiGraph::from_edges → from_csr_parts` is a fixed point, and
//!    every structural lie (shifted offsets, swapped adjacency
//!    sections, out-of-range ids) yields a typed error, never a panic.
//! 4. **NodeOrder properties** — for random permutations,
//!    permute ∘ invert = id, `node(rank(v)) = v`, and `permute_graph`
//!    preserves per-vertex degrees (under relabeling) and total degree
//!    sums.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::with_max_threads;
use spsep_baselines::dijkstra;
use spsep_bench::families::Family;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::bytes::fnv1a64;
use spsep_graph::semiring::Tropical;
use spsep_graph::{DiGraph, Edge, NodeOrder, Store};
use spsep_pram::Metrics;
use spsep_separator::SepTree;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const N_TARGET: usize = 240;
const SEED: u64 = 7;

/// Pinned FNV-1a digests of the probe distance rows, one per
/// family × algorithm. Recorded from the flat-CSR implementation at
/// `N_TARGET = 240`, `SEED = 7`; every thread count must reproduce
/// them bit for bit.
const DISTANCE_DIGESTS: &[(&str, u64)] = &[
    ("grid2d/LeavesUp", 0x861a414061fb7b20),
    ("grid2d/PathDoubling", 0x59102dd3378fa9a4),
    ("grid2d/SharedDoubling", 0x59102dd3378fa9a4),
    ("grid3d/LeavesUp", 0x3bc837c8297c3b57),
    ("grid3d/PathDoubling", 0xa6e2c43680983467),
    ("grid3d/SharedDoubling", 0xa6e2c43680983467),
    ("tree/LeavesUp", 0x360f5afbbbc9e55e),
    ("tree/PathDoubling", 0x360f5afbbbc9e55e),
    ("tree/SharedDoubling", 0x360f5afbbbc9e55e),
    ("ktree/LeavesUp", 0xe8eefbde0bac3864),
    ("ktree/PathDoubling", 0xe8eefbde0bac3864),
    ("ktree/SharedDoubling", 0xe8eefbde0bac3864),
    ("planar/LeavesUp", 0x7e7367c980f655b5),
    ("planar/PathDoubling", 0xdb56a42acf5a6506),
    ("planar/SharedDoubling", 0x0f2cacbdba33f7ec),
];

/// Pinned digests of the full transitive-closure bit matrices.
const CLOSURE_DIGESTS: &[(&str, u64)] = &[
    ("grid2d", 0x831883b55e1beed9),
    ("grid3d", 0xc3269849fd7fa39d),
    ("tree", 0xde171aa523966fd5),
    ("ktree", 0x8df9eeab5598a56b),
    ("planar", 0x831883b55e1beed9),
];

fn pinned(table: &[(&str, u64)], key: &str) -> u64 {
    table
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("no pinned digest for {key}"))
        .1
}

fn probes(n: usize) -> [usize; 4] {
    [0, n / 3, n / 2, n - 1]
}

fn digest_rows(rows: &[Vec<f64>]) -> u64 {
    let mut bytes = Vec::with_capacity(rows.iter().map(|r| 8 * (r.len() + 1)).sum());
    for row in rows {
        bytes.extend_from_slice(&(row.len() as u64).to_le_bytes());
        for &v in row {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

fn distance_rows(g: &DiGraph<f64>, tree: &SepTree, algo: Algorithm, threads: usize) -> Vec<Vec<f64>> {
    with_max_threads(threads, || {
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(g, tree, algo, &metrics)
            .unwrap_or_else(|e| panic!("preprocess at {threads} threads: {e}"));
        pre.distances_multi(&probes(g.n()))
    })
}

#[test]
fn distance_digests_are_pinned_across_families_algorithms_and_threads() {
    let algos = [
        (Algorithm::LeavesUp, "LeavesUp"),
        (Algorithm::PathDoubling, "PathDoubling"),
        (Algorithm::SharedDoubling, "SharedDoubling"),
    ];
    for family in Family::all() {
        let (g, tree) = family.instance(N_TARGET, SEED);
        for (algo, algo_name) in algos {
            let key = format!("{}/{algo_name}", family.slug());
            let reference = distance_rows(&g, &tree, algo, 1);

            // Correctness first: every digested row agrees with Dijkstra.
            for (&s, row) in probes(g.n()).iter().zip(&reference) {
                let oracle = dijkstra(&g, s).dist;
                for v in 0..g.n() {
                    assert!(
                        (row[v] - oracle[v]).abs() < 1e-9
                            || (row[v].is_infinite() && oracle[v].is_infinite()),
                        "{key}: source {s} vertex {v}: got {} oracle {}",
                        row[v],
                        oracle[v]
                    );
                }
            }

            if std::env::var_os("SPSEP_PRINT_DIGESTS").is_some() {
                eprintln!("    (\"{key}\", {:#018x}),", digest_rows(&reference));
                continue;
            }
            let want = pinned(DISTANCE_DIGESTS, &key);
            assert_eq!(
                digest_rows(&reference),
                want,
                "{key}: digest drifted from the pinned answer \
                 (got {:#018x})",
                digest_rows(&reference)
            );
            for threads in &THREAD_COUNTS[1..] {
                let got = distance_rows(&g, &tree, algo, *threads);
                assert_eq!(
                    digest_rows(&got),
                    want,
                    "{key} at {threads} threads: output bits drifted"
                );
            }
        }
    }
}

#[test]
fn reachability_digests_are_pinned_across_families_and_threads() {
    for family in Family::all() {
        let (g, tree) = family.instance(N_TARGET, SEED);
        let gb = g.map_weights(|_| true);
        let digest_at = |threads: usize| -> u64 {
            with_max_threads(threads, || {
                let metrics = Metrics::new();
                let pre = spsep_core::reach::preprocess_reach(&gb, &tree, &metrics);
                let closure = spsep_core::reach::transitive_closure(&pre);
                let mut bytes = Vec::new();
                bytes.extend_from_slice(&(closure.rows() as u64).to_le_bytes());
                for r in 0..closure.rows() {
                    for &word in closure.row(r) {
                        bytes.extend_from_slice(&word.to_le_bytes());
                    }
                }
                fnv1a64(&bytes)
            })
        };
        let reference = digest_at(1);
        if std::env::var_os("SPSEP_PRINT_DIGESTS").is_some() {
            eprintln!("    (\"{}\", {reference:#018x}),", family.slug());
            continue;
        }
        let want = pinned(CLOSURE_DIGESTS, family.slug());
        assert_eq!(
            reference,
            want,
            "{}: closure digest drifted (got {reference:#018x})",
            family.label()
        );
        for threads in &THREAD_COUNTS[1..] {
            assert_eq!(
                digest_at(*threads),
                want,
                "{} closure at {threads} threads",
                family.label()
            );
        }
    }
}

/// Random edge list on `n` vertices (parallel edges and self-loops
/// allowed — the CSR makes no simplicity assumption).
fn random_edges(n: usize, m: usize, seed: u64) -> Vec<Edge<f64>> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            Edge::new(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(0.0..10.0),
            )
        })
        .collect()
}

type CsrParts = (
    Store<Edge<f64>>,
    Store<u32>,
    Store<u32>,
    Store<u32>,
    Store<u32>,
);

fn csr_parts(g: &DiGraph<f64>) -> CsrParts {
    (
        g.edges().to_vec().into(),
        g.first_out().to_vec().into(),
        g.out_adjacency().to_vec().into(),
        g.first_in().to_vec().into(),
        g.in_adjacency().to_vec().into(),
    )
}

fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut node: Vec<u32> = (0..n as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    node.shuffle(&mut rng);
    node
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `from_edges → take CSR parts → from_csr_parts` is a fixed point:
    /// the reconstituted graph is structurally identical.
    #[test]
    fn csr_parts_roundtrip_is_a_fixed_point(
        n in 1usize..60,
        m in 0usize..240,
        seed in 0u64..1_000_000,
    ) {
        let g = DiGraph::from_edges(n, random_edges(n, m, seed));
        let (edges, oo, oa, io, ia) = csr_parts(&g);
        let back = DiGraph::from_csr_parts(n, edges, oo, oa, io, ia)
            .expect("parts taken from a valid graph must validate");
        prop_assert_eq!(g.n(), back.n());
        prop_assert_eq!(g.m(), back.m());
        prop_assert_eq!(g.first_out(), back.first_out());
        prop_assert_eq!(g.out_adjacency(), back.out_adjacency());
        prop_assert_eq!(g.first_in(), back.first_in());
        prop_assert_eq!(g.in_adjacency(), back.in_adjacency());
        for (a, b) in g.edges().iter().zip(back.edges()) {
            prop_assert_eq!(a.from, b.from);
            prop_assert_eq!(a.to, b.to);
            prop_assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
    }

    /// Structural lies in the CSR parts are typed errors, never panics
    /// or silently accepted garbage.
    #[test]
    fn csr_parts_validation_rejects_structural_lies(
        n in 2usize..40,
        m in 1usize..120,
        seed in 0u64..1_000_000,
    ) {
        let g = DiGraph::from_edges(n, random_edges(n, m, seed));

        // Offset array shifted by one: no longer starts at 0.
        {
            let (edges, oo, oa, io, ia) = csr_parts(&g);
            let mut off = oo.to_vec();
            off[0] = off[0].wrapping_add(1);
            prop_assert!(DiGraph::from_csr_parts(n, edges, off.into(), oa, io, ia).is_err());
        }
        // Out and in adjacency sections swapped. (Symmetric rows can
        // make the swap a genuine no-op — e.g. every edge `u→v` paired
        // with `v→u` in matching row positions — so only assert when
        // the sections differ *and* the offset geometry still lines
        // up; otherwise validation is free to pass.)
        {
            let (edges, oo, oa, io, ia) = csr_parts(&g);
            if g.first_out() == g.first_in() && oa.to_vec() != ia.to_vec() {
                prop_assert!(DiGraph::from_csr_parts(n, edges, oo, ia, io, oa).is_err());
            }
        }
        // An adjacency id out of range.
        {
            let (edges, oo, oa, io, ia) = csr_parts(&g);
            let mut adj = oa.to_vec();
            adj[0] = m as u32;
            prop_assert!(DiGraph::from_csr_parts(n, edges, oo, adj.into(), io, ia).is_err());
        }
        // An edge endpoint out of range.
        {
            let (edges, oo, oa, io, ia) = csr_parts(&g);
            let mut bad = edges.to_vec();
            bad[0].to = n as u32;
            prop_assert!(
                DiGraph::from_csr_parts(n, bad.into(), oo, oa, io, ia).is_err()
            );
        }
        // A truncated offset array (wrong length).
        {
            let (edges, oo, oa, io, ia) = csr_parts(&g);
            let short = oo.to_vec()[..n].to_vec();
            prop_assert!(
                DiGraph::from_csr_parts(n, edges, short.into(), oa, io, ia).is_err()
            );
        }
    }

    /// permute ∘ invert = id, in both directions, and rank/node are
    /// mutually inverse lookups.
    #[test]
    fn node_order_permute_and_invert_compose_to_identity(
        n in 1usize..200,
        seed in 0u64..1_000_000,
    ) {
        let order = NodeOrder::from_sequence(random_permutation(n, seed))
            .expect("a shuffled 0..n is a valid permutation");
        let inv = order.inverse();
        for v in 0..n as u32 {
            prop_assert_eq!(order.node(order.rank(v)), v);
            prop_assert_eq!(order.rank(order.node(v)), v);
            // The inverse swaps the two lookup directions.
            prop_assert_eq!(inv.rank(v), order.node(v));
            prop_assert_eq!(inv.node(v), order.rank(v));
        }
        prop_assert_eq!(inv.inverse().ranks(), order.ranks());
        prop_assert_eq!(inv.inverse().nodes(), order.nodes());
    }

    /// `permute_graph` relabels without loss: degrees carry over under
    /// the rank map, degree sums are preserved, and permuting by the
    /// inverse order restores the original structure.
    #[test]
    fn permute_graph_preserves_degrees_and_inverts(
        n in 1usize..50,
        m in 0usize..150,
        seed in 0u64..1_000_000,
    ) {
        let g = DiGraph::from_edges(n, random_edges(n, m, seed));
        let order = NodeOrder::from_sequence(random_permutation(n, seed ^ 0x9e3779b97f4a7c15))
            .expect("valid permutation");
        let h = order.permute_graph(&g);
        prop_assert_eq!(h.n(), g.n());
        prop_assert_eq!(h.m(), g.m());

        // Degree preservation under relabeling, hence equal sums.
        let mut out_sum = 0usize;
        for v in 0..n {
            let r = order.rank(v as u32) as usize;
            prop_assert_eq!(g.out_degree(v), h.out_degree(r), "out-degree of {}", v);
            prop_assert_eq!(g.in_degree(v), h.in_degree(r), "in-degree of {}", v);
            out_sum += h.out_degree(v);
        }
        prop_assert_eq!(out_sum, m);

        // Round trip through the inverse: multisets of (from, to, w)
        // triples must match the original exactly.
        let back = order.inverse().permute_graph(&h);
        let key = |g: &DiGraph<f64>| {
            let mut v: Vec<(u32, u32, u64)> = g
                .edges()
                .iter()
                .map(|e| (e.from, e.to, e.w.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(key(&g), key(&back));
    }
}
