//! Run-to-run determinism under the multi-threaded executor.
//!
//! Bit-identity across *thread counts* is pinned by
//! `tests/differential.rs`; this file pins bit-identity across
//! *repeated runs at a fixed thread count* — the property that makes
//! bugs reproducible — by serializing the entire observable output
//! (the `E⁺` augmentation text plus raw distance bits) and comparing
//! bytes. It also pins that the vendored `rand` shim's streams are a
//! pure function of the seed, unaffected by any executor state.

use rand::{Rng, SeedableRng};
use rayon::with_max_threads;
use spsep_bench::families::Family;
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;

/// One full pipeline run at 4 threads, rendered to bytes: the
/// serialized augmentation followed by the exact bit patterns of the
/// distances from three sources.
fn run_serialized() -> Vec<u8> {
    run_serialized_at(4)
}

/// Same pipeline at an arbitrary thread cap.
fn run_serialized_at(threads: usize) -> Vec<u8> {
    let (g, tree) = Family::Grid2D.instance(256, 11);
    with_max_threads(threads, || {
        let metrics = Metrics::new();
        let pre =
            preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).expect("valid grid");
        let mut bytes = Vec::new();
        let aug = spsep_core::Augmentation::<Tropical> {
            eplus: pre.eplus().to_vec(),
            stats: pre.stats(),
        };
        spsep_core::io::write_augmentation(g.n(), &aug, &mut bytes).expect("in-memory write");
        for s in [0usize, g.n() / 2, g.n() - 1] {
            let (dist, _) = pre.distances_seq(s);
            for d in dist {
                bytes.extend_from_slice(&d.to_bits().to_le_bytes());
            }
        }
        bytes
    })
}

#[test]
fn five_runs_at_four_threads_serialize_byte_identically() {
    let reference = run_serialized();
    assert!(!reference.is_empty());
    for run in 1..5 {
        assert_eq!(run_serialized(), reference, "run {run} diverged");
    }
}

#[test]
fn tracing_leaves_outputs_byte_identical_at_any_thread_count() {
    // The observability layer must be purely observational: with spans
    // recording on every level/round, the serialized augmentation and
    // raw distance bits stay byte-for-byte what an untraced run
    // produces, at every thread count.
    let reference = run_serialized();
    spsep_trace::enable();
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(
            run_serialized_at(threads),
            reference,
            "tracing perturbed the pipeline at {threads} threads"
        );
    }
    spsep_trace::disable();
    // …and the traced runs really did record the pipeline's spans.
    let events = spsep_trace::drain();
    assert!(
        events.iter().any(|e| e.label == "preprocess"),
        "no preprocess span recorded"
    );
    assert!(
        events.iter().any(|e| e.label == "alg41.level" && e.ops > 0),
        "no level span with charged ops"
    );
}

#[test]
fn seeded_rng_streams_are_stable_across_thread_scopes() {
    // The rand shim must be a pure function of the seed: drawing inside
    // any thread-capped scope (or on whatever thread the closure lands
    // on) yields the same stream.
    let draw = || -> Vec<u64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        (0..64).map(|_| rng.gen_range(0..1_000_000u64)).collect()
    };
    let reference = draw();
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(
            with_max_threads(threads, draw),
            reference,
            "stream drifted inside a {threads}-thread scope"
        );
    }
}

#[test]
fn seeded_generators_produce_identical_instances_in_any_thread_scope() {
    // Instance construction (generators + separator engine, which runs
    // parallel joins) must also round-trip: same seed → same DIMACS
    // bytes and same tree serialization, at any thread count.
    let serialize = || -> (Vec<u8>, Vec<u8>) {
        let (g, tree) = Family::PlanarMesh.instance(220, 5);
        let mut gbuf = Vec::new();
        spsep_graph::io::write_dimacs(&g, &mut gbuf).expect("in-memory write");
        let mut tbuf = Vec::new();
        spsep_separator::io::write_tree(&tree, &mut tbuf).expect("in-memory write");
        (gbuf, tbuf)
    };
    let reference = serialize();
    for threads in [1usize, 4, 8] {
        assert_eq!(
            with_max_threads(threads, serialize),
            reference,
            "instance drifted at {threads} threads"
        );
    }
}
