//! Property tests for the serialization layer and the fallback entry
//! point.
//!
//! * **Round-trip fixed point** for all three text formats plus the
//!   CSV ingestion format: for any instance, `write → read → write`
//!   reproduces the first serialization byte-for-byte (so `read` loses
//!   nothing and `write` is canonical).
//! * **Distance agreement** on random grid and partial-k-tree
//!   instances: `preprocess_or_fallback` (fast path on these valid
//!   inputs) agrees with Dijkstra everywhere, and keeps agreeing when a
//!   budget forces the baseline path.

use proptest::prelude::*;
use rand::SeedableRng;
use spsep_baselines::dijkstra;
use spsep_core::{preprocess_or_fallback, FallbackPolicy};
use spsep_graph::semiring::Tropical;
use spsep_graph::DiGraph;
use spsep_pram::Metrics;
use spsep_separator::{builders, treewidth, RecursionLimits, SepTree};

fn grid_instance(rows: usize, cols: usize, seed: u64) -> (DiGraph<f64>, SepTree) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&[rows, cols], &mut rng);
    let tree = builders::grid_tree(&[rows, cols], RecursionLimits::default());
    (g, tree)
}

fn ktree_instance(n: usize, k: usize, seed: u64) -> (DiGraph<f64>, SepTree) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, td) = treewidth::partial_ktree(n, k, 0.7, &mut rng);
    let tree = treewidth::treewidth_tree(&g.undirected_skeleton(), &td, RecursionLimits::default());
    (g, tree)
}

fn assert_distances_match(g: &DiGraph<f64>, tree: &SepTree, policy: &FallbackPolicy) {
    let metrics = Metrics::new();
    let prepared = preprocess_or_fallback(g, tree, policy, &metrics)
        .unwrap_or_else(|e| panic!("valid instance rejected: {e}"));
    for source in [0usize, g.n() / 3, g.n() - 1] {
        let got = prepared.distances(source, &metrics);
        let want = dijkstra(g, source).dist;
        for v in 0..g.n() {
            assert!(
                (got[v] - want[v]).abs() < 1e-9
                    || (got[v].is_infinite() && want[v].is_infinite()),
                "source {source} vertex {v}: got {} want {} (fast={})",
                got[v],
                want[v],
                prepared.is_fast()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_write_read_write_is_a_fixed_point(
        rows in 2usize..9,
        cols in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let (g, _) = grid_instance(rows, cols, seed);
        let mut first = Vec::new();
        spsep_graph::io::write_dimacs(&g, &mut first).unwrap();
        let back = spsep_graph::io::read_dimacs(first.as_slice()).unwrap();
        let mut second = Vec::new();
        spsep_graph::io::write_dimacs(&back, &mut second).unwrap();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn tree_write_read_write_is_a_fixed_point(
        rows in 2usize..9,
        cols in 2usize..9,
    ) {
        let tree = builders::grid_tree(&[rows, cols], RecursionLimits::default());
        let mut first = Vec::new();
        spsep_separator::io::write_tree(&tree, &mut first).unwrap();
        let back = spsep_separator::io::read_tree(first.as_slice()).unwrap();
        let mut second = Vec::new();
        spsep_separator::io::write_tree(&back, &mut second).unwrap();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn csv_export_import_is_a_fixed_point(
        rows in 2usize..9,
        cols in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        // Ingestion round-trip (ISSUE 10): exporting a graph to the CSV
        // edge-list format and importing it back is bit-identical on
        // the second write, so `read_csv_edges` loses nothing and
        // `write_csv_edges` is canonical (shortest-round-trip floats).
        let (g, _) = grid_instance(rows, cols, seed);
        let mut first = Vec::new();
        spsep_graph::import::write_csv_edges(&g, &mut first).unwrap();
        let back = spsep_graph::import::read_csv_edges(first.as_slice()).unwrap();
        prop_assert_eq!(back.n(), g.n());
        prop_assert_eq!(back.m(), g.m());
        let mut second = Vec::new();
        spsep_graph::import::write_csv_edges(&back, &mut second).unwrap();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn augmentation_write_read_write_is_a_fixed_point(
        rows in 3usize..8,
        cols in 3usize..8,
        seed in 0u64..1_000_000,
    ) {
        let (g, tree) = grid_instance(rows, cols, seed);
        let metrics = Metrics::new();
        let aug = spsep_core::alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics)
            .unwrap();
        let mut first = Vec::new();
        spsep_core::io::write_augmentation(g.n(), &aug, &mut first).unwrap();
        let (n, back) = spsep_core::io::read_augmentation(first.as_slice()).unwrap();
        prop_assert_eq!(n, g.n());
        let mut second = Vec::new();
        spsep_core::io::write_augmentation(n, &back, &mut second).unwrap();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn fallback_agrees_with_dijkstra_on_random_grids(
        rows in 3usize..9,
        cols in 3usize..9,
        seed in 0u64..1_000_000,
    ) {
        let (g, tree) = grid_instance(rows, cols, seed);
        // Fast path…
        assert_distances_match(&g, &tree, &FallbackPolicy::default());
        // …and the budget-forced baseline path.
        let forced = FallbackPolicy {
            max_eplus_candidates: Some(0),
            ..FallbackPolicy::default()
        };
        assert_distances_match(&g, &tree, &forced);
    }

    #[test]
    fn fallback_agrees_with_dijkstra_on_random_ktrees(
        n in 12usize..40,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let (g, tree) = ktree_instance(n, k, seed);
        assert_distances_match(&g, &tree, &FallbackPolicy::default());
        let forced = FallbackPolicy {
            max_eplus_candidates: Some(0),
            ..FallbackPolicy::default()
        };
        assert_distances_match(&g, &tree, &forced);
    }
}
