//! The differential test layer for the multi-threaded executor.
//!
//! Contract under test (see the `rayon` shim docs): chunk boundaries
//! are a pure function of input length and all merges happen in chunk
//! order, so *every* pipeline output — preprocessing, scheduled
//! queries, reachability closures, and the baseline fallback — must be
//! **bit-identical** at 1, 2, 4, and 8 threads, and must agree with the
//! Dijkstra oracle. `f64` distances are compared via `to_bits`, not
//! `==`, so `-0.0` vs `0.0` or NaN-payload drift would be caught.

use rayon::with_max_threads;
use spsep_baselines::dijkstra;
use spsep_bench::families::Family;
use spsep_core::{preprocess, preprocess_or_fallback, Algorithm, FallbackPolicy};
use spsep_graph::semiring::Tropical;
use spsep_graph::{BitMatrix, DiGraph};
use spsep_pram::Metrics;
use spsep_separator::SepTree;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const N_TARGET: usize = 240;
const SEED: u64 = 7;

fn sources_for(n: usize) -> [usize; 3] {
    [0, n / 2, n - 1]
}

/// Preprocess + query from every probe source, entirely under `threads`.
fn distance_rows(
    g: &DiGraph<f64>,
    tree: &SepTree,
    algo: Algorithm,
    threads: usize,
) -> Vec<Vec<f64>> {
    with_max_threads(threads, || {
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(g, tree, algo, &metrics)
            .unwrap_or_else(|e| panic!("preprocess at {threads} threads: {e}"));
        pre.distances_multi(&sources_for(g.n()))
    })
}

fn assert_rows_bit_identical(reference: &[Vec<f64>], got: &[Vec<f64>], context: &str) {
    assert_eq!(reference.len(), got.len(), "{context}: row count");
    for (row_ref, row_got) in reference.iter().zip(got) {
        assert_eq!(row_ref.len(), row_got.len(), "{context}: row length");
        for (v, (a, b)) in row_ref.iter().zip(row_got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{context}: vertex {v}: {a} vs {b}"
            );
        }
    }
}

fn assert_rows_match_oracle(g: &DiGraph<f64>, rows: &[Vec<f64>], context: &str) {
    for (&s, row) in sources_for(g.n()).iter().zip(rows) {
        let oracle = dijkstra(g, s).dist;
        for v in 0..g.n() {
            assert!(
                (row[v] - oracle[v]).abs() < 1e-9
                    || (row[v].is_infinite() && oracle[v].is_infinite()),
                "{context}: source {s}, vertex {v}: got {} oracle {}",
                row[v],
                oracle[v]
            );
        }
    }
}

#[test]
fn fast_path_distances_are_bit_identical_across_thread_counts() {
    for family in Family::all() {
        let (g, tree) = family.instance(N_TARGET, SEED);
        let reference = distance_rows(&g, &tree, Algorithm::LeavesUp, 1);
        assert_rows_match_oracle(&g, &reference, family.label());
        for threads in THREAD_COUNTS {
            let got = distance_rows(&g, &tree, Algorithm::LeavesUp, threads);
            let context = format!("{} at {threads} threads", family.label());
            assert_rows_bit_identical(&reference, &got, &context);
        }
    }
}

#[test]
fn all_algorithms_are_bit_identical_across_thread_counts() {
    // Algorithm 4.3 (path doubling) and 4.4 (shared doubling) drive
    // different executor entry points (par_iter_mut over matrices,
    // par_sort_unstable over triples) — each must satisfy the same
    // contract. One family suffices; the LeavesUp loop above covers
    // family diversity.
    let (g, tree) = Family::Grid2D.instance(N_TARGET, SEED);
    for algo in [Algorithm::PathDoubling, Algorithm::SharedDoubling] {
        let reference = distance_rows(&g, &tree, algo, 1);
        assert_rows_match_oracle(&g, &reference, &format!("{algo:?}"));
        for threads in THREAD_COUNTS {
            let got = distance_rows(&g, &tree, algo, threads);
            assert_rows_bit_identical(&reference, &got, &format!("{algo:?} at {threads} threads"));
        }
    }
}

#[test]
fn reachability_closure_is_identical_across_thread_counts() {
    for family in Family::all() {
        let (g, tree) = family.instance(N_TARGET, SEED);
        let gb = g.map_weights(|_| true);
        let closure_at = |threads: usize| -> BitMatrix {
            with_max_threads(threads, || {
                let metrics = Metrics::new();
                let pre = spsep_core::reach::preprocess_reach(&gb, &tree, &metrics);
                spsep_core::reach::transitive_closure(&pre)
            })
        };
        let reference = closure_at(1);
        for threads in THREAD_COUNTS {
            assert_eq!(
                reference,
                closure_at(threads),
                "{} closure at {threads} threads",
                family.label()
            );
        }
    }
}

#[test]
fn blocked_kernels_match_naive_on_every_family_and_thread_count() {
    // The dense-kernel contract behind all of the above: the k-tiled
    // `floyd_warshall` and the transpose-packed `square_step` must equal
    // their naive references bit for bit on real family matrices — at
    // every thread count (the blocked outer phase fans out over row
    // chunks; the naive kernels over single rows). n is chosen past the
    // parallel thresholds so the pool genuinely engages.
    use spsep_graph::dense::SemiMatrix;
    const KERNEL_N: usize = 160;
    for family in Family::all() {
        let (g, _) = family.instance(KERNEL_N * 2, SEED);
        let n = KERNEL_N.min(g.n());
        let mut base = SemiMatrix::<Tropical>::identity(n);
        for u in 0..n {
            for e in g.out_edges(u) {
                let v = e.to as usize;
                if v < n && v != u {
                    base.relax(u, v, e.w);
                }
            }
        }

        let fw_ref = with_max_threads(1, || {
            let mut m = base.clone();
            let o = m.floyd_warshall_naive();
            (m, o)
        });
        let sq_ref = with_max_threads(1, || {
            let mut m = base.clone();
            let o = m.square_step_naive();
            (m, o)
        });
        for threads in THREAD_COUNTS {
            let (fw, fw_o) = with_max_threads(threads, || {
                let mut m = base.clone();
                let o = m.floyd_warshall();
                (m, o)
            });
            let context = format!("{} fw at {threads} threads", family.label());
            assert_eq!(fw_o.ops, fw_ref.1.ops, "{context}: ops");
            assert_eq!(
                fw_o.absorbing_cycle, fw_ref.1.absorbing_cycle,
                "{context}: absorbing"
            );
            for (i, (a, b)) in fw.data().iter().zip(fw_ref.0.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{context}: cell {i}: {a} vs {b}");
            }

            let (sq, sq_o) = with_max_threads(threads, || {
                let mut m = base.clone();
                let o = m.square_step();
                (m, o)
            });
            let context = format!("{} square at {threads} threads", family.label());
            assert_eq!(sq_o.ops, sq_ref.1.ops, "{context}: ops");
            assert_eq!(sq_o.changed, sq_ref.1.changed, "{context}: changed");
            for (i, (a, b)) in sq.data().iter().zip(sq_ref.0.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{context}: cell {i}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn fallback_path_is_bit_identical_across_thread_counts() {
    // A zero E+ budget forces the baseline path; its par_iter'd solvers
    // are bound by the same determinism contract as the fast path.
    let policy = FallbackPolicy {
        max_eplus_candidates: Some(0),
        ..FallbackPolicy::default()
    };
    for family in Family::all() {
        let (g, tree) = family.instance(N_TARGET, SEED);
        let rows_at = |threads: usize| -> Vec<Vec<f64>> {
            with_max_threads(threads, || {
                let metrics = Metrics::new();
                let prepared = preprocess_or_fallback(&g, &tree, &policy, &metrics)
                    .unwrap_or_else(|e| panic!("{}: fallback refused: {e}", family.label()));
                assert!(
                    !prepared.is_fast(),
                    "{}: zero budget must force the baseline",
                    family.label()
                );
                sources_for(g.n())
                    .iter()
                    .map(|&s| prepared.distances(s, &metrics))
                    .collect()
            })
        };
        let reference = rows_at(1);
        assert_rows_match_oracle(&g, &reference, family.label());
        for threads in THREAD_COUNTS {
            let got = rows_at(threads);
            let context = format!("{} fallback at {threads} threads", family.label());
            assert_rows_bit_identical(&reference, &got, &context);
        }
    }
}
