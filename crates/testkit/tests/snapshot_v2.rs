//! The `spsep-oracle/v2` corruption suite.
//!
//! Contracts under test:
//!
//! 1. **Catalog robustness** — every [`snapshot_corruptions_v2`] entry
//!    makes `Oracle::load` return a typed [`SpsepError`], never panic
//!    (asserted under `catch_unwind` inside a watchdog), never a usable
//!    oracle.
//! 2. **Truncation sweep** — a cut at *every* header/table byte and at
//!    every slab page boundary (±1) is a typed error.
//! 3. **Version skew** — v1 bytes relabeled v2 and v2 bytes relabeled
//!    v1 both fail with typed errors, in whichever parser the version
//!    word routes them to.
//! 4. **Lazy tree boundary** — a checksum-consistent semantic patch of
//!    the TREE slab (which the v2 reader deliberately does not decode)
//!    loads fine, answers bit-identically, and then fails with a typed
//!    error at `save` — the first operation that decodes the tree.
//! 5. **Daemon on v2** — a live daemon serving an mmapped v2 snapshot
//!    answers bit-identically to the in-memory oracle, and a corrupted
//!    snapshot can never boot a daemon in the first place.

use spsep_core::{Algorithm, Oracle, SpsepError};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{Client, Request, Response, ServeConfig, Server};
use spsep_testkit::{snapshot_corruptions_v2, v2_section_bounds, v2_tree_semantic_patch};
use std::panic::resume_unwind;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("sender dropped without a panic"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("watchdog: '{name}' exceeded {WATCHDOG:?} — hang or deadlock")
        }
    }
}

fn grid_oracle(dims: [usize; 2], seed: u64) -> Oracle {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new()).unwrap()
}

fn save_v2(oracle: &Oracle) -> Vec<u8> {
    let mut buf = Vec::new();
    oracle.save_v2(&mut buf).expect("save_v2 to a Vec cannot fail");
    buf
}

fn save_v1(oracle: &Oracle) -> Vec<u8> {
    let mut buf = Vec::new();
    oracle.save(&mut buf).expect("save to a Vec cannot fail");
    buf
}

fn assert_typed(err: SpsepError, name: &str) {
    assert!(
        matches!(
            err,
            SpsepError::Parse { .. }
                | SpsepError::Io { .. }
                | SpsepError::InvalidGraph { .. }
                | SpsepError::InvalidDecomposition { .. }
        ),
        "{name}: unexpected error kind: {err:?}"
    );
    // Errors must render without panicking, too.
    let _ = err.to_string();
}

#[test]
fn every_v2_corruption_is_a_typed_error_never_a_panic() {
    let fresh = grid_oracle([8, 8], 21);
    assert!(
        fresh.stats().eplus_edges > 0,
        "catalog precondition: instance must have shortcuts"
    );
    let snapshot = Arc::new(save_v2(&fresh));

    for corruption in snapshot_corruptions_v2() {
        let name = corruption.name;
        let snapshot = Arc::clone(&snapshot);
        with_watchdog(name, move || {
            let bad = (corruption.apply)(&snapshot);
            assert_ne!(
                bad.as_slice(),
                snapshot.as_slice(),
                "{name}: corruption did not change the bytes"
            );
            match std::panic::catch_unwind(|| Oracle::load(bad.as_slice())) {
                Ok(Err(err)) => assert_typed(err, name),
                Ok(Ok(_)) => panic!("{name}: corrupted snapshot loaded successfully"),
                Err(_) => panic!("{name}: load panicked"),
            }
        });
    }
}

#[test]
fn truncation_at_every_header_byte_and_slab_boundary_is_a_typed_error() {
    let fresh = grid_oracle([6, 6], 22);
    let snapshot = save_v2(&fresh);

    // Every byte of the fixed header + section table region…
    let header_end = 24 + 14 * 32;
    let mut cuts: Vec<usize> = (0..=header_end).collect();
    // …every slab boundary (start and end of every section, ±1)…
    for (off, len) in v2_section_bounds(&snapshot) {
        for cut in [
            off.saturating_sub(1),
            off,
            off + 1,
            (off + len).saturating_sub(1),
            off + len,
            off + len + 1,
        ] {
            cuts.push(cut);
        }
    }
    // …and the trailer region.
    for back in 1..=9 {
        cuts.push(snapshot.len() - back);
    }
    cuts.retain(|&c| c < snapshot.len());
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        match std::panic::catch_unwind(|| Oracle::load(&snapshot[..cut])) {
            Ok(Err(_)) => {}
            Ok(Ok(_)) => panic!("prefix of {cut} bytes loaded as a full v2 snapshot"),
            Err(_) => panic!("load panicked at a {cut}-byte prefix"),
        }
    }
}

#[test]
fn version_skew_both_directions_is_a_typed_error() {
    let fresh = grid_oracle([6, 6], 23);

    // v1 bytes relabeled v2: routed to the v2 parser, which rejects.
    let mut v1_as_v2 = save_v1(&fresh);
    v1_as_v2[8..12].copy_from_slice(&2u32.to_le_bytes());
    let Err(err) = Oracle::load(v1_as_v2.as_slice()) else {
        panic!("v1 bytes relabeled v2 loaded successfully");
    };
    assert_typed(err, "v1 relabeled v2");

    // v2 bytes relabeled v1: routed to the v1 parser, which rejects.
    let mut v2_as_v1 = save_v2(&fresh);
    v2_as_v1[8..12].copy_from_slice(&1u32.to_le_bytes());
    let Err(err) = Oracle::load(v2_as_v1.as_slice()) else {
        panic!("v2 bytes relabeled v1 loaded successfully");
    };
    assert_typed(err, "v2 relabeled v1");
}

#[test]
fn tree_patch_loads_answers_identically_then_fails_at_save() {
    let fresh = grid_oracle([8, 8], 24);
    let snapshot = save_v2(&fresh);
    let patched = v2_tree_semantic_patch(&snapshot);
    assert_ne!(patched, snapshot);

    // The v2 reader does not decode the tree: the patch loads.
    let served = Oracle::load(patched.as_slice())
        .expect("a TREE-only semantic patch must load (the tree is opaque at load time)");

    // Query answers never touch the tree bytes — still bit-identical.
    let metrics = Metrics::new();
    let n = fresh.n();
    for s in [0, n / 2, n - 1] {
        let want = fresh.source_table(s, &metrics).unwrap();
        let got = served.source_table(s, &metrics).unwrap();
        for v in 0..n {
            assert_eq!(want[v].to_bits(), got[v].to_bits(), "source {s} vertex {v}");
        }
    }

    // Re-exporting to v1 decodes the tree — the damage surfaces as a
    // typed error there, not as a panic and not silently.
    let mut sink = Vec::new();
    match served.save(&mut sink) {
        Err(err) => assert_typed(err, "save after TREE patch"),
        Ok(()) => panic!("saving a patched tree succeeded"),
    }
}

#[test]
fn daemon_on_v2_mmap_answers_bit_identically_and_corrupt_files_never_boot() {
    let fresh = grid_oracle([8, 8], 25);
    let snapshot = save_v2(&fresh);
    let dir = std::env::temp_dir().join(format!("spsep-v2-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.v2");
    std::fs::write(&path, &snapshot).unwrap();

    let served = Oracle::load_path(&path).expect("load_path on a valid v2 snapshot");
    #[cfg(unix)]
    assert!(served.is_slab_backed(), "v2 load_path must borrow the mmap");

    // Live daemon on the mmapped oracle: answers must equal the
    // in-memory oracle's bit for bit.
    with_watchdog("daemon-on-v2", move || {
        let server = Server::bind(
            Arc::new(served),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
        let metrics = Metrics::new();
        let n = fresh.n();
        for s in [0usize, n / 3, n - 1] {
            let want = fresh.source_table(s, &metrics).unwrap();
            match client.request(&Request::Source { source: s as u64 }).unwrap() {
                Response::Table(got) => {
                    assert_eq!(got.len(), n, "table length from daemon");
                    for v in 0..n {
                        assert_eq!(
                            want[v].to_bits(),
                            got[v].to_bits(),
                            "daemon answer drifted at source {s} vertex {v}"
                        );
                    }
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        drop(client);
        handle.shutdown();
        join.join().unwrap();
    });

    // A corrupted file must be rejected at load — the daemon can never
    // come up on damaged bytes.
    for corruption in snapshot_corruptions_v2().into_iter().take(6) {
        let bad = (corruption.apply)(&snapshot);
        let bad_path = dir.join("snap.bad");
        std::fs::write(&bad_path, &bad).unwrap();
        match Oracle::load_path(&bad_path) {
            Err(err) => assert_typed(err, corruption.name),
            Ok(_) => panic!("{}: corrupted file booted an oracle", corruption.name),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
