//! The work/depth ledger (Theorems 4.1/5.1, DESIGN.md §9) stays inside
//! its predicted envelope on every bench family × algorithm, and the
//! Theorem 3.1 diameter bound holds exactly.

use spsep_bench::families::Family;
use spsep_core::analysis::{augmented_diameter, work_ledger};
use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_pram::Metrics;

const ALGOS: [Algorithm; 3] = [
    Algorithm::LeavesUp,
    Algorithm::PathDoubling,
    Algorithm::SharedDoubling,
];

#[test]
fn ledger_within_envelope_across_families_and_algorithms() {
    for family in Family::all() {
        let (g, tree) = family.instance(260, 9);
        for algo in ALGOS {
            let metrics = Metrics::new();
            preprocess::<Tropical>(&g, &tree, algo, &metrics)
                .unwrap_or_else(|e| panic!("{family:?}/{algo:?}: {e}"));
            let ledger = work_ledger(&tree, algo, &metrics.report(), None);
            assert_eq!(ledger.entries.len(), 2);
            assert!(
                ledger.all_within(),
                "{family:?}/{algo:?} over budget:\n{ledger}"
            );
            for e in &ledger.entries {
                assert!(
                    e.measured > 0,
                    "{family:?}/{algo:?} {}: nothing measured",
                    e.label
                );
            }
        }
    }
}

#[test]
fn theorem_3_1_diameter_bound_holds_on_every_family() {
    // augmented_diameter is O(n·m⁺): keep the instances small.
    for family in Family::all() {
        let (g, tree) = family.instance(120, 3);
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
            .unwrap_or_else(|e| panic!("{family:?}: {e}"));
        let diam = augmented_diameter::<Tropical>(&pre).expect("no absorbing cycles");
        let ledger = work_ledger(&tree, Algorithm::LeavesUp, &metrics.report(), Some(diam));
        let entry = ledger
            .entries
            .iter()
            .find(|e| e.label == "diameter")
            .expect("diameter entry");
        assert_eq!(entry.slack, 1.0, "Theorem 3.1 is unconditional");
        assert!(
            entry.within,
            "{family:?}: diam(G+) = {} exceeds 4d_G + 2l + 1 = {}",
            entry.measured, entry.predicted
        );
    }
}
