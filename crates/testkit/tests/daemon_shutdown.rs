//! Graceful-shutdown coverage under concurrent load, at 1, 2, 4, and
//! 8 workers: in-flight requests complete with correct answers,
//! requests after the drain begins get a typed `ShuttingDown` error
//! (or at worst a clean close), the listener closes so new connections
//! are refused, and `Server::run` returns its final stats (the daemon
//! process exits 0 — pinned end-to-end by the CLI suite).

use rand::SeedableRng;
use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{Client, Request, Response, ServeConfig, Server, WireError};
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("sender dropped without a panic"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("watchdog: '{name}' exceeded {WATCHDOG:?} — shutdown hung")
        }
    }
}

fn grid_oracle(dims: [usize; 2], seed: u64) -> Arc<Oracle> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    Arc::new(Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new()).unwrap())
}

#[test]
fn shutdown_under_concurrent_load_drains_typed_at_every_worker_count() {
    let oracle = grid_oracle([7, 6], 95);
    let n = oracle.n() as u64;
    for workers in [1usize, 2, 4, 8] {
        let oracle = Arc::clone(&oracle);
        with_watchdog("shutdown-under-load", move || {
            let server = Server::bind(
                Arc::clone(&oracle),
                ServeConfig {
                    workers,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let addr = server.local_addr().unwrap();
            let handle = server.handle();
            let daemon = std::thread::spawn(move || server.run().unwrap());

            // Sustained load from several client threads; each counts
            // what it observed. The shutdown fires mid-stream.
            let completed = Arc::new(AtomicU64::new(0));
            let refused_typed = Arc::new(AtomicU64::new(0));
            let closed = Arc::new(AtomicU64::new(0));
            let clients: Vec<_> = (0..4)
                .map(|ci| {
                    let completed = Arc::clone(&completed);
                    let refused_typed = Arc::clone(&refused_typed);
                    let closed = Arc::clone(&closed);
                    let oracle = Arc::clone(&oracle);
                    std::thread::spawn(move || {
                        let metrics = Metrics::new();
                        let mut client =
                            match Client::connect(addr, Duration::from_secs(5)) {
                                Ok(c) => c,
                                Err(_) => return, // shed or post-shutdown: fine
                            };
                        // Send until the drain ends the loop (typed
                        // refusal or close) — the watchdog bounds the
                        // whole test, so a shutdown that never reaches
                        // this client still fails loudly.
                        for i in 0..u64::MAX {
                            let (s, t) = ((ci as u64 + i) % n, (ci as u64 + 3 * i) % n);
                            match client.request(&Request::Point { source: s, target: t }) {
                                Ok(Response::Dist(d)) => {
                                    // An answer delivered during the run —
                                    // including in-flight at shutdown —
                                    // must be the correct one.
                                    let want = oracle
                                        .distance(s as usize, t as usize, &metrics)
                                        .unwrap();
                                    assert_eq!(
                                        d.to_bits(),
                                        want.to_bits(),
                                        "workers={workers} {s}->{t}"
                                    );
                                    completed.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(Response::Error {
                                    code: WireError::ShuttingDown,
                                    ..
                                }) => {
                                    refused_typed.fetch_add(1, Ordering::Relaxed);
                                    return;
                                }
                                Ok(other) => {
                                    panic!("workers={workers}: unexpected response {other:?}")
                                }
                                Err(_) => {
                                    // Clean close during drain.
                                    closed.fetch_add(1, Ordering::Relaxed);
                                    return;
                                }
                            }
                        }
                    })
                })
                .collect();

            // Let the load establish, then pull the plug mid-traffic.
            std::thread::sleep(Duration::from_millis(150));
            handle.shutdown();
            for c in clients {
                if let Err(payload) = c.join() {
                    resume_unwind(payload);
                }
            }
            let stats = daemon.join().expect("daemon thread panicked");

            assert!(
                completed.load(Ordering::Relaxed) > 0,
                "workers={workers}: no requests completed before shutdown"
            );
            let drained = refused_typed.load(Ordering::Relaxed) + closed.load(Ordering::Relaxed);
            assert!(
                drained > 0,
                "workers={workers}: shutdown fired mid-load but nothing was drained"
            );
            // The listener is gone: new connections are refused (a
            // RST/refusal or an unanswered connect, never a served one).
            if let Ok(mut late) = Client::connect(addr, Duration::from_millis(300)) {
                if let Ok(resp) = late.request(&Request::Ping) {
                    panic!("workers={workers}: post-shutdown request served: {resp:?}");
                }
            }
            assert!(
                stats.served >= completed.load(Ordering::Relaxed),
                "workers={workers}: daemon served counter below client count"
            );
        });
    }
}

#[test]
fn shutdown_with_an_empty_queue_is_immediate() {
    let oracle = grid_oracle([5, 5], 96);
    for workers in [1usize, 8] {
        let server = Server::bind(
            Arc::clone(&oracle),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run().unwrap());
        let started = std::time::Instant::now();
        handle.shutdown();
        let stats = daemon.join().expect("daemon thread panicked");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "workers={workers}: idle shutdown took {:?}",
            started.elapsed()
        );
        assert_eq!(stats.served, 0);
    }
}
