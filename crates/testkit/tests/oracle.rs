//! The serving-layer differential suite.
//!
//! Contracts under test:
//!
//! 1. **Round-trip bit-identity** — an oracle saved to an
//!    `spsep-oracle/v1` snapshot and reloaded answers every probe query
//!    bit-identically to the freshly prepared oracle, on every graph
//!    family, at 1/2/4/8 threads, and agrees with the Dijkstra oracle.
//! 2. **Batch determinism** — `Oracle::batch` (parallel across sources)
//!    returns bit-identical answers at every thread count, and the
//!    cache state it leaves behind is thread-count independent.
//! 3. **Corruption robustness** — every entry of
//!    [`spsep_testkit::snapshot_corruptions`] makes `Oracle::load`
//!    return a typed [`SpsepError`], never panic (asserted under
//!    `catch_unwind`), and never a usable oracle.

use rayon::with_max_threads;
use spsep_baselines::dijkstra;
use spsep_bench::families::Family;
use spsep_core::{Algorithm, Oracle, SpsepError};
use spsep_pram::Metrics;
use spsep_testkit::snapshot_corruptions;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const N_TARGET: usize = 240;
const SEED: u64 = 18;

fn prepare_family(family: Family, algo: Algorithm) -> Oracle {
    let (g, tree) = family.instance(N_TARGET, SEED);
    Oracle::prepare(g, tree, algo, &Metrics::new())
        .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", family.label()))
}

fn save(oracle: &Oracle) -> Vec<u8> {
    let mut buf = Vec::new();
    oracle.save(&mut buf).expect("save to a Vec cannot fail");
    buf
}

#[test]
fn reloaded_oracle_is_bit_identical_to_fresh_at_every_thread_count() {
    for family in Family::all() {
        let fresh = prepare_family(family, Algorithm::LeavesUp);
        let snapshot = save(&fresh);
        let n = fresh.n();
        let metrics = Metrics::new();
        let probes = [0, n / 3, n / 2, n - 1];

        // Reference rows from the fresh oracle, plus the Dijkstra
        // cross-check (nonnegative weights in every family).
        let mut reference: Vec<Vec<f64>> = Vec::new();
        for &s in &probes {
            let row = fresh.source_table(s, &metrics).unwrap();
            let oracle_dist = dijkstra(fresh.graph(), s).dist;
            for v in 0..n {
                assert!(
                    (row[v] - oracle_dist[v]).abs() < 1e-9
                        || (row[v].is_infinite() && oracle_dist[v].is_infinite()),
                    "{}: source {s} vertex {v}: fresh {} vs dijkstra {}",
                    family.label(),
                    row[v],
                    oracle_dist[v]
                );
            }
            reference.push(row.to_vec());
        }

        for threads in THREAD_COUNTS {
            let rows = with_max_threads(threads, || {
                let served = Oracle::load(snapshot.as_slice())
                    .unwrap_or_else(|e| panic!("{}: load failed: {e}", family.label()));
                probes
                    .iter()
                    .map(|&s| served.source_table(s, &metrics).unwrap().to_vec())
                    .collect::<Vec<_>>()
            });
            for (i, (row_ref, row_got)) in reference.iter().zip(&rows).enumerate() {
                for v in 0..n {
                    assert_eq!(
                        row_ref[v].to_bits(),
                        row_got[v].to_bits(),
                        "{} at {threads} threads: probe {i} vertex {v}",
                        family.label()
                    );
                }
            }
        }
    }
}

#[test]
fn batch_is_deterministic_across_thread_counts_including_cache_state() {
    let fresh = prepare_family(Family::Grid2D, Algorithm::PathDoubling);
    let snapshot = save(&fresh);
    let n = fresh.n();
    // More distinct sources than default probes, interleaved targets.
    let pairs: Vec<(usize, usize)> = (0..64).map(|i| (i * 7 % n, i * 13 % n)).collect();

    let mut reference: Option<(Vec<f64>, u64, u64)> = None;
    for threads in THREAD_COUNTS {
        let (answers, hits, misses) = with_max_threads(threads, || {
            let served = Oracle::load(snapshot.as_slice()).unwrap();
            let metrics = Metrics::new();
            let first = served.batch(&pairs, &metrics).unwrap();
            // Re-batching must be answered from cache alone.
            let second = served.batch(&pairs, &metrics).unwrap();
            assert_eq!(first, second, "{threads} threads: batch not stable");
            let stats = served.cache_stats();
            (first, stats.hits, stats.misses)
        });
        match &reference {
            None => reference = Some((answers, hits, misses)),
            Some((ref_answers, ref_hits, ref_misses)) => {
                for (i, (a, b)) in ref_answers.iter().zip(&answers).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "pair {i} differs at {threads} threads"
                    );
                }
                assert_eq!(
                    (*ref_hits, *ref_misses),
                    (hits, misses),
                    "cache counters depend on thread count"
                );
            }
        }
    }
}

#[test]
fn every_snapshot_corruption_is_a_typed_error_never_a_panic() {
    // An instance with at least one edge and one shortcut (the
    // catalog's documented precondition) — the 3D grid produces a rich
    // E⁺ even at small n.
    let fresh = prepare_family(Family::Grid3D, Algorithm::LeavesUp);
    let snapshot = save(&fresh);
    assert!(
        fresh.stats().eplus_edges > 0,
        "catalog precondition: instance must have shortcuts"
    );

    for corruption in snapshot_corruptions() {
        let bad = (corruption.apply)(&snapshot);
        assert_ne!(
            bad, snapshot,
            "{}: corruption did not change the bytes",
            corruption.name
        );
        let outcome = std::panic::catch_unwind(|| Oracle::load(bad.as_slice()));
        match outcome {
            Ok(Err(err)) => {
                // Typed taxonomy only — parse/IO damage or a semantic
                // patch caught by the validators.
                assert!(
                    matches!(
                        err,
                        SpsepError::Parse { .. }
                            | SpsepError::Io { .. }
                            | SpsepError::InvalidGraph { .. }
                            | SpsepError::InvalidDecomposition { .. }
                    ),
                    "{}: unexpected error kind: {err:?}",
                    corruption.name
                );
                // Errors must render without panicking, too.
                let _ = err.to_string();
            }
            Ok(Ok(_)) => panic!("{}: corrupted snapshot loaded successfully", corruption.name),
            Err(_) => panic!("{}: load panicked", corruption.name),
        }
    }
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    // Exhaustive truncation sweep on a small instance: the catalog
    // spot-checks depths, this covers every prefix.
    let fresh = prepare_family(Family::Tree, Algorithm::LeavesUp);
    let snapshot = save(&fresh);
    for cut in 0..snapshot.len() {
        match Oracle::load(&snapshot[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("prefix of {cut} bytes loaded as a full snapshot"),
        }
    }
}
