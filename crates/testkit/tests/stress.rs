//! Concurrency stress: the fault-injection catalog executed *under*
//! the worker pool.
//!
//! What PR 1's harness proved sequentially must keep holding when the
//! corrupted pipelines actually run on the executor: a worker panic or
//! typed error propagates as an [`SpsepError`] (or a correct fallback)
//! with **no deadlock** (every scenario runs under a watchdog thread
//! with a hard timeout), **no wrong answer** (surviving distances are
//! oracle-checked), and **no leaked threads** (the pool's worker census
//! is identical before and after the barrage, including after panics).

use std::panic::resume_unwind;
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use rayon::prelude::*;
use rayon::with_max_threads;
use spsep_baselines::dijkstra;
use spsep_core::{preprocess_or_fallback, run_protected, FallbackPolicy, SpsepError};
use spsep_pram::Metrics;
use spsep_testkit::instance_corruptions;

/// Hard ceiling per scenario. Generous: the corrupted instances are
/// small and a healthy run takes well under a second even on one core.
const WATCHDOG: Duration = Duration::from_secs(120);

/// Run `f` on a helper thread and fail loudly if it neither returns
/// nor panics within [`WATCHDOG`] — a hang here means the executor
/// deadlocked or leaked a latch, which must never survive CI.
fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without a panic"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("watchdog: '{name}' exceeded {WATCHDOG:?} — executor deadlock")
        }
    }
}

/// Number of live `spsep-worker-*` threads of this process, read from
/// `/proc`. The pool spawns its full complement on first use and must
/// never grow or shrink afterwards — a drift in this census is a leak.
fn worker_census() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .filter_map(|t| std::fs::read_to_string(t.ok()?.path().join("comm")).ok())
        .filter(|comm| comm.starts_with("spsep-worker"))
        .count()
}

#[test]
fn corrupted_instances_under_the_pool_never_hang_or_lie() {
    // Force the pool into existence before the census.
    let warmup: usize = (0..64usize).into_par_iter().sum();
    assert_eq!(warmup, 2016);
    let workers_before = worker_census();
    assert!(workers_before > 0, "pool must have spawned workers");

    for inst in instance_corruptions() {
        let name = inst.name;
        with_watchdog(name, move || {
            with_max_threads(4, || {
                let metrics = Metrics::new();
                let tree = match &inst.tree {
                    Err(e) => {
                        assert!(
                            matches!(e, SpsepError::InvalidDecomposition { .. }),
                            "'{name}': unexpected assembly error {e:?}"
                        );
                        return;
                    }
                    Ok(t) => t,
                };
                match preprocess_or_fallback(&inst.graph, tree, &FallbackPolicy::default(), &metrics)
                {
                    Err(SpsepError::AbsorbingCycle { witness }) => {
                        assert!(inst.absorbing, "'{name}': spurious absorbing-cycle report");
                        assert!(!witness.is_empty(), "'{name}': empty witness");
                    }
                    Err(err) => panic!("'{name}': unexpected hard error {err:?}"),
                    Ok(prepared) => {
                        assert!(!inst.absorbing, "'{name}': absorbing cycle was answered");
                        let source = inst.graph.n() / 2;
                        let got = prepared.distances(source, &metrics);
                        let oracle = dijkstra(&inst.graph, source).dist;
                        for v in 0..inst.graph.n() {
                            assert!(
                                (got[v] - oracle[v]).abs() < 1e-9
                                    || (got[v].is_infinite() && oracle[v].is_infinite()),
                                "'{name}': wrong distance under the pool at vertex {v}"
                            );
                        }
                    }
                }
            });
        });
    }

    assert_eq!(
        worker_census(),
        workers_before,
        "worker census drifted — the pool leaked or lost threads"
    );
}

#[test]
fn worker_panics_surface_as_typed_executor_errors_not_hangs() {
    let warmup: usize = (0..64usize).into_par_iter().sum();
    assert_eq!(warmup, 2016);
    let workers_before = worker_census();

    for round in 0..10 {
        let result: Result<(), SpsepError> = with_watchdog("panic-round", move || {
            with_max_threads(4, || {
                run_protected("stress phase", || {
                    (0..512usize).into_par_iter().for_each(|i| {
                        assert!(i != 137, "injected worker fault (round {round})");
                    });
                })
            })
        });
        let err = result.expect_err("the injected fault must not vanish");
        let SpsepError::Executor { what } = &err else {
            panic!("expected SpsepError::Executor, got {err:?}");
        };
        assert!(what.contains("stress phase"), "missing phase context: {what}");
        assert!(what.contains("injected worker fault"), "missing payload: {what}");

        // The very next region must compute correctly — no poisoned
        // locks, no stuck claim cursors.
        let total: usize = with_max_threads(4, || (0..1000usize).into_par_iter().sum());
        assert_eq!(total, 499_500);
    }

    assert_eq!(
        worker_census(),
        workers_before,
        "worker census drifted across panic rounds"
    );
}

#[test]
fn concurrent_callers_share_the_pool_without_interference() {
    // Several OS threads drive capped parallel regions simultaneously —
    // claim loops, steal-backs, and latches all interleave on the same
    // injector queue. Every caller must still observe its own exact
    // results.
    with_watchdog("concurrent-callers", || {
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for _ in 0..5 {
                        let sum: u64 = with_max_threads(1 + t % 3, || {
                            (0..2000u64).into_par_iter().map(|x| x * x).sum()
                        });
                        assert_eq!(sum, 2_664_667_000);
                    }
                });
            }
        });
    });
}
