//! The fault-injection harness: every corruption in the catalog must
//! yield a typed error or a correct fallback — never a panic (verified
//! with `catch_unwind`), never a wrong distance (verified against
//! Dijkstra).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::SeedableRng;
use spsep_baselines::dijkstra;
use spsep_core::{preprocess_or_fallback, FallbackPolicy, SpsepError};
use spsep_graph::semiring::Tropical;
use spsep_graph::DiGraph;
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits, SepTree};
use spsep_testkit::{
    import_corruptions, instance_corruptions, text_corruptions, ImportInput, TextFormat,
};

fn no_panic<T>(name: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(_) => panic!("corruption '{name}' caused a panic"),
    }
}

fn valid_instance() -> (DiGraph<f64>, SepTree) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let (g, _) = spsep_graph::generators::grid(&[9, 8], &mut rng);
    let tree = builders::grid_tree(&[9, 8], RecursionLimits::default());
    (g, tree)
}

/// Valid serializations of one instance, in all three formats.
fn valid_texts() -> (String, String, String) {
    let (g, tree) = valid_instance();
    let mut gbuf = Vec::new();
    spsep_graph::io::write_dimacs(&g, &mut gbuf).unwrap();
    let mut tbuf = Vec::new();
    spsep_separator::io::write_tree(&tree, &mut tbuf).unwrap();
    let metrics = Metrics::new();
    let aug = spsep_core::alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();
    assert!(!aug.eplus.is_empty(), "corruptions assume a nonempty E+");
    let mut abuf = Vec::new();
    spsep_core::io::write_augmentation(g.n(), &aug, &mut abuf).unwrap();
    (
        String::from_utf8(gbuf).unwrap(),
        String::from_utf8(tbuf).unwrap(),
        String::from_utf8(abuf).unwrap(),
    )
}

fn parse(format: TextFormat, text: &str) -> Result<(), SpsepError> {
    match format {
        TextFormat::Graph => spsep_graph::io::read_dimacs(text.as_bytes()).map(|_| ()),
        TextFormat::Tree => spsep_separator::io::read_tree(text.as_bytes()).map(|_| ()),
        TextFormat::Augmentation => {
            spsep_core::io::read_augmentation(text.as_bytes()).map(|_| ())
        }
    }
}

#[test]
fn catalog_has_at_least_ten_corruption_kinds() {
    assert!(text_corruptions().len() + instance_corruptions().len() >= 10);
}

#[test]
fn uncorrupted_texts_parse_cleanly() {
    // Control: the corruptions below prove something only if the
    // pristine serializations are accepted.
    let (g, t, a) = valid_texts();
    parse(TextFormat::Graph, &g).unwrap();
    parse(TextFormat::Tree, &t).unwrap();
    parse(TextFormat::Augmentation, &a).unwrap();
}

#[test]
fn every_text_corruption_is_rejected_with_a_typed_error() {
    let (gtext, ttext, atext) = valid_texts();
    for c in text_corruptions() {
        let source = match c.format {
            TextFormat::Graph => &gtext,
            TextFormat::Tree => &ttext,
            TextFormat::Augmentation => &atext,
        };
        let corrupted = (c.apply)(source);
        assert_ne!(
            &corrupted, source,
            "corruption '{}' did not change the text",
            c.name
        );
        let result = no_panic(c.name, || parse(c.format, &corrupted));
        let Err(err) = result else {
            panic!("corruption '{}' parsed successfully", c.name);
        };
        // Errors must be presentable (non-empty Display) and typed.
        assert!(!err.to_string().is_empty());
        match err {
            SpsepError::Parse { .. } | SpsepError::InvalidDecomposition { .. } => {}
            other => panic!("corruption '{}': unexpected error kind {other:?}", c.name),
        }
    }
}

#[test]
fn every_instance_corruption_degrades_without_panics_or_wrong_distances() {
    let metrics = Metrics::new();
    for inst in instance_corruptions() {
        no_panic(inst.name, || {
            let tree = match &inst.tree {
                // Caught at assembly: a typed error is an accepted
                // terminal outcome for a corrupted tree.
                Err(e) => {
                    assert!(
                        matches!(e, SpsepError::InvalidDecomposition { .. }),
                        "'{}': unexpected assembly error {e:?}",
                        inst.name
                    );
                    return;
                }
                Ok(t) => t,
            };
            match preprocess_or_fallback(&inst.graph, tree, &FallbackPolicy::default(), &metrics)
            {
                Err(err) => {
                    // The only acceptable hard error is an absorbing
                    // cycle — and then the instance really has one.
                    let SpsepError::AbsorbingCycle { witness } = &err else {
                        panic!("'{}': unexpected hard error {err:?}", inst.name);
                    };
                    assert!(
                        inst.absorbing,
                        "'{}': spurious absorbing-cycle report",
                        inst.name
                    );
                    assert!(!witness.is_empty(), "'{}': empty witness", inst.name);
                }
                Ok(prepared) => {
                    assert!(
                        !inst.absorbing,
                        "'{}': absorbing cycle was answered",
                        inst.name
                    );
                    // Whatever path was chosen, distances must agree
                    // with the Dijkstra oracle on the *actual* graph.
                    for source in [0usize, inst.graph.n() / 2, inst.graph.n() - 1] {
                        let got = prepared.distances(source, &metrics);
                        let oracle = dijkstra(&inst.graph, source).dist;
                        for v in 0..inst.graph.n() {
                            assert!(
                                (got[v] - oracle[v]).abs() < 1e-9
                                    || (got[v].is_infinite() && oracle[v].is_infinite()),
                                "'{}': distance mismatch at source {source}, vertex {v}: \
                                 got {} want {}",
                                inst.name,
                                got[v],
                                oracle[v]
                            );
                        }
                    }
                }
            }
        });
    }
}

#[test]
fn every_import_corruption_is_rejected_with_a_typed_error() {
    // The ingestion layer's contract (ISSUE 10): every malformed raw
    // road-network instance — DIMACS text, CSV edge list, or binary CSR
    // directory — is a typed `SpsepError`, never a panic.
    let tmp = std::env::temp_dir().join(format!("spsep-import-corrupt-{}", std::process::id()));
    for (i, c) in import_corruptions().into_iter().enumerate() {
        let result: Result<(), SpsepError> = no_panic(c.name, || match &c.input {
            ImportInput::Gr(text) => spsep_graph::io::read_dimacs(text.as_bytes()).map(|_| ()),
            ImportInput::Ss { text, n } => {
                spsep_graph::import::read_ss(text.as_bytes(), *n).map(|_| ())
            }
            ImportInput::Csv(text) => {
                spsep_graph::import::read_csv_edges(text.as_bytes()).map(|_| ())
            }
            ImportInput::CsrDir {
                first_out,
                head,
                weight,
            } => {
                let dir = tmp.join(format!("case-{i}"));
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(dir.join("first_out"), first_out).unwrap();
                std::fs::write(dir.join("head"), head).unwrap();
                std::fs::write(dir.join("weight"), weight).unwrap();
                spsep_graph::import::read_csr_dir(&dir).map(|_| ())
            }
        });
        let Err(err) = result else {
            panic!("import corruption '{}' parsed successfully", c.name);
        };
        assert!(!err.to_string().is_empty());
        match err {
            SpsepError::Parse { .. } => {}
            other => panic!(
                "import corruption '{}': unexpected error kind {other:?}",
                c.name
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn uncorrupted_import_inputs_parse_cleanly() {
    // Control for the corruption test above: pristine inputs in each of
    // the four raw formats are accepted by the same entry points.
    let gr = "p sp 3 3\na 1 2 1.5\na 2 3 2.0\na 3 1 0.5\n";
    let g = spsep_graph::io::read_dimacs(gr.as_bytes()).unwrap();
    assert_eq!((g.n(), g.m()), (3, 3));
    let sources = spsep_graph::import::read_ss("p aux sp ss 2\ns 1\ns 3\n".as_bytes(), 3).unwrap();
    assert_eq!(sources, vec![0, 2]);
    let csv = "from,to,weight\n0,1,1.5\n1,2,2.0\n2,0,0.5\n";
    let g = spsep_graph::import::read_csv_edges(csv.as_bytes()).unwrap();
    assert_eq!((g.n(), g.m()), (3, 3));
    let dir = std::env::temp_dir().join(format!("spsep-import-clean-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let le = |words: &[u32]| -> Vec<u8> { words.iter().flat_map(|w| w.to_le_bytes()).collect() };
    std::fs::write(dir.join("first_out"), le(&[0, 1, 2, 3])).unwrap();
    std::fs::write(dir.join("head"), le(&[1, 2, 0])).unwrap();
    std::fs::write(dir.join("weight"), le(&[15, 20, 5])).unwrap();
    let g = spsep_graph::import::read_csr_dir(&dir).unwrap();
    assert_eq!((g.n(), g.m()), (3, 3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_trees_that_assemble_are_caught_by_preflight_not_trusted() {
    // Every corrupted tree that survives try_assemble must be refused
    // by validate_instance (which is what forces the fallback above) —
    // otherwise the fast path would run on a broken decomposition.
    for inst in instance_corruptions() {
        if inst.absorbing {
            continue;
        }
        if let Ok(tree) = &inst.tree {
            let verdict = spsep_core::validate_instance(&inst.graph, tree);
            assert!(
                verdict.is_err(),
                "'{}': corrupted tree passed pre-flight validation",
                inst.name
            );
        }
    }
}
