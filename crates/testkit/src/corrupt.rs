//! The corruption catalog.
//!
//! Each corruption is *designed to be caught*: text corruptions must
//! make the targeted parser return a typed [`SpsepError`], and instance
//! corruptions must either fail [`SepTree::try_assemble`], trip the
//! [`spsep_core::validate_instance`] pre-flight (falling back to the
//! baselines), or be an absorbing cycle (a hard error on every path).
//! The fault-injection harness asserts exactly that, under
//! `catch_unwind`, and cross-checks all surviving distances against
//! Dijkstra.

use rand::SeedableRng;
use spsep_graph::{DiGraph, Edge, SpsepError};
use spsep_separator::{builders, RecursionLimits, SepTree};

/// Which serialization format a [`TextCorruption`] targets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TextFormat {
    /// `spsep_graph::io` DIMACS-style graphs (`p sp` / `a` records).
    Graph,
    /// `spsep_separator::io` decomposition trees (`st` / `i` / `l`).
    Tree,
    /// `spsep_core::io` augmentations (`ep` / `e` records).
    Augmentation,
}

/// A named, deterministic corruption of serialized text.
pub struct TextCorruption {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// Which parser must reject the output.
    pub format: TextFormat,
    /// The transformation, applied to a *valid* serialization.
    pub apply: fn(&str) -> String,
}

/// Replace whitespace-separated token `tok` on (0-based) line `line`.
fn set_token(text: &str, line: usize, tok: usize, value: &str) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    if let Some(l) = lines.get_mut(line) {
        let mut toks: Vec<&str> = l.split_whitespace().collect();
        if tok < toks.len() {
            toks[tok] = value;
        }
        *l = toks.join(" ");
    }
    lines.join("\n") + "\n"
}

/// Drop the final non-empty line (a cleanly truncated file).
fn drop_last_line(text: &str) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    lines[..lines.len().saturating_sub(1)].join("\n") + "\n"
}

/// 0-based index of the first line starting with `prefix`, and a token
/// count for it.
fn find_line(text: &str, prefix: &str) -> (usize, usize) {
    for (i, l) in text.lines().enumerate() {
        if l.starts_with(prefix) {
            return (i, l.split_whitespace().count());
        }
    }
    (0, 0)
}

/// All text-level corruptions. Every entry must make its target parser
/// return `Err(SpsepError::…)` when applied to a valid serialization of
/// an instance with at least one edge, one separator, and one shortcut.
pub fn text_corruptions() -> Vec<TextCorruption> {
    use TextFormat::*;
    vec![
        TextCorruption {
            name: "graph: truncated file (last arc missing)",
            format: Graph,
            apply: drop_last_line,
        },
        TextCorruption {
            name: "graph: out-of-range vertex id",
            format: Graph,
            apply: |t| set_token(t, 1, 1, "999999"),
        },
        TextCorruption {
            name: "graph: NaN weight",
            format: Graph,
            apply: |t| set_token(t, 1, 3, "NaN"),
        },
        TextCorruption {
            name: "graph: overflowing weight (1e999 → +inf)",
            format: Graph,
            apply: |t| set_token(t, 1, 3, "1e999"),
        },
        TextCorruption {
            name: "graph: header declares more arcs than present",
            format: Graph,
            apply: |t| set_token(t, 0, 3, "123456"),
        },
        TextCorruption {
            name: "graph: unknown record kind",
            format: Graph,
            apply: |t| set_token(t, 1, 0, "z"),
        },
        TextCorruption {
            name: "tree: truncated file (last node missing)",
            format: Tree,
            apply: drop_last_line,
        },
        TextCorruption {
            name: "tree: out-of-range vertex id in a leaf",
            format: Tree,
            apply: |t| {
                let (line, ntok) = find_line(t, "l ");
                set_token(t, line, ntok - 1, "999999")
            },
        },
        TextCorruption {
            name: "tree: second root (parent -1 on a non-root node)",
            format: Tree,
            apply: |t| set_token(t, 2, 1, "-1"),
        },
        TextCorruption {
            name: "tree: unknown record kind",
            format: Tree,
            apply: |t| set_token(t, 1, 0, "q"),
        },
        TextCorruption {
            name: "tree: header declares zero nodes",
            format: Tree,
            apply: |t| set_token(t, 0, 2, "0"),
        },
        TextCorruption {
            name: "augmentation: truncated file (last shortcut missing)",
            format: Augmentation,
            apply: drop_last_line,
        },
        TextCorruption {
            name: "augmentation: NaN shortcut weight",
            format: Augmentation,
            apply: |t| set_token(t, 1, 3, "NaN"),
        },
        TextCorruption {
            name: "augmentation: out-of-range endpoint",
            format: Augmentation,
            apply: |t| set_token(t, 1, 1, "999999"),
        },
        TextCorruption {
            name: "augmentation: header declares more shortcuts than present",
            format: Augmentation,
            apply: |t| set_token(t, 0, 2, "123456"),
        },
    ]
}

/// A structurally corrupted in-memory instance.
pub struct CorruptInstance {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// The (possibly damaged) graph. Weights stay nonnegative except in
    /// the absorbing-cycle instance, so Dijkstra is a valid oracle.
    pub graph: DiGraph<f64>,
    /// The (possibly damaged) tree — `Err` when the corruption is
    /// already caught at assembly, which is an accepted outcome.
    pub tree: Result<SepTree, SpsepError>,
    /// `true` when distances are undefined (an absorbing cycle was
    /// injected): the pipeline must *hard-error*, not fall back.
    pub absorbing: bool,
}

fn grid_instance(dims: [usize; 2], seed: u64) -> (DiGraph<f64>, SepTree) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    (g, tree)
}

/// All structural corruptions of `(graph, tree)` pairs.
pub fn instance_corruptions() -> Vec<CorruptInstance> {
    let mut out = Vec::new();

    // 1. Non-separating separator: delete a vertex from the root
    // separator. The vertex then belongs to no leaf and no separator.
    {
        let (g, tree) = grid_instance([9, 8], 70);
        let mut nodes = tree.nodes().to_vec();
        let sep_node = nodes
            .iter()
            .position(|t| !t.separator.is_empty())
            .unwrap_or(0);
        nodes[sep_node].separator.remove(0);
        out.push(CorruptInstance {
            name: "instance: separator vertex deleted (no longer separating)",
            graph: g,
            tree: SepTree::try_assemble(72, nodes),
            absorbing: false,
        });
    }

    // 2. Shuffled node levels (rotated by one): breaks the BFS-level
    // invariant the phase schedule depends on.
    {
        let (g, tree) = grid_instance([9, 8], 71);
        let mut nodes = tree.nodes().to_vec();
        let levels: Vec<u32> = nodes.iter().map(|t| t.level).collect();
        let k = nodes.len();
        for (i, t) in nodes.iter_mut().enumerate() {
            t.level = levels[(i + 1) % k];
        }
        out.push(CorruptInstance {
            name: "instance: node levels rotated",
            graph: g,
            tree: SepTree::try_assemble(72, nodes),
            absorbing: false,
        });
    }

    // 3. Root and deepest leaf swap levels.
    {
        let (g, tree) = grid_instance([9, 8], 72);
        let mut nodes = tree.nodes().to_vec();
        let deepest = nodes.len() - 1;
        nodes[0].level = nodes[deepest].level;
        nodes[deepest].level = 0;
        out.push(CorruptInstance {
            name: "instance: root and deepest node swap levels",
            graph: g,
            tree: SepTree::try_assemble(72, nodes),
            absorbing: false,
        });
    }

    // 4. Tree built for a different graph entirely.
    {
        let (g, _) = grid_instance([9, 8], 73);
        let wrong = builders::grid_tree(&[5, 5], RecursionLimits::default());
        out.push(CorruptInstance {
            name: "instance: decomposition of a smaller graph",
            graph: g,
            tree: Ok(wrong),
            absorbing: false,
        });
    }

    // 5. An edge the decomposition does not cover: the two far corners
    // of the grid live in disjoint subtrees. The fast path would route
    // around this edge and report a too-long distance; the pipeline
    // must fall back and answer from the raw graph.
    {
        let (g, tree) = grid_instance([9, 8], 74);
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(0, g.n() - 1, 0.01));
        out.push(CorruptInstance {
            name: "instance: edge crossing the decomposition",
            graph: DiGraph::from_edges(g.n(), edges),
            tree: Ok(tree),
            absorbing: false,
        });
    }

    // 6. Absorbing cycle: the reverse of an existing edge with a large
    // negative weight. Distances are undefined — hard error expected.
    {
        let (g, tree) = grid_instance([9, 8], 75);
        let e0 = g.edges()[0];
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(e0.to as usize, e0.from as usize, -1e6));
        out.push(CorruptInstance {
            name: "instance: absorbing (negative) cycle",
            graph: DiGraph::from_edges(g.n(), edges),
            tree: Ok(tree),
            absorbing: true,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_meets_the_coverage_floor() {
        // The robustness acceptance bar: at least 10 distinct
        // corruption kinds across both families.
        let total = text_corruptions().len() + instance_corruptions().len();
        assert!(total >= 10, "only {total} corruption kinds");
    }

    #[test]
    fn set_token_replaces_in_place() {
        let s = "p sp 2 1\na 1 2 0.5\n";
        assert_eq!(set_token(s, 1, 3, "NaN"), "p sp 2 1\na 1 2 NaN\n");
        assert_eq!(drop_last_line(s), "p sp 2 1\n");
    }
}
