//! The corruption catalog.
//!
//! Each corruption is *designed to be caught*: text corruptions must
//! make the targeted parser return a typed [`SpsepError`], and instance
//! corruptions must either fail [`SepTree::try_assemble`], trip the
//! [`spsep_core::validate_instance`] pre-flight (falling back to the
//! baselines), or be an absorbing cycle (a hard error on every path).
//! The fault-injection harness asserts exactly that, under
//! `catch_unwind`, and cross-checks all surviving distances against
//! Dijkstra.

use rand::SeedableRng;
use spsep_graph::{DiGraph, Edge, SpsepError};
use spsep_separator::{builders, RecursionLimits, SepTree};

/// Which serialization format a [`TextCorruption`] targets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TextFormat {
    /// `spsep_graph::io` DIMACS-style graphs (`p sp` / `a` records).
    Graph,
    /// `spsep_separator::io` decomposition trees (`st` / `i` / `l`).
    Tree,
    /// `spsep_core::io` augmentations (`ep` / `e` records).
    Augmentation,
}

/// A named, deterministic corruption of serialized text.
pub struct TextCorruption {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// Which parser must reject the output.
    pub format: TextFormat,
    /// The transformation, applied to a *valid* serialization.
    pub apply: fn(&str) -> String,
}

/// Replace whitespace-separated token `tok` on (0-based) line `line`.
fn set_token(text: &str, line: usize, tok: usize, value: &str) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    if let Some(l) = lines.get_mut(line) {
        let mut toks: Vec<&str> = l.split_whitespace().collect();
        if tok < toks.len() {
            toks[tok] = value;
        }
        *l = toks.join(" ");
    }
    lines.join("\n") + "\n"
}

/// Drop the final non-empty line (a cleanly truncated file).
fn drop_last_line(text: &str) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    lines[..lines.len().saturating_sub(1)].join("\n") + "\n"
}

/// 0-based index of the first line starting with `prefix`, and a token
/// count for it.
fn find_line(text: &str, prefix: &str) -> (usize, usize) {
    for (i, l) in text.lines().enumerate() {
        if l.starts_with(prefix) {
            return (i, l.split_whitespace().count());
        }
    }
    (0, 0)
}

/// All text-level corruptions. Every entry must make its target parser
/// return `Err(SpsepError::…)` when applied to a valid serialization of
/// an instance with at least one edge, one separator, and one shortcut.
pub fn text_corruptions() -> Vec<TextCorruption> {
    use TextFormat::*;
    vec![
        TextCorruption {
            name: "graph: truncated file (last arc missing)",
            format: Graph,
            apply: drop_last_line,
        },
        TextCorruption {
            name: "graph: out-of-range vertex id",
            format: Graph,
            apply: |t| set_token(t, 1, 1, "999999"),
        },
        TextCorruption {
            name: "graph: NaN weight",
            format: Graph,
            apply: |t| set_token(t, 1, 3, "NaN"),
        },
        TextCorruption {
            name: "graph: overflowing weight (1e999 → +inf)",
            format: Graph,
            apply: |t| set_token(t, 1, 3, "1e999"),
        },
        TextCorruption {
            name: "graph: header declares more arcs than present",
            format: Graph,
            apply: |t| set_token(t, 0, 3, "123456"),
        },
        TextCorruption {
            name: "graph: unknown record kind",
            format: Graph,
            apply: |t| set_token(t, 1, 0, "z"),
        },
        TextCorruption {
            name: "tree: truncated file (last node missing)",
            format: Tree,
            apply: drop_last_line,
        },
        TextCorruption {
            name: "tree: out-of-range vertex id in a leaf",
            format: Tree,
            apply: |t| {
                let (line, ntok) = find_line(t, "l ");
                set_token(t, line, ntok - 1, "999999")
            },
        },
        TextCorruption {
            name: "tree: second root (parent -1 on a non-root node)",
            format: Tree,
            apply: |t| set_token(t, 2, 1, "-1"),
        },
        TextCorruption {
            name: "tree: unknown record kind",
            format: Tree,
            apply: |t| set_token(t, 1, 0, "q"),
        },
        TextCorruption {
            name: "tree: header declares zero nodes",
            format: Tree,
            apply: |t| set_token(t, 0, 2, "0"),
        },
        TextCorruption {
            name: "augmentation: truncated file (last shortcut missing)",
            format: Augmentation,
            apply: drop_last_line,
        },
        TextCorruption {
            name: "augmentation: NaN shortcut weight",
            format: Augmentation,
            apply: |t| set_token(t, 1, 3, "NaN"),
        },
        TextCorruption {
            name: "augmentation: out-of-range endpoint",
            format: Augmentation,
            apply: |t| set_token(t, 1, 1, "999999"),
        },
        TextCorruption {
            name: "augmentation: header declares more shortcuts than present",
            format: Augmentation,
            apply: |t| set_token(t, 0, 2, "123456"),
        },
    ]
}

/// A named, deterministic corruption of a binary `spsep-oracle/v1`
/// snapshot (`spsep_core::io::snapshot_from_bytes`).
pub struct SnapshotCorruption {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// The transformation, applied to a *valid* snapshot of an instance
    /// with at least one edge and one shortcut.
    pub apply: fn(&[u8]) -> Vec<u8>,
}

/// Byte offset where the snapshot's section list begins:
/// 8 (magic) + 4 (version) + 4 (algorithm) + 4 (section count).
const SNAPSHOT_SECTIONS_AT: usize = 20;

/// Locate the `idx`-th section of a valid snapshot, apply `patch` to
/// its payload, and **fix the stored FNV-1a checksum** — a
/// checksum-consistent semantic patch that the integrity layer cannot
/// catch, so the section's own validators must.
fn patch_section(bytes: &[u8], idx: usize, patch: fn(&mut Vec<u8>)) -> Vec<u8> {
    let mut pos = SNAPSHOT_SECTIONS_AT;
    for _ in 0..idx {
        let len = section_len(bytes, pos);
        pos += 4 + 8 + 8 + len; // tag + length + checksum + payload
    }
    let len = section_len(bytes, pos);
    let payload_at = pos + 4 + 8 + 8;
    let mut payload = bytes[payload_at..payload_at + len].to_vec();
    patch(&mut payload);
    assert_eq!(payload.len(), len, "patches must preserve payload length");
    let mut out = bytes.to_vec();
    out[payload_at..payload_at + len].copy_from_slice(&payload);
    let sum = spsep_graph::bytes::fnv1a64(&payload);
    out[pos + 12..pos + 20].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Payload length of the section whose tag starts at `pos`.
fn section_len(bytes: &[u8], pos: usize) -> usize {
    let Ok(raw) = <[u8; 8]>::try_from(&bytes[pos + 4..pos + 12]) else {
        unreachable!("slice of length 8")
    };
    u64::from_le_bytes(raw) as usize
}

/// All snapshot-level corruptions. Every entry must make
/// `snapshot_from_bytes` return `Err(SpsepError::…)` — never panic,
/// never yield a usable oracle — when applied to a valid snapshot of an
/// instance with at least one edge and one shortcut.
pub fn snapshot_corruptions() -> Vec<SnapshotCorruption> {
    vec![
        SnapshotCorruption {
            name: "snapshot: empty file",
            apply: |_| Vec::new(),
        },
        SnapshotCorruption {
            name: "snapshot: truncated inside the header",
            apply: |b| b[..7.min(b.len())].to_vec(),
        },
        SnapshotCorruption {
            name: "snapshot: truncated mid-payload",
            apply: |b| b[..b.len() / 2].to_vec(),
        },
        SnapshotCorruption {
            name: "snapshot: trailer missing",
            apply: |b| b[..b.len() - 8].to_vec(),
        },
        SnapshotCorruption {
            name: "snapshot: last byte missing",
            apply: |b| b[..b.len() - 1].to_vec(),
        },
        SnapshotCorruption {
            name: "snapshot: bad magic",
            apply: |b| {
                let mut out = b.to_vec();
                out[0] = b'X';
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: version skew (v2 from the future)",
            apply: |b| {
                let mut out = b.to_vec();
                out[8..12].copy_from_slice(&2u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: version skew (v0)",
            apply: |b| {
                let mut out = b.to_vec();
                out[8..12].copy_from_slice(&0u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: unknown algorithm code",
            apply: |b| {
                let mut out = b.to_vec();
                out[12..16].copy_from_slice(&77u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: wrong section count",
            apply: |b| {
                let mut out = b.to_vec();
                out[16..20].copy_from_slice(&9u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: first section tag renamed",
            apply: |b| {
                let mut out = b.to_vec();
                out[SNAPSHOT_SECTIONS_AT..SNAPSHOT_SECTIONS_AT + 4].copy_from_slice(b"XXXX");
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: flipped payload byte (checksum mismatch)",
            apply: |b| {
                let mut out = b.to_vec();
                let mid = out.len() / 2;
                out[mid] ^= 0xff;
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: flipped stored checksum byte",
            apply: |b| {
                let mut out = b.to_vec();
                // Checksum of the first section lives right after its
                // tag (4) and length (8).
                out[SNAPSHOT_SECTIONS_AT + 12] ^= 0xff;
                out
            },
        },
        SnapshotCorruption {
            name: "snapshot: trailing garbage after the trailer",
            apply: |b| {
                let mut out = b.to_vec();
                out.push(0);
                out
            },
        },
        // Checksum-consistent semantic patches: the integrity layer is
        // deliberately defeated (patch_section recomputes the FNV-1a
        // sum), so the per-section validators are the last line of
        // defense.
        SnapshotCorruption {
            name: "snapshot: graph edge endpoint out of range (checksum fixed)",
            apply: |b| {
                patch_section(b, 0, |p| {
                    // graph payload: n u64 · m u64 · edges (from at 16).
                    p[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "snapshot: graph NaN weight (checksum fixed)",
            apply: |b| {
                patch_section(b, 0, |p| {
                    // First edge's weight at 16 + 8.
                    p[24..32].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "snapshot: tree vertex count mismatch (checksum fixed)",
            apply: |b| {
                patch_section(b, 1, |p| {
                    // tree payload: n u64 first — now disagrees with the
                    // graph section.
                    let Ok(raw) = <[u8; 8]>::try_from(&p[0..8]) else {
                        unreachable!("slice of length 8")
                    };
                    let n = u64::from_le_bytes(raw);
                    p[0..8].copy_from_slice(&(n + 1).to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "snapshot: shortcut endpoint out of range (checksum fixed)",
            apply: |b| {
                patch_section(b, 2, |p| {
                    // augmentation payload: d_g u32 · leaf u64 · raw u64
                    // · count u64 · shortcuts (from at 28).
                    p[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
    ]
}

// ---------------------------------------------------------------------
// spsep-oracle/v2 corruptions.
//
// The constants below mirror `spsep_core::iov2` but are written out
// independently, so the catalog exercises the v2 *specification* (the
// documented canonical layout) rather than whatever the writer happens
// to emit.
// ---------------------------------------------------------------------

/// v2 header: magic 8 + version 4 + algorithm 4 + section count 4 +
/// reserved 4.
const V2_HEADER_LEN: usize = 24;
/// Bytes per v2 section-table entry: tag 4 + pad 4 + offset 8 +
/// length 8 + checksum 8.
const V2_ENTRY_LEN: usize = 32;
/// Sections in a v2 snapshot.
const V2_SECTION_COUNT: usize = 14;
/// First byte past the section table (`24 + 14·32`).
const V2_TABLE_END: usize = V2_HEADER_LEN + V2_SECTION_COUNT * V2_ENTRY_LEN;
/// Section payloads are aligned to this boundary; the first payload
/// therefore starts at `pad₆₄(472) = 512`.
const V2_SECTION_ALIGN: usize = 64;

/// `(offset, length)` of the `idx`-th section, read from the table.
fn v2_entry(bytes: &[u8], idx: usize) -> (usize, usize) {
    let at = V2_HEADER_LEN + idx * V2_ENTRY_LEN;
    let word = |p: usize| {
        let Ok(raw) = <[u8; 8]>::try_from(&bytes[p..p + 8]) else {
            unreachable!("slice of length 8")
        };
        u64::from_le_bytes(raw) as usize
    };
    (word(at + 8), word(at + 16))
}

/// The byte positions where a v2 snapshot's slabs begin and end —
/// the natural truncation points beyond the per-header-byte sweep.
/// Parsed from a *valid* snapshot's own section table.
pub fn v2_section_bounds(bytes: &[u8]) -> Vec<(usize, usize)> {
    (0..V2_SECTION_COUNT).map(|i| v2_entry(bytes, i)).collect()
}

/// Patch the payload of v2 section `idx` in place and **fix the stored
/// FNV-1a checksum** — a checksum-consistent semantic patch that the
/// integrity layer cannot catch, so the per-section validators must.
fn patch_section_v2(bytes: &[u8], idx: usize, patch: fn(&mut Vec<u8>)) -> Vec<u8> {
    let (off, len) = v2_entry(bytes, idx);
    let mut payload = bytes[off..off + len].to_vec();
    patch(&mut payload);
    assert_eq!(payload.len(), len, "patches must preserve payload length");
    let mut out = bytes.to_vec();
    out[off..off + len].copy_from_slice(&payload);
    let sum = spsep_graph::bytes::fnv1a64(&payload);
    let sum_at = V2_HEADER_LEN + idx * V2_ENTRY_LEN + 24;
    out[sum_at..sum_at + 8].copy_from_slice(&sum.to_le_bytes());
    out
}

/// A checksum-consistent semantic patch of the **TREE** section
/// (the first node's kind byte set to an unassigned value).
///
/// Deliberately *not* part of [`snapshot_corruptions_v2`]: the v2
/// reader borrows the tree bytes opaquely — the oracle answers
/// distance queries without ever decoding them — so this patch loads
/// fine and must instead surface as a typed error from
/// `Oracle::save` (the first operation that decodes the tree). The
/// snapshot_v2 suite asserts exactly that split.
pub fn v2_tree_semantic_patch(bytes: &[u8]) -> Vec<u8> {
    patch_section_v2(bytes, 13, |p| {
        // Binary tree payload: n u64 · node count u64 · node 0
        // (parent u32 · kind u8 · …). Kind 7 is unassigned.
        p[20] = 7;
    })
}

/// All `spsep-oracle/v2` corruptions. Every entry must make
/// `Oracle::load` return `Err(SpsepError::…)` — never panic, never
/// yield a usable oracle — when applied to a valid v2 snapshot of an
/// instance with at least one edge, one shortcut, and one scheduled
/// arc. Section indices: META 0, AEDG 1, OOFF 2, OADJ 3, IOFF 4,
/// IADJ 5, LVLS 6, NORD 7, SEQN 8, BOFF 9, BSRC 10, BGRP 11, BARC 12,
/// TREE 13.
pub fn snapshot_corruptions_v2() -> Vec<SnapshotCorruption> {
    vec![
        SnapshotCorruption {
            name: "v2: empty file",
            apply: |_| Vec::new(),
        },
        SnapshotCorruption {
            name: "v2: truncated inside the magic",
            apply: |b| b[..7.min(b.len())].to_vec(),
        },
        SnapshotCorruption {
            name: "v2: truncated mid-table",
            apply: |b| b[..V2_HEADER_LEN + 5 * V2_ENTRY_LEN + 11].to_vec(),
        },
        SnapshotCorruption {
            name: "v2: truncated at the first payload boundary",
            apply: |b| {
                let first = V2_TABLE_END.div_ceil(V2_SECTION_ALIGN) * V2_SECTION_ALIGN;
                b[..first].to_vec()
            },
        },
        SnapshotCorruption {
            name: "v2: truncated mid-payload",
            apply: |b| b[..b.len() / 2].to_vec(),
        },
        SnapshotCorruption {
            name: "v2: trailer missing",
            apply: |b| b[..b.len() - 8].to_vec(),
        },
        SnapshotCorruption {
            name: "v2: last byte missing",
            apply: |b| b[..b.len() - 1].to_vec(),
        },
        SnapshotCorruption {
            name: "v2: trailing garbage after the trailer",
            apply: |b| {
                let mut out = b.to_vec();
                out.push(0);
                out
            },
        },
        SnapshotCorruption {
            name: "v2: bad magic",
            apply: |b| {
                let mut out = b.to_vec();
                out[0] = b'X';
                out
            },
        },
        SnapshotCorruption {
            name: "v2: version skew (v2 bytes relabeled v1)",
            apply: |b| {
                let mut out = b.to_vec();
                out[8..12].copy_from_slice(&1u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: version skew (v3 from the future)",
            apply: |b| {
                let mut out = b.to_vec();
                out[8..12].copy_from_slice(&3u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: unknown algorithm code",
            apply: |b| {
                let mut out = b.to_vec();
                out[12..16].copy_from_slice(&77u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: wrong section count",
            apply: |b| {
                let mut out = b.to_vec();
                out[16..20].copy_from_slice(&13u32.to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: nonzero reserved header word",
            apply: |b| {
                let mut out = b.to_vec();
                out[20] = 1;
                out
            },
        },
        SnapshotCorruption {
            name: "v2: first section tag renamed",
            apply: |b| {
                let mut out = b.to_vec();
                out[V2_HEADER_LEN..V2_HEADER_LEN + 4].copy_from_slice(b"XXXX");
                out
            },
        },
        SnapshotCorruption {
            name: "v2: nonzero section tag padding",
            apply: |b| {
                let mut out = b.to_vec();
                out[V2_HEADER_LEN + 4] = 0xab;
                out
            },
        },
        SnapshotCorruption {
            name: "v2: section offset shifted by one alignment unit",
            apply: |b| {
                let (off, _) = v2_entry(b, 1);
                let mut out = b.to_vec();
                let at = V2_HEADER_LEN + V2_ENTRY_LEN + 8;
                out[at..at + 8].copy_from_slice(&((off + V2_SECTION_ALIGN) as u64).to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: section offset misaligned by one byte",
            apply: |b| {
                let (off, _) = v2_entry(b, 2);
                let mut out = b.to_vec();
                let at = V2_HEADER_LEN + 2 * V2_ENTRY_LEN + 8;
                out[at..at + 8].copy_from_slice(&((off + 1) as u64).to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: section length inflated (canonical offsets disagree)",
            apply: |b| {
                let (_, len) = v2_entry(b, 1);
                let mut out = b.to_vec();
                let at = V2_HEADER_LEN + V2_ENTRY_LEN + 16;
                out[at..at + 8].copy_from_slice(&((len + 1) as u64).to_le_bytes());
                out
            },
        },
        SnapshotCorruption {
            name: "v2: tampered padding between table and first slab",
            apply: |b| {
                let mut out = b.to_vec();
                out[V2_TABLE_END] = 0xab;
                out
            },
        },
        SnapshotCorruption {
            name: "v2: flipped payload byte (checksum mismatch)",
            apply: |b| {
                let mut out = b.to_vec();
                let mid = out.len() / 2;
                out[mid] ^= 0xff;
                out
            },
        },
        SnapshotCorruption {
            name: "v2: flipped stored checksum byte",
            apply: |b| {
                let mut out = b.to_vec();
                out[V2_HEADER_LEN + 24] ^= 0xff;
                out
            },
        },
        // Checksum-consistent semantic patches (patch_section_v2
        // recomputes the FNV-1a sum): the slab validators are the last
        // line of defense.
        SnapshotCorruption {
            name: "v2: META bucket count off by one (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 0, |p| {
                    // num_buckets u64 at offset 64.
                    let Ok(raw) = <[u8; 8]>::try_from(&p[64..72]) else {
                        unreachable!("slice of length 8")
                    };
                    let nb = u64::from_le_bytes(raw);
                    p[64..72].copy_from_slice(&(nb + 1).to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: AEDG edge endpoint out of range (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 1, |p| {
                    // Edge { from u32, to u32, w f64 }: from at 0.
                    p[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: AEDG NaN weight (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 1, |p| {
                    p[8..16].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: OOFF offsets do not start at zero (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 2, |p| {
                    p[0..4].copy_from_slice(&1u32.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: LVLS level exceeds d_G (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 6, |p| {
                    // Large but not the UNDEFINED_LEVEL sentinel.
                    p[0..4].copy_from_slice(&0x7fff_0000u32.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: NORD duplicate rank — not a permutation (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 7, |p| {
                    let (dst, src) = p.split_at_mut(4);
                    dst.copy_from_slice(&src[0..4]);
                })
            },
        },
        SnapshotCorruption {
            name: "v2: SEQN phase references a bucket out of range (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 8, |p| {
                    p[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: BOFF row does not start at zero (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 9, |p| {
                    p[0..8].copy_from_slice(&1u64.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: BSRC source vertex out of range (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 10, |p| {
                    p[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: BGRP group bounds break the arc partition (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 11, |p| {
                    // Group { target u32, start u32, end u32 }: start at 4.
                    p[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: BARC arc slot out of range (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 12, |p| {
                    // ArcRec { slot u32, id u32, w f64 }: slot at 0.
                    p[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
                })
            },
        },
        SnapshotCorruption {
            name: "v2: BARC arc weight disagrees with its edge (checksum fixed)",
            apply: |b| {
                patch_section_v2(b, 12, |p| {
                    // Flip the sign bit of the first arc's weight: the
                    // arc/edge cross-check must notice even though the
                    // checksum is consistent.
                    p[15] ^= 0x80;
                })
            },
        },
    ]
}

/// A structurally corrupted in-memory instance.
pub struct CorruptInstance {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// The (possibly damaged) graph. Weights stay nonnegative except in
    /// the absorbing-cycle instance, so Dijkstra is a valid oracle.
    pub graph: DiGraph<f64>,
    /// The (possibly damaged) tree — `Err` when the corruption is
    /// already caught at assembly, which is an accepted outcome.
    pub tree: Result<SepTree, SpsepError>,
    /// `true` when distances are undefined (an absorbing cycle was
    /// injected): the pipeline must *hard-error*, not fall back.
    pub absorbing: bool,
}

fn grid_instance(dims: [usize; 2], seed: u64) -> (DiGraph<f64>, SepTree) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    (g, tree)
}

/// All structural corruptions of `(graph, tree)` pairs.
pub fn instance_corruptions() -> Vec<CorruptInstance> {
    let mut out = Vec::new();

    // 1. Non-separating separator: delete a vertex from the root
    // separator. The vertex then belongs to no leaf and no separator.
    {
        let (g, tree) = grid_instance([9, 8], 70);
        let mut nodes = tree.nodes().to_vec();
        let sep_node = nodes
            .iter()
            .position(|t| !t.separator.is_empty())
            .unwrap_or(0);
        nodes[sep_node].separator.remove(0);
        out.push(CorruptInstance {
            name: "instance: separator vertex deleted (no longer separating)",
            graph: g,
            tree: SepTree::try_assemble(72, nodes),
            absorbing: false,
        });
    }

    // 2. Shuffled node levels (rotated by one): breaks the BFS-level
    // invariant the phase schedule depends on.
    {
        let (g, tree) = grid_instance([9, 8], 71);
        let mut nodes = tree.nodes().to_vec();
        let levels: Vec<u32> = nodes.iter().map(|t| t.level).collect();
        let k = nodes.len();
        for (i, t) in nodes.iter_mut().enumerate() {
            t.level = levels[(i + 1) % k];
        }
        out.push(CorruptInstance {
            name: "instance: node levels rotated",
            graph: g,
            tree: SepTree::try_assemble(72, nodes),
            absorbing: false,
        });
    }

    // 3. Root and deepest leaf swap levels.
    {
        let (g, tree) = grid_instance([9, 8], 72);
        let mut nodes = tree.nodes().to_vec();
        let deepest = nodes.len() - 1;
        nodes[0].level = nodes[deepest].level;
        nodes[deepest].level = 0;
        out.push(CorruptInstance {
            name: "instance: root and deepest node swap levels",
            graph: g,
            tree: SepTree::try_assemble(72, nodes),
            absorbing: false,
        });
    }

    // 4. Tree built for a different graph entirely.
    {
        let (g, _) = grid_instance([9, 8], 73);
        let wrong = builders::grid_tree(&[5, 5], RecursionLimits::default());
        out.push(CorruptInstance {
            name: "instance: decomposition of a smaller graph",
            graph: g,
            tree: Ok(wrong),
            absorbing: false,
        });
    }

    // 5. An edge the decomposition does not cover: the two far corners
    // of the grid live in disjoint subtrees. The fast path would route
    // around this edge and report a too-long distance; the pipeline
    // must fall back and answer from the raw graph.
    {
        let (g, tree) = grid_instance([9, 8], 74);
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(0, g.n() - 1, 0.01));
        out.push(CorruptInstance {
            name: "instance: edge crossing the decomposition",
            graph: DiGraph::from_edges(g.n(), edges),
            tree: Ok(tree),
            absorbing: false,
        });
    }

    // 6. Absorbing cycle: the reverse of an existing edge with a large
    // negative weight. Distances are undefined — hard error expected.
    {
        let (g, tree) = grid_instance([9, 8], 75);
        let e0 = g.edges()[0];
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(e0.to as usize, e0.from as usize, -1e6));
        out.push(CorruptInstance {
            name: "instance: absorbing (negative) cycle",
            graph: DiGraph::from_edges(g.n(), edges),
            tree: Ok(tree),
            absorbing: true,
        });
    }

    out
}

/// How the query daemon must react to a [`WireCorruption`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WireExpectation {
    /// Payload-level damage inside an intact frame: the daemon answers
    /// a typed `Parse` error **and the connection keeps serving** —
    /// a follow-up request on the same connection succeeds.
    TypedErrorKeepsConnection,
    /// Framing-level damage: a typed error response, a clean close, or
    /// both (error then close). Never a panic, never a hang.
    TypedErrorOrClose,
    /// Pipelined damage after a valid request: the valid request is
    /// answered normally first, then the damage yields a typed error
    /// or a clean close.
    AnswerThenTypedErrorOrClose,
}

/// A named, deterministic corruption of the daemon wire protocol.
///
/// The byte sequences are built by hand — independently of
/// `spsep-serve`'s codec — so the catalog tests the protocol's
/// *specification* (u32 LE length prefix, then `u8` opcode + body)
/// rather than whatever the implementation happens to emit.
/// `spsep-testkit`'s wire suite drives every entry against a live
/// daemon under a watchdog.
pub struct WireCorruption {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// The bytes to put on the wire, verbatim.
    pub bytes: fn() -> Vec<u8>,
    /// Half-close the write side after sending — a mid-stream
    /// disconnect as the daemon sees it.
    pub disconnect_after: bool,
    /// The only acceptable daemon reactions.
    pub expect: WireExpectation,
}

/// A valid `Ping` frame, hand-assembled: length 1, opcode 0x01.
fn ping_frame() -> Vec<u8> {
    vec![1, 0, 0, 0, 0x01]
}

/// Wrap `payload` in a length prefix.
fn wire_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

/// All wire-protocol corruptions. Every entry must leave the daemon
/// alive and every other connection unaffected: the reaction is a
/// typed error response or a clean close — never a panic, never a hung
/// connection, never a corrupted answer to anyone else.
pub fn wire_corruptions() -> Vec<WireCorruption> {
    use WireExpectation::*;
    vec![
        WireCorruption {
            name: "wire: truncated frame, then disconnect (7 of 64 promised bytes)",
            bytes: || {
                let mut b = 64u32.to_le_bytes().to_vec();
                b.extend_from_slice(&[0x03; 7]);
                b
            },
            disconnect_after: true,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: partial length prefix, then disconnect",
            bytes: || vec![0x10, 0x00],
            disconnect_after: true,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: length prefix only, no payload, then disconnect",
            bytes: || 16u32.to_le_bytes().to_vec(),
            disconnect_after: true,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: oversized length prefix (u32::MAX)",
            bytes: || u32::MAX.to_le_bytes().to_vec(),
            disconnect_after: false,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: length prefix just past the 1 MiB frame bound",
            bytes: || ((1u32 << 20) + 1).to_le_bytes().to_vec(),
            disconnect_after: false,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: zero-length frame",
            bytes: || 0u32.to_le_bytes().to_vec(),
            disconnect_after: false,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: unassigned request opcode, well framed",
            bytes: || wire_frame(&[0xee]),
            disconnect_after: false,
            expect: TypedErrorKeepsConnection,
        },
        WireCorruption {
            name: "wire: response opcode sent as a request",
            bytes: || wire_frame(&[0x41]),
            disconnect_after: false,
            expect: TypedErrorKeepsConnection,
        },
        WireCorruption {
            name: "wire: trailing garbage inside a well-framed ping",
            bytes: || wire_frame(&[0x01, 0xaa, 0xbb]),
            disconnect_after: false,
            expect: TypedErrorKeepsConnection,
        },
        WireCorruption {
            name: "wire: truncated point request body (4 of 16 field bytes)",
            bytes: || wire_frame(&[0x03, 1, 0, 0, 0]),
            disconnect_after: false,
            expect: TypedErrorKeepsConnection,
        },
        WireCorruption {
            name: "wire: batch declaring u32::MAX pairs in a tiny frame",
            bytes: || {
                let mut p = vec![0x05];
                p.extend_from_slice(&u32::MAX.to_le_bytes());
                wire_frame(&p)
            },
            disconnect_after: false,
            expect: TypedErrorKeepsConnection,
        },
        WireCorruption {
            name: "wire: raw garbage burst (framing never establishes)",
            bytes: || vec![0xaa; 4096],
            disconnect_after: true,
            expect: TypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: pipelined garbage after a valid ping",
            bytes: || {
                let mut b = ping_frame();
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b
            },
            disconnect_after: false,
            expect: AnswerThenTypedErrorOrClose,
        },
        WireCorruption {
            name: "wire: valid ping, then mid-frame disconnect",
            bytes: || {
                let mut b = ping_frame();
                b.extend_from_slice(&64u32.to_le_bytes());
                b.extend_from_slice(&[0x01; 5]);
                b
            },
            disconnect_after: true,
            expect: AnswerThenTypedErrorOrClose,
        },
    ]
}

// ---------------------------------------------------------------------------
// Import corruptions (raw road-network ingestion, ISSUE 10)
// ---------------------------------------------------------------------------

/// Which `spsep_graph::import` entry point must reject the payload.
pub enum ImportInput {
    /// DIMACS `.gr` text → `spsep_graph::io::read_dimacs`.
    Gr(&'static str),
    /// DIMACS `.ss` auxiliary source text → `import::read_ss` with the
    /// given vertex count.
    Ss {
        /// The malformed file body.
        text: &'static str,
        /// The graph's vertex count the sources are validated against.
        n: usize,
    },
    /// CSV edge list → `import::read_csv_edges`.
    Csv(&'static str),
    /// Binary CSR directory → `import::read_csr_dir` (the driver
    /// materializes the three files in a temp directory).
    CsrDir {
        /// `first_out` file bytes.
        first_out: Vec<u8>,
        /// `head` file bytes.
        head: Vec<u8>,
        /// `weight` file bytes.
        weight: Vec<u8>,
    },
}

/// A named malformed raw instance for the ingestion layer.
pub struct ImportCorruption {
    /// Stable identifier (used in assertion messages).
    pub name: &'static str,
    /// The hostile payload and the parser it targets.
    pub input: ImportInput,
}

/// Little-endian `u32` array file bytes for CSR corruption entries.
fn le_words(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Malformed raw road-network instances, one per failure class the
/// ingestion layer must reject with a typed [`SpsepError`] — never a
/// panic, never a silently wrong graph. Classes per ISSUE 10: malformed
/// headers, arc-count lies, overflowing ids, NaN/negative weights, and
/// truncations, for every supported container (`.gr`, `.ss`, CSV,
/// binary CSR directory). Driven by `tests/fault_injection.rs`.
///
/// [`SpsepError`]: spsep_core::SpsepError
pub fn import_corruptions() -> Vec<ImportCorruption> {
    use ImportInput::*;
    vec![
        // -- DIMACS .gr: headers ------------------------------------------
        ImportCorruption {
            name: "gr: missing problem line",
            input: Gr("c no header\n"),
        },
        ImportCorruption {
            name: "gr: duplicate problem line",
            input: Gr("p sp 2 1\np sp 2 1\na 1 2 1\n"),
        },
        ImportCorruption {
            name: "gr: wrong problem magic",
            input: Gr("p max 2 1\na 1 2 1\n"),
        },
        ImportCorruption {
            name: "gr: non-numeric vertex count",
            input: Gr("p sp two 1\na 1 2 1\n"),
        },
        ImportCorruption {
            name: "gr: truncated header (missing arc count)",
            input: Gr("p sp 2\na 1 2 1\n"),
        },
        // -- DIMACS .gr: arc records --------------------------------------
        ImportCorruption {
            name: "gr: arc before problem line",
            input: Gr("a 1 2 1\np sp 2 1\n"),
        },
        ImportCorruption {
            name: "gr: arc-count lie (fewer arcs than declared)",
            input: Gr("p sp 2 2\na 1 2 1\n"),
        },
        ImportCorruption {
            name: "gr: arc-count lie (more arcs than declared)",
            input: Gr("p sp 2 1\na 1 2 1\na 2 1 1\n"),
        },
        ImportCorruption {
            name: "gr: vertex id 0 (ids are 1-based)",
            input: Gr("p sp 2 1\na 0 2 1\n"),
        },
        ImportCorruption {
            name: "gr: vertex id beyond n",
            input: Gr("p sp 2 1\na 1 3 1\n"),
        },
        ImportCorruption {
            name: "gr: vertex id overflowing u64",
            input: Gr("p sp 2 1\na 1 99999999999999999999999999 1\n"),
        },
        ImportCorruption {
            name: "gr: NaN weight",
            input: Gr("p sp 2 1\na 1 2 NaN\n"),
        },
        ImportCorruption {
            name: "gr: infinite weight",
            input: Gr("p sp 2 1\na 1 2 inf\n"),
        },
        ImportCorruption {
            name: "gr: truncated arc record (missing weight)",
            input: Gr("p sp 2 1\na 1 2\n"),
        },
        ImportCorruption {
            name: "gr: unknown record kind",
            input: Gr("p sp 2 1\nz 1 2 1\na 1 2 1\n"),
        },
        // -- DIMACS .ss ---------------------------------------------------
        ImportCorruption {
            name: "ss: missing problem line",
            input: Ss {
                text: "s 1\n",
                n: 10,
            },
        },
        ImportCorruption {
            name: "ss: duplicate problem line",
            input: Ss {
                text: "p aux sp ss 1\np aux sp ss 1\ns 1\n",
                n: 10,
            },
        },
        ImportCorruption {
            name: "ss: malformed header magic",
            input: Ss {
                text: "p sp ss 1\ns 1\n",
                n: 10,
            },
        },
        ImportCorruption {
            name: "ss: source-count lie (truncation)",
            input: Ss {
                text: "p aux sp ss 3\ns 1\ns 2\n",
                n: 10,
            },
        },
        ImportCorruption {
            name: "ss: source id 0 (ids are 1-based)",
            input: Ss {
                text: "p aux sp ss 1\ns 0\n",
                n: 10,
            },
        },
        ImportCorruption {
            name: "ss: source id beyond n",
            input: Ss {
                text: "p aux sp ss 1\ns 11\n",
                n: 10,
            },
        },
        ImportCorruption {
            name: "ss: unknown record kind",
            input: Ss {
                text: "p aux sp ss 1\ns 1\nq 2\n",
                n: 10,
            },
        },
        // -- CSV edge lists -----------------------------------------------
        ImportCorruption {
            name: "csv: truncated record (missing weight field)",
            input: Csv("0,1\n"),
        },
        ImportCorruption {
            name: "csv: trailing extra field",
            input: Csv("0,1,2.0,bogus\n"),
        },
        ImportCorruption {
            name: "csv: non-numeric vertex id",
            input: Csv("a,1,2.0\n"),
        },
        ImportCorruption {
            name: "csv: vertex id overflowing u32",
            input: Csv("0,4294967295,2.0\n"),
        },
        ImportCorruption {
            name: "csv: NaN weight",
            input: Csv("0,1,NaN\n"),
        },
        ImportCorruption {
            name: "csv: negative travel time",
            input: Csv("0,1,-4.5\n"),
        },
        // -- Binary CSR directories ---------------------------------------
        ImportCorruption {
            name: "csr: truncated first_out (not a multiple of 4 bytes)",
            input: CsrDir {
                first_out: vec![0, 0, 0],
                head: le_words(&[]),
                weight: le_words(&[]),
            },
        },
        ImportCorruption {
            name: "csr: empty first_out",
            input: CsrDir {
                first_out: le_words(&[]),
                head: le_words(&[]),
                weight: le_words(&[]),
            },
        },
        ImportCorruption {
            name: "csr: arc-count lie (head shorter than declared)",
            input: CsrDir {
                first_out: le_words(&[0, 2, 3]),
                head: le_words(&[1, 0]),
                weight: le_words(&[10, 20, 30]),
            },
        },
        ImportCorruption {
            name: "csr: head id beyond n",
            input: CsrDir {
                first_out: le_words(&[0, 1, 2]),
                head: le_words(&[1, 7]),
                weight: le_words(&[10, 20]),
            },
        },
        ImportCorruption {
            name: "csr: non-monotone first_out",
            input: CsrDir {
                first_out: le_words(&[0, 2, 1]),
                head: le_words(&[1]),
                weight: le_words(&[10]),
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_meets_the_coverage_floor() {
        // The robustness acceptance bar: at least 10 distinct
        // corruption kinds across both families.
        let total = text_corruptions().len() + instance_corruptions().len();
        assert!(total >= 10, "only {total} corruption kinds");
    }

    #[test]
    fn set_token_replaces_in_place() {
        let s = "p sp 2 1\na 1 2 0.5\n";
        assert_eq!(set_token(s, 1, 3, "NaN"), "p sp 2 1\na 1 2 NaN\n");
        assert_eq!(drop_last_line(s), "p sp 2 1\n");
    }

    #[test]
    fn wire_catalog_covers_every_corruption_class() {
        let catalog = wire_corruptions();
        assert!(catalog.len() >= 10, "only {} wire corruptions", catalog.len());
        // Truncation, oversize, bad opcode, disconnect, and pipelining
        // must all be represented (the classes ISSUE 6 names).
        for class in ["truncated", "oversized", "opcode", "disconnect", "pipelined"] {
            assert!(
                catalog.iter().any(|c| c.name.contains(class)),
                "no wire corruption covers '{class}'"
            );
        }
        let mut names = std::collections::HashSet::new();
        for c in &catalog {
            assert!(names.insert(c.name), "duplicate corruption name {}", c.name);
            assert!(!(c.bytes)().is_empty() || c.disconnect_after);
        }
    }

    #[test]
    fn import_catalog_covers_every_format_and_class() {
        let catalog = import_corruptions();
        assert!(catalog.len() >= 25, "only {} import corruptions", catalog.len());
        let mut names = std::collections::HashSet::new();
        for c in &catalog {
            assert!(names.insert(c.name), "duplicate corruption name {}", c.name);
        }
        // All four raw formats must be represented...
        for prefix in ["gr:", "ss:", "csv:", "csr:"] {
            assert!(
                catalog.iter().any(|c| c.name.starts_with(prefix)),
                "no import corruption covers format '{prefix}'"
            );
        }
        // ...and each corruption class ISSUE 10 names.
        for class in ["header", "count", "overflow", "NaN", "negative", "truncated"] {
            assert!(
                catalog.iter().any(|c| c.name.contains(class)),
                "no import corruption covers class '{class}'"
            );
        }
    }
}
