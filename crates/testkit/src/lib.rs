//! Fault-injection toolkit for the `spsep` pipeline.
//!
//! The robustness contract of the workspace is: **every** malformed
//! input — a truncated file, an out-of-range id, a NaN weight, a
//! decomposition that does not actually separate — yields a typed
//! [`SpsepError`](spsep_core::SpsepError) or a recorded fallback to the
//! baselines, and *never*
//! a panic or a silently wrong distance. This crate provides the
//! corruptions; `tests/fault_injection.rs` drives them through the
//! parsers and [`spsep_core::preprocess_or_fallback`] under
//! `catch_unwind` and cross-checks every surviving distance against
//! Dijkstra.
//!
//! Two corruption families:
//!
//! * [`corrupt::text_corruptions`] — byte/token-level damage to the
//!   three serialization formats (`spsep_graph::io`,
//!   `spsep_separator::io`, `spsep_core::io`), applied to a *valid*
//!   serialized instance;
//! * [`corrupt::instance_corruptions`] — structural damage to in-memory
//!   `(graph, tree)` pairs: non-separating separators, shuffled node
//!   levels, size mismatches, absorbing cycles.
//!
//! A third family targets the binary serving artifact:
//!
//! * [`corrupt::snapshot_corruptions`] — damage to `spsep-oracle/v1`
//!   snapshots (truncation at several depths, bad magic, version skew,
//!   flipped payload and checksum bytes, and checksum-*consistent*
//!   semantic patches that defeat the integrity layer so the section
//!   validators must catch them). Driven by `tests/oracle.rs`.
//!
//! * [`corrupt::wire_corruptions`] — damage to the query daemon's
//!   framed TCP protocol (truncated frames, oversized length prefixes,
//!   unassigned opcodes, mid-frame disconnects, pipelined garbage),
//!   each annotated with the only acceptable daemon reactions. Driven
//!   against a *live* daemon by `tests/wire.rs`, watchdogged.
//!
//! * [`corrupt::import_corruptions`] — malformed *raw* road-network
//!   instances for the `spsep_graph::import` ingestion layer (DIMACS
//!   `.gr`/`.ss`, CSV edge lists, binary CSR directories): malformed
//!   headers, arc-count lies, overflowing ids, NaN/negative weights,
//!   truncations. Driven by `tests/fault_injection.rs`.

pub mod corrupt;

pub use corrupt::{
    import_corruptions, instance_corruptions, snapshot_corruptions, snapshot_corruptions_v2,
    text_corruptions, v2_section_bounds, v2_tree_semantic_patch, wire_corruptions,
    CorruptInstance, ImportCorruption, ImportInput, SnapshotCorruption, TextCorruption,
    TextFormat, WireCorruption, WireExpectation,
};
