//! Fault-injection toolkit for the `spsep` pipeline.
//!
//! The robustness contract of the workspace is: **every** malformed
//! input — a truncated file, an out-of-range id, a NaN weight, a
//! decomposition that does not actually separate — yields a typed
//! [`SpsepError`] or a recorded fallback to the baselines, and *never*
//! a panic or a silently wrong distance. This crate provides the
//! corruptions; `tests/fault_injection.rs` drives them through the
//! parsers and [`spsep_core::preprocess_or_fallback`] under
//! `catch_unwind` and cross-checks every surviving distance against
//! Dijkstra.
//!
//! Two corruption families:
//!
//! * [`corrupt::text_corruptions`] — byte/token-level damage to the
//!   three serialization formats (`spsep_graph::io`,
//!   `spsep_separator::io`, `spsep_core::io`), applied to a *valid*
//!   serialized instance;
//! * [`corrupt::instance_corruptions`] — structural damage to in-memory
//!   `(graph, tree)` pairs: non-separating separators, shuffled node
//!   levels, size mismatches, absorbing cycles.

pub mod corrupt;

pub use corrupt::{
    instance_corruptions, text_corruptions, CorruptInstance, TextCorruption, TextFormat,
};
