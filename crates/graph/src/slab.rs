//! Zero-copy typed slabs over aligned byte buffers (the mmap substrate).
//!
//! The `spsep-oracle/v2` snapshot format stores the oracle's flat CSR
//! arrays as aligned little-endian sections that can be *borrowed*
//! straight out of a memory-mapped file instead of decoded element by
//! element. This module provides the three layers that make that sound:
//!
//! * [`SlabBytes`] — an immutable byte buffer whose base address is
//!   guaranteed 8-aligned: either an owned copy (backed by a `Vec<u64>`)
//!   or a read-only memory mapping of a file ([`SlabBytes::map_file`]).
//! * [`Slab<T>`] — a typed, bounds- and alignment-checked view of a
//!   byte range of a shared [`SlabBytes`], exposing `&[T]` for
//!   plain-old-data element types ([`Pod`]).
//! * [`Store<T>`] — either a plain `Vec<T>` or a [`Slab<T>`], behind
//!   `Deref<Target = [T]>`, so data structures like
//!   [`DiGraph`](crate::DiGraph) can be backed by a snapshot without
//!   changing any call-site that reads them as slices.
//!
//! # Safety design
//!
//! All `unsafe` in the mmap/borrow path lives in this module, which is
//! compiled under `deny(unsafe_op_in_unsafe_fn)`. The invariants:
//!
//! * a [`SlabBytes`] base pointer is always 8-aligned and non-null
//!   (a `Vec<u64>` allocation, or a page-aligned mapping);
//! * the buffer is immutable for the lifetime of the value — no `&mut`
//!   access exists anywhere, and mapped files use `PROT_READ`;
//! * [`Slab::new`] is the only constructor and re-checks, with typed
//!   [`SpsepError`]s (never panics), that the requested byte range is
//!   in bounds and that its offset is a multiple of the element
//!   alignment, so the later `&[T]` reborrow in `Slab::as_slice` needs
//!   no per-call validation;
//! * [`Pod`] element types guarantee every bit pattern is a valid value
//!   and that the type has no padding, so reading them out of an
//!   attacker-controlled file can produce *wrong* values but never
//!   undefined behavior. Semantic validation (index ranges, NaN
//!   checks, monotone offsets) is the snapshot reader's job.
//!
//! The one hazard that cannot be checked in-process: if another process
//! truncates a file while it is mapped, touching the vanished pages
//! raises `SIGBUS` (standard mmap semantics, shared with every mmap
//! consumer). Snapshot files are written once and then immutable by
//! convention; the daemon documents this operational invariant.

use std::fmt;
use std::fs::File;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::digraph::Edge;
use crate::error::SpsepError;

/// Cache-line alignment of [`AlignedVec`] allocations: one x86 cache
/// line, and the natural alignment of an AVX-512 register, so every
/// matrix row that starts at a multiple of 8 elements begins on an
/// aligned line.
pub const CACHE_LINE: usize = 64;

/// A growable buffer of `Copy` elements whose base address is always
/// [`CACHE_LINE`]-aligned (64 bytes).
///
/// [`SlabBytes`] gives snapshot readers an 8-aligned substrate; this is
/// the write-side counterpart for the dense kernels: `SemiMatrix` routes
/// its row storage through it so SIMD loads start from cache-line-aligned
/// rows and a row tile never straddles an extra line. The API is the
/// subset of `Vec` the kernels use (`clear`/`resize`/`capacity` plus
/// slice access through `Deref`); elements must be `Copy`, so there are
/// no drop obligations.
pub struct AlignedVec<T: Copy> {
    ptr: std::ptr::NonNull<T>,
    cap: usize,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively (no aliasing); it
// is a Vec with a stricter alignment, so Send/Sync follow T's.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
// SAFETY: see above.
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Empty buffer; allocates nothing until the first `resize`.
    pub const fn new() -> Self {
        AlignedVec {
            ptr: std::ptr::NonNull::dangling(),
            cap: 0,
            len: 0,
        }
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        let bytes = cap
            .checked_mul(std::mem::size_of::<T>())
            .unwrap_or_else(|| panic!("AlignedVec capacity overflow: {cap} elements"));
        match std::alloc::Layout::from_size_align(bytes, CACHE_LINE.max(std::mem::align_of::<T>()))
        {
            Ok(l) => l,
            // 64 is a power of two and the size was overflow-checked.
            Err(_) => unreachable!("valid AlignedVec layout"),
        }
    }

    /// Grow the allocation to hold at least `min_cap` elements,
    /// preserving the first `len` elements. No-op when already large
    /// enough.
    fn grow_to(&mut self, min_cap: usize) {
        if min_cap <= self.cap || std::mem::size_of::<T>() == 0 {
            return;
        }
        let new_cap = min_cap.max(self.cap * 2);
        let new_layout = Self::layout(new_cap);
        // SAFETY: layout has non-zero size (size_of::<T> > 0 and
        // new_cap >= min_cap > cap >= 0, so new_cap >= 1).
        let raw = unsafe { std::alloc::alloc(new_layout) };
        let Some(new_ptr) = std::ptr::NonNull::new(raw.cast::<T>()) else {
            std::alloc::handle_alloc_error(new_layout);
        };
        if self.cap > 0 {
            // SAFETY: both pointers are valid for `len <= cap <= new_cap`
            // elements and belong to distinct allocations.
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                std::alloc::dealloc(self.ptr.as_ptr().cast::<u8>(), Self::layout(self.cap));
            }
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drop all elements (keeps the allocation).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resize to `n` elements, filling any new tail slots with `value`.
    pub fn resize(&mut self, n: usize, value: T) {
        self.grow_to(n);
        if n > self.len {
            // SAFETY: `grow_to` guaranteed capacity >= n; slots
            // `len..n` are in bounds of the allocation.
            unsafe {
                for i in self.len..n {
                    self.ptr.as_ptr().add(i).write(value);
                }
            }
        }
        self.len = n;
    }

    /// Fresh buffer holding a copy of `src`.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = AlignedVec::new();
        v.grow_to(src.len());
        if !src.is_empty() {
            // SAFETY: capacity >= src.len(), distinct allocations.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), v.ptr.as_ptr(), src.len());
            }
        }
        v.len = src.len();
        v
    }

    /// The elements as a slice. The base pointer is 64-byte aligned.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr` is valid for `len` initialized elements
        // (resize/from_slice wrote them); dangling-but-aligned when
        // len == 0, which from_raw_parts permits.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: see `as_slice`; `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.cap > 0 && std::mem::size_of::<T>() > 0 {
            // SAFETY: the allocation was made with exactly this layout;
            // T: Copy, so no element drops are owed.
            unsafe {
                std::alloc::dealloc(self.ptr.as_ptr().cast::<u8>(), Self::layout(self.cap));
            }
        }
    }
}

impl<T: Copy> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("cap", &self.cap)
            .finish()
    }
}

/// Marker for plain-old-data element types that may be reinterpreted
/// from raw snapshot bytes.
///
/// # Safety
///
/// Implementors must guarantee all of:
///
/// * the type is `#[repr(C)]` (or a primitive) with **no padding
///   bytes** — `size_of::<T>()` equals the sum of the field sizes;
/// * **every** bit pattern of `size_of::<T>()` bytes is a valid value
///   (no `bool`, no references, no enums with niches);
/// * `align_of::<T>() <= 8`, so an 8-aligned [`SlabBytes`] base plus a
///   validated offset is sufficiently aligned.
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: primitives have no padding, accept any bit pattern (f64 NaN
// payloads are valid *values*; rejecting NaN weights is semantic
// validation, not a soundness issue), and align to at most 8.
unsafe impl Pod for u8 {}
// SAFETY: see above.
unsafe impl Pod for u32 {}
// SAFETY: see above.
unsafe impl Pod for u64 {}
// SAFETY: see above.
unsafe impl Pod for i64 {}
// SAFETY: see above.
unsafe impl Pod for f64 {}

// SAFETY: `Edge<f64>` is #[repr(C)] { u32, u32, f64 } — offsets 0, 4, 8,
// size 16, align 8, no padding; all three fields accept any bit pattern.
unsafe impl Pod for Edge<f64> {}

/// Read-only memory mapping of a file (Unix).
///
/// Declared against the raw C ABI because the build environment has no
/// crates.io access (no `libc` crate); `std` already links the platform
/// libc, so `mmap`/`munmap` resolve at link time.
#[cfg(unix)]
mod sys {
    #![allow(non_camel_case_types)]

    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    type c_int = i32;
    type c_void = core::ffi::c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    /// `MAP_SHARED`: all processes mapping the same snapshot file share
    /// one physical page-cache copy — the multi-daemon story of
    /// `spsep-oracle/v2`. The mapping is `PROT_READ`, so sharing is
    /// observationally identical to `MAP_PRIVATE` minus the COW
    /// bookkeeping.
    const MAP_SHARED: c_int = 1;

    /// A `PROT_READ`/`MAP_SHARED` mapping of an entire file.
    ///
    /// Invariants: `ptr` is page-aligned (hence 8-aligned), non-null,
    /// valid for reads of `len` bytes for the lifetime of the value,
    /// and never written through. `len > 0` (zero-length files take the
    /// owned path in [`super::SlabBytes`]).
    pub struct MmapFile {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only and private to this value; it is
    // never mutated, so shared references from any thread are fine.
    unsafe impl Send for MmapFile {}
    // SAFETY: see above — concurrent reads of immutable memory.
    unsafe impl Sync for MmapFile {}

    impl MmapFile {
        /// Map `len` bytes of `file` read-only. `len` must be positive
        /// and no larger than the file (enforced by the caller, which
        /// just read the metadata).
        pub fn map(file: &File, len: usize) -> io::Result<MmapFile> {
            debug_assert!(len > 0);
            // SAFETY: fd is a valid open descriptor borrowed from
            // `file`; addr=null lets the kernel pick a page-aligned
            // address; the result is checked against MAP_FAILED before
            // use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapFile {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is non-null, 8-aligned and valid for `len`
            // read-only bytes until Drop (type invariant).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MmapFile {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by a successful mmap;
            // no borrow of the mapping can outlive `self` (the only
            // accessor ties the slice lifetime to `&self`).
            let rc = unsafe { munmap(self.ptr as *mut c_void, self.len) };
            debug_assert_eq!(rc, 0, "munmap failed");
        }
    }
}

/// An immutable, 8-aligned byte buffer that typed [`Slab`]s borrow from.
///
/// Either an owned aligned copy of arbitrary bytes, or a read-only
/// memory mapping of a file. Both variants guarantee the same contract:
/// the base address is at least 8-aligned and the contents never change.
pub enum SlabBytes {
    /// Owned copy, stored in a `Vec<u64>` so the base address is
    /// 8-aligned; `len` is the live byte length (the final word may be
    /// zero-padded).
    Owned {
        /// 8-aligned backing storage (last word zero-padded).
        words: Vec<u64>,
        /// Live byte length (`<= words.len() * 8`).
        len: usize,
    },
    /// Read-only mapping of a snapshot file (Unix only).
    #[cfg(unix)]
    Mapped(sys::MmapFile),
}

impl SlabBytes {
    /// Copy `bytes` into an owned 8-aligned buffer.
    pub fn from_vec(bytes: Vec<u8>) -> SlabBytes {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the destination is a fresh `Vec<u64>` of at least
        // `len` bytes; `u64` has no padding or invalid bit patterns, so
        // writing raw bytes into it is sound; source and destination
        // are distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_mut_ptr().cast::<u8>(), len);
        }
        SlabBytes::Owned { words, len }
    }

    /// Memory-map `file` read-only (zero-length files degrade to an
    /// empty owned buffer, since `mmap` rejects length 0).
    ///
    /// On non-Unix targets this falls back to reading the file into an
    /// owned aligned buffer — same contract, no zero-copy.
    pub fn map_file(file: &File) -> std::io::Result<SlabBytes> {
        #[cfg(unix)]
        {
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
            })?;
            if len == 0 {
                return Ok(SlabBytes::from_vec(Vec::new()));
            }
            Ok(SlabBytes::Mapped(sys::MmapFile::map(file, len)?))
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::new();
            let mut f = file;
            f.read_to_end(&mut buf)?;
            Ok(SlabBytes::from_vec(buf))
        }
    }

    /// The buffer contents. The base pointer of the returned slice is
    /// always at least 8-aligned.
    pub fn bytes(&self) -> &[u8] {
        match self {
            SlabBytes::Owned { words, len } => {
                // SAFETY: `words` owns at least `len` initialized bytes
                // (invariant of `from_vec`); a `u64` buffer may always
                // be viewed as bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
            #[cfg(unix)]
            SlabBytes::Mapped(m) => m.bytes(),
        }
    }

    /// Byte length of the buffer.
    pub fn len(&self) -> usize {
        match self {
            SlabBytes::Owned { len, .. } => *len,
            #[cfg(unix)]
            SlabBytes::Mapped(m) => m.bytes().len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when backed by a memory mapping (false for owned copies).
    pub fn is_mapped(&self) -> bool {
        match self {
            SlabBytes::Owned { .. } => false,
            #[cfg(unix)]
            SlabBytes::Mapped(_) => true,
        }
    }
}

impl fmt::Debug for SlabBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabBytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A typed view of `len` elements of `T` at byte offset `off` of a
/// shared [`SlabBytes`].
///
/// Constructed only by [`Slab::new`], which validates bounds and
/// alignment with typed errors; thereafter [`Slab::as_slice`] (and
/// `Deref`) are infallible. Cloning is O(1) (an `Arc` bump).
pub struct Slab<T> {
    bytes: Arc<SlabBytes>,
    off: usize,
    len: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Pod> Slab<T> {
    /// Borrow `len` elements of `T` starting at byte offset `off`.
    ///
    /// Fails with a typed [`SpsepError::Parse`] when the range is out
    /// of bounds (overflow-checked) or `off` is not a multiple of the
    /// element alignment.
    pub fn new(bytes: Arc<SlabBytes>, off: usize, len: usize) -> Result<Slab<T>, SpsepError> {
        let align = std::mem::align_of::<T>();
        debug_assert!(align <= 8, "Pod contract: align_of::<T>() <= 8");
        if !off.is_multiple_of(align) {
            return Err(SpsepError::parse(format!(
                "misaligned slab: offset {off} is not a multiple of alignment {align}"
            )));
        }
        let nbytes = len
            .checked_mul(std::mem::size_of::<T>())
            .and_then(|n| n.checked_add(off));
        match nbytes {
            Some(end) if end <= bytes.len() => Ok(Slab {
                bytes,
                off,
                len,
                _elem: PhantomData,
            }),
            _ => Err(SpsepError::parse(format!(
                "slab out of bounds: {len} elements of {} bytes at offset {off} exceed buffer of {} bytes",
                std::mem::size_of::<T>(),
                bytes.len()
            ))),
        }
    }

    /// A sub-slab over elements `start..end` of this slab (O(1), shares
    /// the backing buffer). Typed error when the range is invalid.
    pub fn subslab(&self, start: usize, end: usize) -> Result<Slab<T>, SpsepError> {
        if start > end || end > self.len {
            return Err(SpsepError::parse(format!(
                "subslab range {start}..{end} out of bounds for slab of {} elements",
                self.len
            )));
        }
        Ok(Slab {
            bytes: Arc::clone(&self.bytes),
            off: self.off + start * std::mem::size_of::<T>(),
            len: end - start,
            _elem: PhantomData,
        })
    }
}

impl<T> Slab<T> {
    /// The elements as a slice. Infallible: bounds and alignment were
    /// validated by [`Slab::new`].
    pub fn as_slice(&self) -> &[T] {
        let b = self.bytes.bytes();
        // SAFETY: `Slab::new` (the only constructor, `T: Pod` bound)
        // validated that `off..off + len * size_of::<T>()` is in bounds
        // of `b` and that `off` is a multiple of `align_of::<T>()`; the
        // `SlabBytes` base is 8-aligned >= align_of::<T>(); `Pod`
        // guarantees every bit pattern is a valid `T`; the buffer is
        // immutable, and the borrow is tied to `&self`, which keeps the
        // `Arc` (and any mapping) alive.
        unsafe { std::slice::from_raw_parts(b.as_ptr().add(self.off).cast::<T>(), self.len) }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Clone for Slab<T> {
    fn clone(&self) -> Self {
        Slab {
            bytes: Arc::clone(&self.bytes),
            off: self.off,
            len: self.len,
            _elem: PhantomData,
        }
    }
}

impl<T> Deref for Slab<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

// Manual impl so `Slab<T>: Debug` does not demand `T: Debug` (derive
// would add that bound and poison downstream derives).
impl<T> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("off", &self.off)
            .field("len", &self.len)
            .finish()
    }
}

/// Element storage that is either an owned `Vec` or a borrowed
/// snapshot [`Slab`], behind `Deref<Target = [T]>`.
///
/// Freshly built structures use [`Store::Owned`]; structures
/// reconstituted from a `spsep-oracle/v2` snapshot use [`Store::Slab`]
/// and never copy the elements. All read paths are identical.
pub enum Store<T: Copy> {
    /// Heap-owned elements.
    Owned(Vec<T>),
    /// Borrowed from a shared (possibly memory-mapped) snapshot buffer.
    Slab(Slab<T>),
}

impl<T: Copy> Store<T> {
    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Store::Owned(v) => v,
            Store::Slab(s) => s.as_slice(),
        }
    }
}

impl<T: Copy> Deref for Store<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> From<Vec<T>> for Store<T> {
    fn from(v: Vec<T>) -> Self {
        Store::Owned(v)
    }
}

impl<T: Copy> From<Slab<T>> for Store<T> {
    fn from(s: Slab<T>) -> Self {
        Store::Slab(s)
    }
}

impl<T: Copy> Clone for Store<T> {
    fn clone(&self) -> Self {
        match self {
            Store::Owned(v) => Store::Owned(v.clone()),
            Store::Slab(s) => Store::Slab(s.clone()),
        }
    }
}

impl<T: Copy> fmt::Debug for Store<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            Store::Owned(_) => "owned",
            Store::Slab(_) => "slab",
        };
        f.debug_struct("Store")
            .field("len", &self.as_slice().len())
            .field("kind", &kind)
            .finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for Store<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(bytes: Vec<u8>) -> Arc<SlabBytes> {
        Arc::new(SlabBytes::from_vec(bytes))
    }

    #[test]
    fn aligned_vec_base_is_cache_line_aligned_across_growth() {
        let mut v = AlignedVec::<f64>::new();
        assert!(v.is_empty());
        for n in [1usize, 7, 8, 63, 64, 65, 1024] {
            v.resize(n, 1.5);
            assert_eq!(v.as_slice().as_ptr() as usize % CACHE_LINE, 0, "n={n}");
            assert_eq!(v.len(), n);
            assert!(v.capacity() >= n);
            assert!(v.iter().all(|&x| x == 1.5));
        }
    }

    #[test]
    fn aligned_vec_resize_preserves_prefix_and_fills_tail() {
        let mut v = AlignedVec::<u32>::new();
        v.resize(4, 9);
        v.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
        v.resize(7, 0);
        assert_eq!(&v[..], &[1, 2, 3, 4, 0, 0, 0]);
        v.clear();
        assert_eq!(v.len(), 0);
        let cap = v.capacity();
        v.resize(5, 8);
        assert_eq!(v.capacity(), cap, "clear must keep the allocation");
        assert_eq!(&v[..], &[8, 8, 8, 8, 8]);
    }

    #[test]
    fn aligned_vec_clone_and_from_slice_copy_payload() {
        let v = AlignedVec::from_slice(&[0.5f64, -0.0, f64::INFINITY]);
        let c = v.clone();
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_slice().as_ptr() as usize % CACHE_LINE, 0);
        for (a, b) in v.iter().zip(c.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let e = AlignedVec::<f64>::from_slice(&[]);
        assert!(e.is_empty());
        assert_eq!(e.capacity(), 0);
    }

    #[test]
    fn owned_roundtrip_preserves_bytes() {
        for n in [0usize, 1, 7, 8, 9, 64, 65] {
            let src: Vec<u8> = (0..n).map(|i| (i * 37 % 251) as u8).collect();
            let sb = SlabBytes::from_vec(src.clone());
            assert_eq!(sb.bytes(), &src[..]);
            assert_eq!(sb.len(), n);
            assert!(!sb.is_mapped());
        }
    }

    #[test]
    fn base_is_8_aligned() {
        let sb = arc(vec![1, 2, 3, 4, 5]);
        assert_eq!(sb.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn u32_slab_reads_little_endian_words() {
        let mut bytes = Vec::new();
        for v in [7u32, 0, u32::MAX, 42] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let slab: Slab<u32> = Slab::new(arc(bytes), 0, 4).unwrap();
        #[cfg(target_endian = "little")]
        assert_eq!(slab.as_slice(), &[7, 0, u32::MAX, 42]);
        assert_eq!(slab.len(), 4);
    }

    #[test]
    fn misaligned_offset_is_a_typed_error() {
        let b = arc(vec![0u8; 64]);
        for off in [1usize, 2, 3, 5, 6, 7] {
            let r: Result<Slab<f64>, _> = Slab::new(Arc::clone(&b), off, 1);
            match r {
                Err(SpsepError::Parse { what, .. }) => {
                    assert!(what.contains("misaligned"), "{what}")
                }
                other => panic!("expected misaligned error at offset {off}, got {other:?}"),
            }
        }
        // 4-aligned offset is fine for u32 but not for f64.
        assert!(Slab::<u32>::new(Arc::clone(&b), 4, 1).is_ok());
        assert!(Slab::<f64>::new(Arc::clone(&b), 4, 1).is_err());
    }

    #[test]
    fn out_of_bounds_is_a_typed_error_including_overflow() {
        let b = arc(vec![0u8; 16]);
        assert!(Slab::<u64>::new(Arc::clone(&b), 0, 2).is_ok());
        assert!(Slab::<u64>::new(Arc::clone(&b), 0, 3).is_err());
        assert!(Slab::<u64>::new(Arc::clone(&b), 8, 2).is_err());
        // len * size overflows usize: must be a typed error, not a panic.
        let r = Slab::<u64>::new(Arc::clone(&b), 0, usize::MAX / 4);
        assert!(matches!(r, Err(SpsepError::Parse { .. })));
    }

    #[test]
    fn empty_slabs_are_fine() {
        let b = arc(Vec::new());
        let s: Slab<u64> = Slab::new(Arc::clone(&b), 0, 0).unwrap();
        assert!(s.as_slice().is_empty());
        assert!(s.is_empty());
        // One-past-the-end offset with zero elements is in bounds.
        let b = arc(vec![0u8; 8]);
        let s: Slab<u64> = Slab::new(b, 8, 0).unwrap();
        assert!(s.as_slice().is_empty());
    }

    #[test]
    fn edge_f64_slab_roundtrips() {
        let edges = [
            Edge::new(0, 1, 1.5),
            Edge::new(1, 2, -0.0),
            Edge::new(2, 0, f64::INFINITY),
        ];
        let mut bytes = Vec::new();
        for e in &edges {
            bytes.extend_from_slice(&e.from.to_le_bytes());
            bytes.extend_from_slice(&e.to.to_le_bytes());
            bytes.extend_from_slice(&e.w.to_le_bytes());
        }
        assert_eq!(std::mem::size_of::<Edge<f64>>(), 16);
        assert_eq!(std::mem::align_of::<Edge<f64>>(), 8);
        let slab: Slab<Edge<f64>> = Slab::new(arc(bytes), 0, 3).unwrap();
        #[cfg(target_endian = "little")]
        {
            for (a, b) in slab.as_slice().iter().zip(edges.iter()) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert_eq!(a.w.to_bits(), b.w.to_bits());
            }
        }
    }

    #[test]
    fn subslab_shares_and_checks_bounds() {
        let mut bytes = Vec::new();
        for v in 0..10u32 {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let slab: Slab<u32> = Slab::new(arc(bytes), 0, 10).unwrap();
        let sub = slab.subslab(2, 5).unwrap();
        #[cfg(target_endian = "little")]
        assert_eq!(sub.as_slice(), &[2, 3, 4]);
        assert!(slab.subslab(5, 2).is_err());
        assert!(slab.subslab(0, 11).is_err());
        let whole = slab.subslab(0, 10).unwrap();
        assert_eq!(whole.len(), 10);
    }

    #[test]
    fn store_deref_is_uniform() {
        let owned: Store<u32> = vec![1, 2, 3].into();
        assert_eq!(&owned[..], &[1, 2, 3]);
        let mut bytes = Vec::new();
        for v in [1u32, 2, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let slab: Store<u32> = Slab::new(arc(bytes), 0, 3).unwrap().into();
        #[cfg(target_endian = "little")]
        {
            assert_eq!(&slab[..], &[1, 2, 3]);
            assert_eq!(owned, slab);
        }
        let c = slab.clone();
        assert_eq!(c.len(), 3);
        assert!(format!("{slab:?}").contains("slab"));
        assert!(format!("{owned:?}").contains("owned"));
    }

    #[cfg(unix)]
    #[test]
    fn mmap_roundtrips_and_is_shared() {
        use std::io::Write;
        let dir = std::env::temp_dir().join(format!("spsep-slab-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmap-roundtrip.bin");
        let payload: Vec<u8> = (0..4096 + 37).map(|i| (i % 253) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let sb = SlabBytes::map_file(&f).unwrap();
        assert!(sb.is_mapped());
        assert_eq!(sb.bytes(), &payload[..]);
        assert_eq!(sb.bytes().as_ptr() as usize % 8, 0);
        drop(sb); // munmap must not fault
        let empty = dir.join("empty.bin");
        std::fs::File::create(&empty).unwrap();
        let f = std::fs::File::open(&empty).unwrap();
        let sb = SlabBytes::map_file(&f).unwrap();
        assert!(!sb.is_mapped());
        assert!(sb.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
