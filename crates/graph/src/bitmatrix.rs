//! 64-bit-blocked boolean matrices.
//!
//! The paper's reachability bounds are stated in terms of `M(r)`, the work
//! of multiplying two `r×r` boolean matrices, instantiated with
//! Coppersmith–Winograd (`M(r) = o(r^2.37)`). CW-style algorithms are
//! galactic; the practical realization every implementation uses is
//! word-parallel boolean multiplication: `r³/64` word operations with
//! excellent constants. `spsep-core` plugs [`BitMatrix`] in wherever the
//! paper says "use fast matrix multiplication" (DESIGN.md documents this
//! substitution).

use rayon::prelude::*;

const BITS: usize = 64;
/// Rows of `self` per multiply tile: one parallel task closes a tile
/// against one k-block of `other` before moving on, so the k-block's rows
/// are reused `ROW_TILE` times from cache.
const ROW_TILE: usize = 16;
/// Width of a multiply k-block in words (256 columns of `self` = 256 rows
/// of `other`): 256 rows × up to 16 result words ≈ 32 KiB of `other`, an
/// L1-sized working set.
const KBLOCK_WORDS: usize = 4;

/// A dense `rows × cols` boolean matrix, rows packed into `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(BITS);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let word = self.data[r * self.words_per_row + c / BITS];
        (word >> (c % BITS)) & 1 == 1
    }

    /// Write entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let word = &mut self.data[r * self.words_per_row + c / BITS];
        let mask = 1u64 << (c % BITS);
        if v {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// The packed words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Bitwise-OR `other`'s row data into `self` (same shape required).
    pub fn or_assign(&mut self, other: &BitMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a |= b;
        }
    }

    /// Boolean matrix product `self × other` (shapes `r×k` by `k×c`),
    /// parallelized over `ROW_TILE`-row tiles of `self`.
    ///
    /// Row-oriented and cache-blocked: for each set bit `j` of row `i` of
    /// `self`, OR row `j` of `other` into row `i` of the result — `r·k`
    /// bit tests plus one word-vector OR per set bit, `O(r·k·c/64)` word
    /// ops worst case. The `k` dimension is walked in `KBLOCK_WORDS`
    /// blocks *outside* the tile's row loop, so an L1-resident slice of
    /// `other` (≤ 256 rows) is reused across all rows of the tile instead
    /// of being streamed from L2/DRAM once per row. OR is commutative and
    /// idempotent, so the reordering cannot change any output bit (the
    /// `multiply_matches_naive_*` tests pin this).
    pub fn multiply(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut result = BitMatrix::zeros(self.rows, other.cols);
        let wpr_out = result.words_per_row;
        let wpr_in = self.words_per_row;
        result
            .data
            .par_chunks_mut(wpr_out.max(1) * ROW_TILE)
            .enumerate()
            .for_each(|(ti, out_rows)| {
                let i0 = ti * ROW_TILE;
                let mut kw0 = 0usize;
                while kw0 < wpr_in {
                    let kw1 = (kw0 + KBLOCK_WORDS).min(wpr_in);
                    for (ri, out_row) in out_rows.chunks_mut(wpr_out.max(1)).enumerate() {
                        let my_row = &self.data[(i0 + ri) * wpr_in..(i0 + ri + 1) * wpr_in];
                        for (wi, &word) in my_row[kw0..kw1].iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let j = (kw0 + wi) * BITS + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                if j >= other.rows {
                                    break;
                                }
                                let other_row = other.row(j);
                                for (o, &w) in out_row.iter_mut().zip(other_row) {
                                    *o |= w;
                                }
                            }
                        }
                    }
                    kw0 = kw1;
                }
            });
        result
    }

    /// `self ∨ (self × self)` — one "squaring" step of transitive closure.
    pub fn square_step(&self) -> BitMatrix {
        let mut sq = self.multiply(self);
        sq.or_assign(self);
        sq
    }

    /// Transitive closure of an `n×n` adjacency matrix (reflexive), by
    /// repeated squaring: `⌈log₂ n⌉` boolean products.
    pub fn transitive_closure(&self) -> BitMatrix {
        assert_eq!(self.rows, self.cols);
        let mut closure = self.clone();
        for i in 0..self.rows {
            closure.set(i, i, true);
        }
        let mut steps = 0usize;
        let mut span = 1usize;
        while span < self.rows.max(1) {
            closure = closure.square_step();
            span *= 2;
            steps += 1;
            // Defensive cap; ⌈log₂ n⌉ always suffices.
            if steps > 64 {
                break;
            }
        }
        closure
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_multiply(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        let mut out = BitMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut v = false;
                for k in 0..a.cols() {
                    v |= a.get(i, k) && b.get(k, j);
                }
                out.set(i, j, v);
            }
        }
        out
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::zeros(3, 130);
        m.set(0, 0, true);
        m.set(1, 63, true);
        m.set(1, 64, true);
        m.set(2, 129, true);
        assert!(m.get(0, 0));
        assert!(m.get(1, 63));
        assert!(m.get(1, 64));
        assert!(m.get(2, 129));
        assert!(!m.get(0, 1));
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let mut a = BitMatrix::zeros(5, 5);
        a.set(0, 3, true);
        a.set(2, 2, true);
        a.set(4, 1, true);
        let id = BitMatrix::identity(5);
        assert_eq!(a.multiply(&id), a);
        assert_eq!(id.multiply(&a), a);
    }

    #[test]
    fn multiply_matches_naive_on_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for &(r, k, c) in &[(7, 9, 5), (65, 70, 66), (128, 128, 128), (1, 200, 3)] {
            let mut a = BitMatrix::zeros(r, k);
            let mut b = BitMatrix::zeros(k, c);
            for i in 0..r {
                for j in 0..k {
                    a.set(i, j, rng.gen_bool(0.2));
                }
            }
            for i in 0..k {
                for j in 0..c {
                    b.set(i, j, rng.gen_bool(0.2));
                }
            }
            assert_eq!(a.multiply(&b), naive_multiply(&a, &b));
        }
    }

    /// Shapes chosen to straddle every blocking boundary: the k dimension
    /// crosses the 256-bit k-block (and its word tail), the row count
    /// crosses the 16-row tile, and thread counts vary — the blocked
    /// product must be bit-identical to the naive triple loop throughout.
    #[test]
    fn blocked_multiply_bit_identical_across_block_boundaries() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let shapes = [
            (ROW_TILE - 1, KBLOCK_WORDS * BITS - 1, 70),
            (ROW_TILE, KBLOCK_WORDS * BITS, 64),
            (ROW_TILE + 1, KBLOCK_WORDS * BITS + 1, 65),
            (2 * ROW_TILE + 3, 2 * KBLOCK_WORDS * BITS + 37, 130),
        ];
        for &(r, k, c) in &shapes {
            let mut a = BitMatrix::zeros(r, k);
            let mut b = BitMatrix::zeros(k, c);
            for i in 0..r {
                for j in 0..k {
                    a.set(i, j, rng.gen_bool(0.15));
                }
            }
            for i in 0..k {
                for j in 0..c {
                    b.set(i, j, rng.gen_bool(0.15));
                }
            }
            let want = naive_multiply(&a, &b);
            for threads in [1usize, 2, 4] {
                let got = rayon::with_max_threads(threads, || a.multiply(&b));
                assert_eq!(got, want, "{r}x{k} × {k}x{c} at {threads} threads");
            }
        }
    }

    #[test]
    fn closure_of_path() {
        // 0 -> 1 -> 2 -> 3.
        let mut m = BitMatrix::zeros(4, 4);
        for i in 0..3 {
            m.set(i, i + 1, true);
        }
        let c = m.transitive_closure();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), j >= i, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_of_cycle_is_complete() {
        let mut m = BitMatrix::zeros(5, 5);
        for i in 0..5 {
            m.set(i, (i + 1) % 5, true);
        }
        let c = m.transitive_closure();
        assert_eq!(c.count_ones(), 25);
    }

    #[test]
    fn closure_of_empty_is_identity() {
        let m = BitMatrix::zeros(6, 6);
        assert_eq!(m.transitive_closure(), BitMatrix::identity(6));
    }
}
