//! 64-bit-blocked boolean matrices.
//!
//! The paper's reachability bounds are stated in terms of `M(r)`, the work
//! of multiplying two `r×r` boolean matrices, instantiated with
//! Coppersmith–Winograd (`M(r) = o(r^2.37)`). CW-style algorithms are
//! galactic; the practical realization every implementation uses is
//! word-parallel boolean multiplication: `r³/64` word operations with
//! excellent constants. `spsep-core` plugs [`BitMatrix`] in wherever the
//! paper says "use fast matrix multiplication" (DESIGN.md documents this
//! substitution).

use rayon::prelude::*;

const BITS: usize = 64;

/// A dense `rows × cols` boolean matrix, rows packed into `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(BITS);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let word = self.data[r * self.words_per_row + c / BITS];
        (word >> (c % BITS)) & 1 == 1
    }

    /// Write entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let word = &mut self.data[r * self.words_per_row + c / BITS];
        let mask = 1u64 << (c % BITS);
        if v {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// The packed words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Bitwise-OR `other`'s row data into `self` (same shape required).
    pub fn or_assign(&mut self, other: &BitMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a |= b;
        }
    }

    /// Boolean matrix product `self × other` (shapes `r×k` by `k×c`),
    /// parallelized over rows of `self`.
    ///
    /// Row-oriented: for each set bit `j` of row `i` of `self`, OR row `j`
    /// of `other` into row `i` of the result — `r·k/1` bit tests plus one
    /// word-vector OR per set bit, i.e. `O(r·k·c/64)` word ops worst case.
    pub fn multiply(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut result = BitMatrix::zeros(self.rows, other.cols);
        let wpr_out = result.words_per_row;
        let wpr_in = self.words_per_row;
        result
            .data
            .par_chunks_mut(wpr_out.max(1))
            .enumerate()
            .for_each(|(i, out_row)| {
                let my_row = &self.data[i * wpr_in..(i + 1) * wpr_in];
                for (wi, &word) in my_row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let j = wi * BITS + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if j >= other.rows {
                            break;
                        }
                        let other_row = other.row(j);
                        for (o, &w) in out_row.iter_mut().zip(other_row) {
                            *o |= w;
                        }
                    }
                }
            });
        result
    }

    /// `self ∨ (self × self)` — one "squaring" step of transitive closure.
    pub fn square_step(&self) -> BitMatrix {
        let mut sq = self.multiply(self);
        sq.or_assign(self);
        sq
    }

    /// Transitive closure of an `n×n` adjacency matrix (reflexive), by
    /// repeated squaring: `⌈log₂ n⌉` boolean products.
    pub fn transitive_closure(&self) -> BitMatrix {
        assert_eq!(self.rows, self.cols);
        let mut closure = self.clone();
        for i in 0..self.rows {
            closure.set(i, i, true);
        }
        let mut steps = 0usize;
        let mut span = 1usize;
        while span < self.rows.max(1) {
            closure = closure.square_step();
            span *= 2;
            steps += 1;
            // Defensive cap; ⌈log₂ n⌉ always suffices.
            if steps > 64 {
                break;
            }
        }
        closure
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_multiply(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        let mut out = BitMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut v = false;
                for k in 0..a.cols() {
                    v |= a.get(i, k) && b.get(k, j);
                }
                out.set(i, j, v);
            }
        }
        out
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::zeros(3, 130);
        m.set(0, 0, true);
        m.set(1, 63, true);
        m.set(1, 64, true);
        m.set(2, 129, true);
        assert!(m.get(0, 0));
        assert!(m.get(1, 63));
        assert!(m.get(1, 64));
        assert!(m.get(2, 129));
        assert!(!m.get(0, 1));
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let mut a = BitMatrix::zeros(5, 5);
        a.set(0, 3, true);
        a.set(2, 2, true);
        a.set(4, 1, true);
        let id = BitMatrix::identity(5);
        assert_eq!(a.multiply(&id), a);
        assert_eq!(id.multiply(&a), a);
    }

    #[test]
    fn multiply_matches_naive_on_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for &(r, k, c) in &[(7, 9, 5), (65, 70, 66), (128, 128, 128), (1, 200, 3)] {
            let mut a = BitMatrix::zeros(r, k);
            let mut b = BitMatrix::zeros(k, c);
            for i in 0..r {
                for j in 0..k {
                    a.set(i, j, rng.gen_bool(0.2));
                }
            }
            for i in 0..k {
                for j in 0..c {
                    b.set(i, j, rng.gen_bool(0.2));
                }
            }
            assert_eq!(a.multiply(&b), naive_multiply(&a, &b));
        }
    }

    #[test]
    fn closure_of_path() {
        // 0 -> 1 -> 2 -> 3.
        let mut m = BitMatrix::zeros(4, 4);
        for i in 0..3 {
            m.set(i, i + 1, true);
        }
        let c = m.transitive_closure();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), j >= i, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_of_cycle_is_complete() {
        let mut m = BitMatrix::zeros(5, 5);
        for i in 0..5 {
            m.set(i, (i + 1) % 5, true);
        }
        let c = m.transitive_closure();
        assert_eq!(c.count_ones(), 25);
    }

    #[test]
    fn closure_of_empty_is_identity() {
        let m = BitMatrix::zeros(6, 6);
        assert_eq!(m.transitive_closure(), BitMatrix::identity(6));
    }
}
