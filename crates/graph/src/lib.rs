//! Graph substrate for the `spsep` workspace.
//!
//! This crate provides everything the separator-decomposition shortest-path
//! algorithms (Cohen, SPAA'93 / J. Algorithms 1996) need from a graph
//! library:
//!
//! * [`DiGraph`] — a compact directed graph with per-edge weights and both
//!   out- and in-adjacency in CSR form (the query engine scans *incoming*
//!   edges, the augmentation scans *outgoing* ones);
//! * [`semiring`] — the path-algebra abstraction (paper comment (iii):
//!   "our algorithm is applicable to general path algebra problems over
//!   semirings") with tropical, boolean, max-plus, bottleneck and
//!   reliability instances;
//! * [`generators`] — the graph families the paper's analysis targets:
//!   d-dimensional grids (trivial `k^((d-1)/d)` separators), trees
//!   (centroid separators), geometric/overlap-style graphs, plus random
//!   graphs for adversarial testing;
//! * [`bitmatrix`] — 64-bit-blocked boolean matrices, the practical
//!   stand-in for the paper's fast-matrix-multiplication reachability
//!   substrate `M(r)`;
//! * [`traversal`], [`unionfind`], [`io`] — supporting utilities.

// Library code must stay panic-free on untrusted input: unwraps and
// expects are confined to #[cfg(test)] code (internal invariants use
// let-else + unreachable!, which documents *why* they cannot fire).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// All unsafe lives in `slab` (the mmap/zero-copy substrate) and
// `dense::simd` (std::arch kernels + checked f64 downcasts); every
// unsafe operation there must sit in an explicit block with a SAFETY
// comment, even inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]
// Every public item must explain itself — the crate is the paper's
// reference implementation and doubles as its documentation.
#![warn(missing_docs)]

pub mod bitmatrix;
pub mod bytes;
pub mod dense;
pub mod digraph;
pub mod error;
pub mod generators;
pub mod import;
pub mod io;
pub mod order;
pub mod semiring;
pub mod slab;
pub mod traversal;
pub mod unionfind;

pub use bitmatrix::BitMatrix;
pub use dense::{
    select_kernel, simd_active, BlockedKernel, MinPlusKernel, NaiveKernel, SemiMatrix, SimdKernel,
};
pub use digraph::{DiGraph, Edge};
pub use error::SpsepError;
pub use order::NodeOrder;
pub use slab::{AlignedVec, Pod, Slab, SlabBytes, Store};
pub use semiring::{Boolean, Bottleneck, MaxPlus, Reliability, Semiring, Tropical, TropicalInt};
