//! Plain-text graph serialization in the DIMACS shortest-path style.
//!
//! Format:
//!
//! ```text
//! c free-form comment lines
//! p sp <n> <m>
//! a <from> <to> <weight>     (1-based vertex ids, m lines)
//! ```
//!
//! Lets experiment inputs be checked in, regenerated, and diffed.

use crate::digraph::{DiGraph, Edge};
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Error produced while parsing a DIMACS-style graph.
#[derive(Debug)]
pub enum ParseError {
    /// I/O failure of the underlying reader.
    Io(std::io::Error),
    /// Structural problem, with a human-readable description.
    Format(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Serialize `g` in DIMACS `sp` format.
pub fn write_dimacs<Wr: Write>(g: &DiGraph<f64>, out: &mut Wr) -> std::io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "p sp {} {}", g.n(), g.m()).unwrap();
    for e in g.edges() {
        writeln!(buf, "a {} {} {}", e.from + 1, e.to + 1, e.w).unwrap();
    }
    out.write_all(buf.as_bytes())
}

/// Parse a DIMACS `sp` graph.
pub fn read_dimacs<R: BufRead>(input: R) -> Result<DiGraph<f64>, ParseError> {
    let mut n: Option<usize> = None;
    let mut declared_m = 0usize;
    let mut edges: Vec<Edge<f64>> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if parts.next() != Some("sp") {
                    return Err(ParseError::Format(format!(
                        "line {}: expected 'p sp'",
                        lineno + 1
                    )));
                }
                let nv: usize = parse_field(parts.next(), lineno, "vertex count")?;
                declared_m = parse_field(parts.next(), lineno, "edge count")?;
                n = Some(nv);
                edges.reserve(declared_m);
            }
            Some("a") => {
                let n = n.ok_or_else(|| {
                    ParseError::Format(format!("line {}: arc before problem line", lineno + 1))
                })?;
                let from: usize = parse_field(parts.next(), lineno, "arc source")?;
                let to: usize = parse_field(parts.next(), lineno, "arc target")?;
                let w: f64 = parse_field(parts.next(), lineno, "arc weight")?;
                if from == 0 || to == 0 || from > n || to > n {
                    return Err(ParseError::Format(format!(
                        "line {}: vertex id out of range 1..={}",
                        lineno + 1,
                        n
                    )));
                }
                edges.push(Edge::new(from - 1, to - 1, w));
            }
            Some(other) => {
                return Err(ParseError::Format(format!(
                    "line {}: unknown record '{}'",
                    lineno + 1,
                    other
                )));
            }
            None => {}
        }
    }
    let n = n.ok_or_else(|| ParseError::Format("missing problem line".into()))?;
    if edges.len() != declared_m {
        return Err(ParseError::Format(format!(
            "declared {} arcs but found {}",
            declared_m,
            edges.len()
        )));
    }
    Ok(DiGraph::from_edges(n, edges))
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, ParseError> {
    field
        .ok_or_else(|| ParseError::Format(format!("line {}: missing {}", lineno + 1, what)))?
        .parse()
        .map_err(|_| ParseError::Format(format!("line {}: bad {}", lineno + 1, what)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::grid(&[4, 5], &mut rng);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "c hello\n\np sp 2 1\nc mid\na 1 2 3.5\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edges()[0].w, 3.5);
    }

    #[test]
    fn errors_are_reported() {
        assert!(read_dimacs("a 1 2 3\n".as_bytes()).is_err()); // arc before p
        assert!(read_dimacs("p sp 2 1\na 1 5 1.0\n".as_bytes()).is_err()); // range
        assert!(read_dimacs("p sp 2 2\na 1 2 1.0\n".as_bytes()).is_err()); // count
        assert!(read_dimacs("q sp 2 1\n".as_bytes()).is_err()); // record
        assert!(read_dimacs("p sp 2 1\na 1 2 abc\n".as_bytes()).is_err()); // weight
    }
}
