//! Graph serialization: plain text (DIMACS shortest-path style) and the
//! binary section of the oracle snapshot.
//!
//! Text format:
//!
//! ```text
//! c free-form comment lines
//! p sp <n> <m>
//! a <from> <to> <weight>     (1-based vertex ids, m lines)
//! ```
//!
//! Lets experiment inputs be checked in, regenerated, and diffed.
//!
//! Parsing is hardened: NaN and infinite weights, out-of-range vertex
//! ids, and header/line-count mismatches are rejected with
//! line-numbered [`SpsepError::Parse`] errors — a malformed file can
//! never panic the caller or silently produce a wrong graph.
//!
//! [`graph_to_bytes`] / [`graph_from_bytes`] are the binary codec used
//! by the `spsep-oracle/v1` snapshot (`spsep_core::io`): weights travel
//! as IEEE-754 bit patterns so distances recomputed from a loaded
//! snapshot are **bit-identical** to the in-memory originals.

use crate::bytes::{ByteReader, ByteWriter};
use crate::digraph::{DiGraph, Edge};
use crate::error::SpsepError;
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Error produced while parsing a DIMACS-style graph (alias kept for
/// callers of the pre-taxonomy API).
pub type ParseError = SpsepError;

/// Serialize `g` in DIMACS `sp` format.
pub fn write_dimacs<Wr: Write>(g: &DiGraph<f64>, out: &mut Wr) -> std::io::Result<()> {
    let mut buf = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(buf, "p sp {} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(buf, "a {} {} {}", e.from + 1, e.to + 1, e.w);
    }
    out.write_all(buf.as_bytes())
}

/// Parse a DIMACS `sp` graph.
pub fn read_dimacs<R: BufRead>(input: R) -> Result<DiGraph<f64>, SpsepError> {
    let mut n: Option<usize> = None;
    let mut declared_m = 0usize;
    let mut edges: Vec<Edge<f64>> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if n.is_some() {
                    return Err(SpsepError::parse_at(lineno + 1, "duplicate problem line"));
                }
                if parts.next() != Some("sp") {
                    return Err(SpsepError::parse_at(lineno + 1, "expected 'p sp'"));
                }
                let nv: usize = parse_field(parts.next(), lineno, "vertex count")?;
                declared_m = parse_field(parts.next(), lineno, "edge count")?;
                n = Some(nv);
                // Guard the reserve against absurd declared counts on
                // truncated/corrupted headers.
                edges.reserve(declared_m.min(1 << 24));
            }
            Some("a") => {
                let n = n.ok_or_else(|| {
                    SpsepError::parse_at(lineno + 1, "arc before problem line")
                })?;
                let from: usize = parse_field(parts.next(), lineno, "arc source")?;
                let to: usize = parse_field(parts.next(), lineno, "arc target")?;
                let w: f64 = parse_field(parts.next(), lineno, "arc weight")?;
                if !w.is_finite() {
                    return Err(SpsepError::parse_at(
                        lineno + 1,
                        format!("arc weight '{w}' is not finite"),
                    ));
                }
                if from == 0 || to == 0 || from > n || to > n {
                    return Err(SpsepError::parse_at(
                        lineno + 1,
                        format!("vertex id out of range 1..={n}"),
                    ));
                }
                edges.push(Edge::new(from - 1, to - 1, w));
            }
            Some(other) => {
                return Err(SpsepError::parse_at(
                    lineno + 1,
                    format!("unknown record '{other}'"),
                ));
            }
            None => {}
        }
    }
    let n = n.ok_or_else(|| SpsepError::parse("missing problem line"))?;
    if edges.len() != declared_m {
        return Err(SpsepError::parse(format!(
            "declared {} arcs but found {}",
            declared_m,
            edges.len()
        )));
    }
    Ok(DiGraph::from_edges(n, edges))
}

/// Serialize `g` as a self-contained binary payload (the `GRPH` section
/// of the `spsep-oracle/v1` snapshot):
///
/// ```text
/// n: u64 · m: u64 · m × (from: u32, to: u32, weight: f64 bits)
/// ```
///
/// all little-endian. Weights are written as raw IEEE-754 bit patterns,
/// so `-0.0`, subnormals, and every finite value round-trip bit-exactly.
pub fn graph_to_bytes(g: &DiGraph<f64>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(g.n() as u64);
    w.u64(g.m() as u64);
    for e in g.edges() {
        w.u32(e.from);
        w.u32(e.to);
        w.f64(e.w);
    }
    w.into_inner()
}

/// Parse a payload written by [`graph_to_bytes`].
///
/// Hardened like the text parser: truncation, element-count overruns,
/// out-of-range endpoints, and NaN weights are all typed
/// [`SpsepError::Parse`] failures — never a panic, never a silently
/// wrong graph.
pub fn graph_from_bytes(bytes: &[u8]) -> Result<DiGraph<f64>, SpsepError> {
    let mut r = ByteReader::new(bytes);
    let n = r.count("graph vertex count", 0)?;
    let m = r.count("graph edge count", 16)?;
    let mut edges: Vec<Edge<f64>> = Vec::with_capacity(m);
    for i in 0..m {
        let from = r.u32("edge source")?;
        let to = r.u32("edge target")?;
        let w = r.f64("edge weight")?;
        if from as usize >= n || to as usize >= n {
            return Err(SpsepError::parse(format!(
                "edge #{i} endpoint {from}→{to} out of range 0..{n}"
            )));
        }
        if w.is_nan() {
            return Err(SpsepError::parse(format!("edge #{i} weight is NaN")));
        }
        edges.push(Edge::new(from as usize, to as usize, w));
    }
    r.expect_exhausted("graph payload")?;
    Ok(DiGraph::from_edges(n, edges))
}

pub(crate) fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, SpsepError> {
    let raw =
        field.ok_or_else(|| SpsepError::parse_at(lineno + 1, format!("missing {what}")))?;
    raw.parse()
        .map_err(|_| SpsepError::parse_at(lineno + 1, format!("bad {what} '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::grid(&[4, 5], &mut rng);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "c hello\n\np sp 2 1\nc mid\na 1 2 3.5\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edges()[0].w, 3.5);
    }

    #[test]
    fn errors_are_reported() {
        assert!(read_dimacs("a 1 2 3\n".as_bytes()).is_err()); // arc before p
        assert!(read_dimacs("p sp 2 1\na 1 5 1.0\n".as_bytes()).is_err()); // range
        assert!(read_dimacs("p sp 2 2\na 1 2 1.0\n".as_bytes()).is_err()); // count
        assert!(read_dimacs("q sp 2 1\n".as_bytes()).is_err()); // record
        assert!(read_dimacs("p sp 2 1\na 1 2 abc\n".as_bytes()).is_err()); // weight
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(10);
        let (g, _) = generators::grid(&[5, 6], &mut rng);
        let bytes = graph_to_bytes(&g);
        let g2 = graph_from_bytes(&bytes).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
    }

    #[test]
    fn binary_rejections_are_typed() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, _) = generators::grid(&[3, 3], &mut rng);
        let bytes = graph_to_bytes(&g);
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    graph_from_bytes(&bytes[..cut]),
                    Err(SpsepError::Parse { .. })
                ),
                "cut at {cut} must be a typed parse error"
            );
        }
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(graph_from_bytes(&padded).is_err());
        // Out-of-range endpoint (first edge's `from` = n).
        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&(g.n() as u32).to_le_bytes());
        assert!(graph_from_bytes(&bad).is_err());
        // NaN weight on the first edge.
        let mut bad = bytes;
        bad[24..32].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(graph_from_bytes(&bad).is_err());
    }

    #[test]
    fn hardened_rejections_are_typed_and_line_numbered() {
        // NaN and infinite weights.
        for bad in ["NaN", "nan", "inf", "-inf"] {
            let text = format!("p sp 2 1\na 1 2 {bad}\n");
            match read_dimacs(text.as_bytes()) {
                Err(SpsepError::Parse { line: Some(2), .. }) => {}
                other => panic!("weight {bad}: expected Parse at line 2, got {other:?}"),
            }
        }
        // Duplicate problem line.
        assert!(matches!(
            read_dimacs("p sp 2 0\np sp 3 0\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(2), .. })
        ));
        // Out-of-range id reports its line.
        assert!(matches!(
            read_dimacs("p sp 2 1\nc pad\na 1 99 1.0\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(3), .. })
        ));
        // Count mismatch (no single line to blame).
        assert!(matches!(
            read_dimacs("p sp 2 5\na 1 2 1.0\n".as_bytes()),
            Err(SpsepError::Parse { line: None, .. })
        ));
    }
}
