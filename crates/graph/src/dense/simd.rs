//! Explicit-width SIMD relax primitives for the dense kernels.
//!
//! The dense kernels ([`SemiMatrix::floyd_warshall`] and
//! [`SemiMatrix::square_step`]) spend essentially all of their time in one
//! primitive: `dst[j] ← combine(dst[j], extend(dik, src[j]))` over a row
//! segment. This module vectorizes that primitive — across the column
//! index `j` only — for the four `f64` semirings that advertise a
//! [`LaneAlgebra`], using stable `std::arch` AVX2 (`f64x4`) and AVX-512F
//! (`f64x8`) intrinsics with runtime feature detection.
//!
//! # Why the result is bit-identical to the scalar kernels
//!
//! Vectorizing across `j` keeps every output cell's **candidate sequence**
//! exactly what the scalar kernel produces: lanes are independent cells,
//! and each cell still folds its candidates in the same order with the
//! same operands. (Vectorizing the `k` reduction instead would
//! re-associate the fold and could change which of two `combine`-equal
//! values — e.g. `-0.0` vs `+0.0`, or two NaN payloads — survives.)
//!
//! Within a lane, the scalar semantics are emulated *exactly*:
//!
//! * `combine` for a Min-algebra is `if a <= b { a } else { b }` — as a
//!   vector this is `blend(cur, cand, cmp(cur, cand, NLE_UQ))`: take the
//!   candidate precisely when `cur <= cand` is false (including the
//!   unordered/NaN case, which is what the scalar `else` branch does).
//!   Max-algebras use `NGE_UQ` symmetrically. `vminpd`/`vmaxpd` are
//!   **never** used: their NaN and `±0.0` behaviour differs from the
//!   scalar branch.
//! * `extend` is lane-wise `add`/`mul` (bit-identical to the scalar ops by
//!   IEEE-754) or, for [`LaneAlgebra::MaxMin`], the same `NLE_UQ` blend.
//! * the per-cell change flag is `cmp(merged, cur, NEQ_UQ)` — exactly
//!   Rust's `merged != cur` (`true` for unordered, `false` for
//!   `-0.0 != +0.0`).
//!
//! Tails shorter than a vector run through `scalar_relax`, whose body is
//! the [`LaneAlgebra`] contract itself; the semiring test
//! `lane_algebra_descriptors_match_scalar_semantics` pins that contract to
//! the real `combine`/`extend` implementations bit for bit.
//!
//! All loads and stores use the unaligned (`loadu`/`storeu`) forms: the
//! kernels relax arbitrary sub-rows, so operands are 64B-aligned only when
//! the row stride cooperates. [`AlignedVec`](crate::slab) storage makes
//! the common full-row case cache-line aligned; correctness never depends
//! on it.
//!
//! [`SemiMatrix::floyd_warshall`]: crate::dense::SemiMatrix::floyd_warshall
//! [`SemiMatrix::square_step`]: crate::dense::SemiMatrix::square_step

use crate::semiring::{LaneAlgebra, Semiring};
use std::any::TypeId;
use std::sync::OnceLock;

/// Vector width the dispatcher selected at runtime.
///
/// Ordered by width so a requested level can be capped by what the CPU
/// actually supports (`min`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// 256-bit lanes (`f64x4`) via AVX2.
    Avx2,
    /// 512-bit lanes (`f64x8`) via AVX-512F.
    Avx512,
}

impl SimdLevel {
    /// Human-readable name, used by kernel reports and the E21 bench.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Parsed value of the `SPSEP_SIMD` environment override.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimdOverride {
    /// Force the scalar kernels (`off`, `0`, `scalar`, `none`).
    Off,
    /// Cap at 256-bit lanes even if AVX-512F is available (`avx2`).
    Avx2,
    /// Allow up to 512-bit lanes (`avx512`); still capped by the CPU.
    Avx512,
    /// Use the widest level the CPU supports (`auto`, the default).
    Auto,
}

/// Parse an `SPSEP_SIMD` value. Returns `None` for unrecognized input
/// (the caller treats that as [`SimdOverride::Auto`] — a library must not
/// panic on untrusted environment).
pub fn parse_simd_override(raw: &str) -> Option<SimdOverride> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "scalar" | "none" => Some(SimdOverride::Off),
        "avx2" => Some(SimdOverride::Avx2),
        "avx512" => Some(SimdOverride::Avx512),
        "auto" | "" => Some(SimdOverride::Auto),
        _ => None,
    }
}

/// Combine a parsed override with the probed hardware level. Pure, so the
/// policy is unit-testable without touching the process environment.
pub(crate) fn resolve(req: SimdOverride, hw: Option<SimdLevel>) -> Option<SimdLevel> {
    match req {
        SimdOverride::Off => None,
        SimdOverride::Auto => hw,
        SimdOverride::Avx2 => hw.map(|h| h.min(SimdLevel::Avx2)),
        SimdOverride::Avx512 => hw.map(|h| h.min(SimdLevel::Avx512)),
    }
}

/// What the CPU supports (compile-time gated: `None` when the `simd`
/// feature is off or the target is not x86-64).
fn probe() -> Option<SimdLevel> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            Some(SimdLevel::Avx512)
        } else if std::arch::is_x86_feature_detected!("avx2") {
            Some(SimdLevel::Avx2)
        } else {
            None
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        None
    }
}

static DETECTED: OnceLock<Option<SimdLevel>> = OnceLock::new();

/// The SIMD level the dense kernels will use, or `None` for scalar.
///
/// Runtime CPU detection combined with the `SPSEP_SIMD` environment
/// override (`off` / `avx2` / `avx512` / `auto`; an override can only
/// *cap* the probed level, never exceed it, so a stale `SPSEP_SIMD=avx512`
/// on an AVX2-only host degrades gracefully instead of faulting).
/// Evaluated once per process and cached.
pub fn detect() -> Option<SimdLevel> {
    *DETECTED.get_or_init(|| {
        let req = std::env::var("SPSEP_SIMD")
            .ok()
            .and_then(|v| parse_simd_override(&v))
            .unwrap_or(SimdOverride::Auto);
        resolve(req, probe())
    })
}

/// Portable scalar reference for one relax over `f64` lanes — the
/// [`LaneAlgebra`] contract written out. Used for vector tails, for the
/// non-x86 fallback, and as the oracle in this module's unit tests.
pub(crate) fn scalar_relax(alg: LaneAlgebra, dst: &mut [f64], dik: f64, src: &[f64]) -> bool {
    let mut any = false;
    for (c, &s) in dst.iter_mut().zip(src) {
        let cur = *c;
        let cand = match alg {
            LaneAlgebra::MinAdd | LaneAlgebra::MaxAdd => dik + s,
            LaneAlgebra::MaxMin => {
                if dik <= s {
                    dik
                } else {
                    s
                }
            }
            LaneAlgebra::MaxMul => dik * s,
        };
        let merged = match alg {
            LaneAlgebra::MinAdd => {
                if cur <= cand {
                    cur
                } else {
                    cand
                }
            }
            LaneAlgebra::MaxAdd | LaneAlgebra::MaxMin | LaneAlgebra::MaxMul => {
                if cur >= cand {
                    cur
                } else {
                    cand
                }
            }
        };
        any |= merged != cur;
        *c = merged;
    }
    any
}

/// `dst[j] ← combine(dst[j], extend(dik, src[j]))` over `f64` slices with
/// the requested vector width; returns whether any entry changed, with
/// exactly the scalar kernel's semantics (see the module docs).
///
/// Safe at any `level`: the effective width is re-capped by [`detect`], so
/// a fabricated [`SimdLevel`] can never execute instructions the CPU
/// lacks. Slices of unequal length relax the common prefix (the kernels
/// always pass equal lengths; `debug_assert`ed).
pub fn relax_f64(alg: LaneAlgebra, level: SimdLevel, dst: &mut [f64], dik: f64, src: &[f64]) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let Some(cap) = detect() else {
        return scalar_relax(alg, dst, dik, src);
    };
    let level = level.min(cap);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // SAFETY: `level` is capped by `detect()`, which probed the running
        // CPU for the corresponding target feature.
        unsafe { x86::relax(alg, level, dst, dik, src) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        // `detect()` returns None on this configuration, so `cap` above is
        // unreachable — keep a correct fallback anyway.
        let _ = level;
        scalar_relax(alg, dst, dik, src)
    }
}

/// Generic-slice front end: checked downcast of `S::W` to `f64`, then
/// [`relax_f64`]. Falls back to the semiring's own scalar relax when the
/// weight type is not `f64` (the dispatcher never selects SIMD for such a
/// semiring, so this arm is belt-and-braces, not a hot path).
pub(crate) fn relax_slice<S: Semiring>(
    alg: LaneAlgebra,
    level: SimdLevel,
    dst: &mut [S::W],
    dik: S::W,
    src: &[S::W],
) -> bool {
    if TypeId::of::<S::W>() == TypeId::of::<f64>() {
        // SAFETY: `S::W` was just proven to be exactly `f64` (same type,
        // hence same layout); the raw-parts round trip preserves length
        // and provenance, and `dik` is re-read as the same bits.
        let d = unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<f64>(), dst.len()) };
        // SAFETY: as above, `&[S::W]` is `&[f64]`.
        let s = unsafe { std::slice::from_raw_parts(src.as_ptr().cast::<f64>(), src.len()) };
        // SAFETY: `S::W` is `f64`; `transmute_copy` reinterprets the bits.
        let w = unsafe { std::mem::transmute_copy::<S::W, f64>(&dik) };
        relax_f64(alg, level, d, w, s)
    } else {
        super::relax_block::<S>(dst, dik, src)
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    //! The `#[target_feature]` bodies. Every memory access is an explicit
    //! `unsafe` block with its bounds argument; register-only intrinsics
    //! are safe inside a matching `#[target_feature]` context.

    use super::{scalar_relax, LaneAlgebra, SimdLevel};
    use std::arch::x86_64::*;

    /// `extend` for the Add-algebras, 256-bit.
    macro_rules! ext_add4 {
        ($vd:expr, $vs:expr) => {
            _mm256_add_pd($vd, $vs)
        };
    }
    /// `extend` for MaxMul, 256-bit.
    macro_rules! ext_mul4 {
        ($vd:expr, $vs:expr) => {
            _mm256_mul_pd($vd, $vs)
        };
    }
    /// `extend` for MaxMin (`if a <= b { a } else { b }`), 256-bit.
    macro_rules! ext_min4 {
        ($vd:expr, $vs:expr) => {{
            let take_s = _mm256_cmp_pd::<_CMP_NLE_UQ>($vd, $vs);
            _mm256_blendv_pd($vd, $vs, take_s)
        }};
    }
    /// `extend` for the Add-algebras, 512-bit.
    macro_rules! ext_add8 {
        ($vd:expr, $vs:expr) => {
            _mm512_add_pd($vd, $vs)
        };
    }
    /// `extend` for MaxMul, 512-bit.
    macro_rules! ext_mul8 {
        ($vd:expr, $vs:expr) => {
            _mm512_mul_pd($vd, $vs)
        };
    }
    /// `extend` for MaxMin, 512-bit.
    macro_rules! ext_min8 {
        ($vd:expr, $vs:expr) => {{
            let take_s = _mm512_cmp_pd_mask::<_CMP_NLE_UQ>($vd, $vs);
            _mm512_mask_blend_pd(take_s, $vd, $vs)
        }};
    }

    /// Generate one AVX2 relax body. `$cmp` is the `combine` predicate —
    /// the condition under which the *candidate* replaces the current
    /// value (`NLE_UQ` for Min-combine, `NGE_UQ` for Max-combine), which
    /// is exactly the scalar `else` branch including NaN-unordered.
    macro_rules! relax_avx2 {
        ($name:ident, $alg:expr, $cmp:expr, $ext:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name(dst: &mut [f64], dik: f64, src: &[f64]) -> bool {
                let n = dst.len().min(src.len());
                let vdik = _mm256_set1_pd(dik);
                let mut vchg = _mm256_setzero_pd();
                let mut j = 0usize;
                while j + 4 <= n {
                    // SAFETY: j + 4 <= n <= len of both slices; loadu has
                    // no alignment requirement.
                    let cur = unsafe { _mm256_loadu_pd(dst.as_ptr().add(j)) };
                    // SAFETY: same bounds for `src`.
                    let vs = unsafe { _mm256_loadu_pd(src.as_ptr().add(j)) };
                    let cand = $ext!(vdik, vs);
                    let take = _mm256_cmp_pd::<{ $cmp }>(cur, cand);
                    let merged = _mm256_blendv_pd(cur, cand, take);
                    vchg = _mm256_or_pd(vchg, _mm256_cmp_pd::<_CMP_NEQ_UQ>(merged, cur));
                    // SAFETY: in-bounds as for the load; storeu is
                    // alignment-free.
                    unsafe { _mm256_storeu_pd(dst.as_mut_ptr().add(j), merged) };
                    j += 4;
                }
                let mut any = _mm256_movemask_pd(vchg) != 0;
                if j < n {
                    any |= scalar_relax($alg, &mut dst[j..n], dik, &src[j..n]);
                }
                any
            }
        };
    }

    /// Generate one AVX-512F relax body; same predicate scheme, with
    /// `__mmask8` in place of sign-bit masks.
    macro_rules! relax_avx512 {
        ($name:ident, $alg:expr, $cmp:expr, $ext:ident) => {
            #[target_feature(enable = "avx512f")]
            unsafe fn $name(dst: &mut [f64], dik: f64, src: &[f64]) -> bool {
                let n = dst.len().min(src.len());
                let vdik = _mm512_set1_pd(dik);
                let mut kchg: __mmask8 = 0;
                let mut j = 0usize;
                while j + 8 <= n {
                    // SAFETY: j + 8 <= n <= len of both slices; loadu has
                    // no alignment requirement.
                    let cur = unsafe { _mm512_loadu_pd(dst.as_ptr().add(j)) };
                    // SAFETY: same bounds for `src`.
                    let vs = unsafe { _mm512_loadu_pd(src.as_ptr().add(j)) };
                    let cand = $ext!(vdik, vs);
                    let take = _mm512_cmp_pd_mask::<{ $cmp }>(cur, cand);
                    let merged = _mm512_mask_blend_pd(take, cur, cand);
                    kchg |= _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(merged, cur);
                    // SAFETY: in-bounds as for the load.
                    unsafe { _mm512_storeu_pd(dst.as_mut_ptr().add(j), merged) };
                    j += 8;
                }
                let mut any = kchg != 0;
                if j < n {
                    any |= scalar_relax($alg, &mut dst[j..n], dik, &src[j..n]);
                }
                any
            }
        };
    }

    relax_avx2!(min_add_avx2, LaneAlgebra::MinAdd, _CMP_NLE_UQ, ext_add4);
    relax_avx2!(max_add_avx2, LaneAlgebra::MaxAdd, _CMP_NGE_UQ, ext_add4);
    relax_avx2!(max_min_avx2, LaneAlgebra::MaxMin, _CMP_NGE_UQ, ext_min4);
    relax_avx2!(max_mul_avx2, LaneAlgebra::MaxMul, _CMP_NGE_UQ, ext_mul4);
    relax_avx512!(min_add_avx512, LaneAlgebra::MinAdd, _CMP_NLE_UQ, ext_add8);
    relax_avx512!(max_add_avx512, LaneAlgebra::MaxAdd, _CMP_NGE_UQ, ext_add8);
    relax_avx512!(max_min_avx512, LaneAlgebra::MaxMin, _CMP_NGE_UQ, ext_min8);
    relax_avx512!(max_mul_avx512, LaneAlgebra::MaxMul, _CMP_NGE_UQ, ext_mul8);

    /// Dispatch one relax to the right `(algebra, width)` body.
    ///
    /// # Safety
    ///
    /// The CPU must support the target feature implied by `level`
    /// ([`super::detect`] guarantees this for the levels it returns).
    pub(super) unsafe fn relax(
        alg: LaneAlgebra,
        level: SimdLevel,
        dst: &mut [f64],
        dik: f64,
        src: &[f64],
    ) -> bool {
        // SAFETY (all arms): the caller contract says `level`'s feature is
        // present on this CPU.
        match (level, alg) {
            (SimdLevel::Avx2, LaneAlgebra::MinAdd) => unsafe { min_add_avx2(dst, dik, src) },
            (SimdLevel::Avx2, LaneAlgebra::MaxAdd) => unsafe { max_add_avx2(dst, dik, src) },
            (SimdLevel::Avx2, LaneAlgebra::MaxMin) => unsafe { max_min_avx2(dst, dik, src) },
            (SimdLevel::Avx2, LaneAlgebra::MaxMul) => unsafe { max_mul_avx2(dst, dik, src) },
            (SimdLevel::Avx512, LaneAlgebra::MinAdd) => unsafe { min_add_avx512(dst, dik, src) },
            (SimdLevel::Avx512, LaneAlgebra::MaxAdd) => unsafe { max_add_avx512(dst, dik, src) },
            (SimdLevel::Avx512, LaneAlgebra::MaxMin) => unsafe { max_min_avx512(dst, dik, src) },
            (SimdLevel::Avx512, LaneAlgebra::MaxMul) => unsafe { max_mul_avx512(dst, dik, src) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_override_accepts_documented_spellings() {
        assert_eq!(parse_simd_override("off"), Some(SimdOverride::Off));
        assert_eq!(parse_simd_override("0"), Some(SimdOverride::Off));
        assert_eq!(parse_simd_override("Scalar"), Some(SimdOverride::Off));
        assert_eq!(parse_simd_override("none"), Some(SimdOverride::Off));
        assert_eq!(parse_simd_override("AVX2"), Some(SimdOverride::Avx2));
        assert_eq!(parse_simd_override(" avx512 "), Some(SimdOverride::Avx512));
        assert_eq!(parse_simd_override("auto"), Some(SimdOverride::Auto));
        assert_eq!(parse_simd_override(""), Some(SimdOverride::Auto));
        assert_eq!(parse_simd_override("avx1024"), None);
    }

    #[test]
    fn resolve_caps_requests_by_hardware() {
        assert_eq!(resolve(SimdOverride::Off, Some(SimdLevel::Avx512)), None);
        assert_eq!(
            resolve(SimdOverride::Auto, Some(SimdLevel::Avx512)),
            Some(SimdLevel::Avx512)
        );
        assert_eq!(resolve(SimdOverride::Auto, None), None);
        // A request can cap but never exceed the probed level.
        assert_eq!(
            resolve(SimdOverride::Avx2, Some(SimdLevel::Avx512)),
            Some(SimdLevel::Avx2)
        );
        assert_eq!(
            resolve(SimdOverride::Avx512, Some(SimdLevel::Avx2)),
            Some(SimdLevel::Avx2)
        );
        assert_eq!(resolve(SimdOverride::Avx512, None), None);
    }

    /// Hostile lane values: signed zeros, infinities (so `extend` can
    /// manufacture NaN via `∞ + (−∞)`), denormals, and negatives.
    fn hostile(seed: u64, len: usize) -> Vec<f64> {
        let pool = [
            0.0,
            -0.0,
            1.5,
            -2.25,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 4.0,
            -4.0e-310,
            17.0,
            -3.5,
        ];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                pool[(state % pool.len() as u64) as usize]
            })
            .collect()
    }

    #[test]
    fn vector_relax_bit_identical_to_scalar_for_every_algebra_and_level() {
        let algebras = [
            LaneAlgebra::MinAdd,
            LaneAlgebra::MaxAdd,
            LaneAlgebra::MaxMin,
            LaneAlgebra::MaxMul,
        ];
        let Some(best) = detect() else {
            // No SIMD on this host/config: relax_f64 must still agree with
            // the scalar reference (it *is* the scalar reference then).
            let mut d = hostile(1, 13);
            let mut d2 = d.clone();
            let s = hostile(2, 13);
            let a = relax_f64(LaneAlgebra::MinAdd, SimdLevel::Avx2, &mut d, 1.5, &s);
            let b = scalar_relax(LaneAlgebra::MinAdd, &mut d2, 1.5, &s);
            assert_eq!(a, b);
            assert_eq!(
                d.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                d2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            return;
        };
        let mut levels = vec![SimdLevel::Avx2];
        if best == SimdLevel::Avx512 {
            levels.push(SimdLevel::Avx512);
        }
        let diks = [0.0, -0.0, 2.5, -1.0, f64::INFINITY, f64::NEG_INFINITY];
        for &alg in &algebras {
            for &level in &levels {
                // Lengths straddle the 4- and 8-lane widths and their tails.
                for len in [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31] {
                    for (case, &dik) in diks.iter().enumerate() {
                        let seed = (len as u64) * 100 + case as u64 + 1;
                        let base = hostile(seed, len);
                        let src = hostile(seed ^ 0xABCD, len);
                        let mut vec_dst = base.clone();
                        let mut sc_dst = base.clone();
                        let cv = relax_f64(alg, level, &mut vec_dst, dik, &src);
                        let cs = scalar_relax(alg, &mut sc_dst, dik, &src);
                        assert_eq!(cv, cs, "changed flag: {alg:?} {level:?} len={len} dik={dik}");
                        for (i, (a, b)) in vec_dst.iter().zip(&sc_dst).enumerate() {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{alg:?} {level:?} len={len} dik={dik} lane {i}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nan_round_trip_can_restore_original_bits() {
        // MinAdd with dik = +∞ against src = −∞ manufactures NaN; a later
        // finite candidate must then replace it (NaN is never `<=`).
        // The scalar and vector paths must agree on every intermediate.
        if detect().is_none() {
            return;
        }
        let mut d = vec![5.0, 5.0, 5.0, 5.0, 5.0];
        let mut d2 = d.clone();
        let src = vec![f64::NEG_INFINITY; 5];
        let c1 = relax_f64(
            LaneAlgebra::MinAdd,
            SimdLevel::Avx512,
            &mut d,
            f64::INFINITY,
            &src,
        );
        let c2 = scalar_relax(LaneAlgebra::MinAdd, &mut d2, f64::INFINITY, &src);
        assert_eq!(c1, c2);
        assert!(d[0].is_nan() && d2[0].is_nan());
        let back = vec![2.0; 5];
        relax_f64(LaneAlgebra::MinAdd, SimdLevel::Avx512, &mut d, 1.0, &back);
        scalar_relax(LaneAlgebra::MinAdd, &mut d2, 1.0, &back);
        assert_eq!(d, d2);
        assert_eq!(d, vec![3.0; 5]);
    }
}
