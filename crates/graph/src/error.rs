//! The workspace-wide typed error taxonomy.
//!
//! Every fallible library entry point (parsers, validators, the
//! preprocessing pipeline, the fallback planner) reports an
//! [`SpsepError`]. Each variant guards one invariant of the paper
//! (Cohen, *Efficient Parallel Shortest-Paths in Digraphs with a
//! Separator Decomposition*, SPAA'93 / J. Algorithms 1996):
//!
//! | Variant | Paper invariant it guards |
//! |---|---|
//! | [`SpsepError::InvalidGraph`] | Section 2 input model: weights drawn from the semiring domain (finite, no NaN), endpoints in `0..n` |
//! | [`SpsepError::InvalidDecomposition`] | Prop. 2.1: `S(t)` separates the children of `t`; no edge leaves `V(t) \ B(t)`; level/BFS structure |
//! | [`SpsepError::AbsorbingCycle`] | Comment (i): distances are undefined when an absorbing (negative) cycle exists; detected on the diagonal during preprocessing |
//! | [`SpsepError::BudgetExceeded`] | Theorem 5.1(iii): `E⁺` candidate growth `Σ_t (|S(t)|² + |B(t)|²)` — the serving-memory guard |
//! | [`SpsepError::Parse`] | Well-formedness of the three text formats (DIMACS graph, `st` tree, `ep` augmentation) |
//! | [`SpsepError::Io`] | Underlying reader/writer failures |
//!
//! The enum lives in `spsep-graph` — the root of the workspace crate
//! DAG — so every layer (separator, baselines, core, planar, tvpi) can
//! return it; `spsep_core::error` re-exports it as the canonical public
//! path.

/// Typed error for every fallible operation in the `spsep` workspace.
///
/// See the [module docs](self) for the mapping from variants to the
/// paper invariants they guard.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpsepError {
    /// The input graph violates the Section 2 input model: a NaN or
    /// non-finite weight, an endpoint outside `0..n`, or a size
    /// mismatch with a companion structure.
    InvalidGraph {
        /// Offending vertex id, when one is identifiable.
        vertex: Option<u32>,
        /// Offending edge index into `DiGraph::edges`, when identifiable.
        edge: Option<usize>,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The separator decomposition (or tree decomposition) violates a
    /// Prop. 2.1 structural invariant — e.g. a separator that does not
    /// separate, a broken boundary recurrence
    /// `B(t) = (S(p) ∪ B(p)) ∩ V(t)`, an edge leaving `V(t) \ B(t)`,
    /// or inconsistent per-vertex `node(v)`/`level(v)` maps.
    InvalidDecomposition {
        /// Offending tree node id, when one is identifiable.
        node: Option<u32>,
        /// Offending vertex id, when one is identifiable.
        vertex: Option<u32>,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The graph contains an absorbing cycle (a negative cycle under
    /// the tropical semiring), so the requested distances are undefined
    /// — paper comment (i). Detected during preprocessing on the
    /// diagonal of the per-node dense computations.
    AbsorbingCycle {
        /// A witness cycle as a vertex sequence `v₀ → v₁ → … → v₀`
        /// (first vertex repeated at the end when recovery succeeded;
        /// empty when the detector could not cheaply recover one).
        witness: Vec<u32>,
    },
    /// A resource budget was exceeded before running the expensive
    /// phase — e.g. the `E⁺` candidate bound
    /// `Σ_t (|S(t)|² + |B(t)|²)` of Theorem 5.1(iii) against a
    /// serving-memory budget.
    BudgetExceeded {
        /// What was being budgeted (e.g. `"E⁺ candidate edges"`).
        resource: &'static str,
        /// The configured limit.
        budget: usize,
        /// What the input would have required.
        required: usize,
    },
    /// A worker in the parallel execution engine panicked (or otherwise
    /// died) while running a pipeline phase. The panic is caught at the
    /// chunk boundary, the region drains, and the failure surfaces here
    /// instead of poisoning a lock or hanging a latch.
    Executor {
        /// The panic payload rendered to text, plus phase context when
        /// available.
        what: String,
    },
    /// A text artifact (DIMACS graph, `st` tree, `ep` augmentation)
    /// is malformed.
    Parse {
        /// 1-based line number, when known.
        line: Option<usize>,
        /// What was wrong.
        what: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl SpsepError {
    /// Graph-model violation without positional context.
    pub fn invalid_graph(reason: impl Into<String>) -> Self {
        SpsepError::InvalidGraph {
            vertex: None,
            edge: None,
            reason: reason.into(),
        }
    }

    /// Graph-model violation at a known vertex.
    pub fn invalid_graph_at(vertex: u32, reason: impl Into<String>) -> Self {
        SpsepError::InvalidGraph {
            vertex: Some(vertex),
            edge: None,
            reason: reason.into(),
        }
    }

    /// Graph-model violation at a known edge index.
    pub fn invalid_edge(edge: usize, reason: impl Into<String>) -> Self {
        SpsepError::InvalidGraph {
            vertex: None,
            edge: Some(edge),
            reason: reason.into(),
        }
    }

    /// Decomposition violation without positional context.
    pub fn invalid_decomposition(reason: impl Into<String>) -> Self {
        SpsepError::InvalidDecomposition {
            node: None,
            vertex: None,
            reason: reason.into(),
        }
    }

    /// Decomposition violation at a known tree node.
    pub fn invalid_node(node: u32, reason: impl Into<String>) -> Self {
        SpsepError::InvalidDecomposition {
            node: Some(node),
            vertex: None,
            reason: reason.into(),
        }
    }

    /// Decomposition violation at a known tree node and vertex.
    pub fn invalid_node_vertex(node: u32, vertex: u32, reason: impl Into<String>) -> Self {
        SpsepError::InvalidDecomposition {
            node: Some(node),
            vertex: Some(vertex),
            reason: reason.into(),
        }
    }

    /// Decomposition violation at a known vertex (no node context).
    pub fn invalid_vertex(vertex: u32, reason: impl Into<String>) -> Self {
        SpsepError::InvalidDecomposition {
            node: None,
            vertex: Some(vertex),
            reason: reason.into(),
        }
    }

    /// Parse failure at a 1-based line number.
    pub fn parse_at(line: usize, what: impl Into<String>) -> Self {
        SpsepError::Parse {
            line: Some(line),
            what: what.into(),
        }
    }

    /// Parse failure without a line number (e.g. empty input).
    pub fn parse(what: impl Into<String>) -> Self {
        SpsepError::Parse {
            line: None,
            what: what.into(),
        }
    }

    /// Absorbing-cycle error without a recovered witness.
    pub fn absorbing_cycle() -> Self {
        SpsepError::AbsorbingCycle {
            witness: Vec::new(),
        }
    }

    /// Executor failure from a caught worker panic payload.
    pub fn executor(what: impl Into<String>) -> Self {
        SpsepError::Executor { what: what.into() }
    }

    /// Executor failure from a `catch_unwind` payload, extracting the
    /// panic message when it is a string.
    pub fn executor_from_payload(payload: &(dyn std::any::Any + Send)) -> Self {
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked with a non-string payload".to_string());
        SpsepError::Executor { what }
    }
}

impl std::fmt::Display for SpsepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpsepError::InvalidGraph {
                vertex,
                edge,
                reason,
            } => {
                write!(f, "invalid graph: {reason}")?;
                if let Some(v) = vertex {
                    write!(f, " (vertex {v})")?;
                }
                if let Some(e) = edge {
                    write!(f, " (edge #{e})")?;
                }
                Ok(())
            }
            SpsepError::InvalidDecomposition {
                node,
                vertex,
                reason,
            } => {
                write!(f, "invalid decomposition: {reason}")?;
                if let Some(t) = node {
                    write!(f, " (node {t})")?;
                }
                if let Some(v) = vertex {
                    write!(f, " (vertex {v})")?;
                }
                Ok(())
            }
            SpsepError::AbsorbingCycle { witness } => {
                write!(f, "graph contains an absorbing (negative) cycle")?;
                if !witness.is_empty() {
                    write!(f, "; witness: {witness:?}")?;
                }
                Ok(())
            }
            SpsepError::BudgetExceeded {
                resource,
                budget,
                required,
            } => write!(
                f,
                "budget exceeded: {resource} requires {required} but the budget is {budget}"
            ),
            SpsepError::Executor { what } => {
                write!(f, "executor failure: worker panicked: {what}")
            }
            SpsepError::Parse { line, what } => match line {
                Some(l) => write!(f, "parse error at line {l}: {what}"),
                None => write!(f, "parse error: {what}"),
            },
            SpsepError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for SpsepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpsepError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SpsepError {
    fn from(e: std::io::Error) -> Self {
        SpsepError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SpsepError::invalid_node_vertex(3, 17, "edge crosses the separator");
        let s = e.to_string();
        assert!(s.contains("node 3"), "{s}");
        assert!(s.contains("vertex 17"), "{s}");
        assert!(s.contains("crosses"), "{s}");

        let p = SpsepError::parse_at(42, "bad arc weight 'NaN'");
        assert!(p.to_string().contains("line 42"), "{p}");

        let b = SpsepError::BudgetExceeded {
            resource: "E⁺ candidate edges",
            budget: 10,
            required: 99,
        };
        assert!(b.to_string().contains("requires 99"), "{b}");

        let c = SpsepError::AbsorbingCycle {
            witness: vec![1, 2, 1],
        };
        assert!(c.to_string().contains("[1, 2, 1]"), "{c}");
        assert!(SpsepError::absorbing_cycle().to_string().contains("absorbing"));
    }

    #[test]
    fn executor_errors_render_their_payload() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("index out of bounds".to_string());
        let e = SpsepError::executor_from_payload(boxed.as_ref());
        assert!(e.to_string().contains("index out of bounds"), "{e}");

        let boxed: Box<dyn std::any::Any + Send> = Box::new(17usize);
        let e = SpsepError::executor_from_payload(boxed.as_ref());
        assert!(e.to_string().contains("non-string payload"), "{e}");

        assert!(SpsepError::executor("x").to_string().contains("executor"));
    }

    #[test]
    fn io_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: SpsepError = io.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("eof"));
    }
}
