//! Dense square matrices over a [`Semiring`] with the two kernels the
//! paper's node-processing steps need:
//!
//! * [`SemiMatrix::floyd_warshall`] — all-pairs path weights (Algorithm
//!   4.1 step ii runs this on `H_S`; the paper cites Floyd–Warshall with
//!   `O(|S|³ log |S|)` PRAM work / `O(|S|³)` sequential operations);
//! * [`SemiMatrix::square_step`] — one min-plus "path doubling" step
//!   `A ← A ⊕ A⊗A` (Algorithm 4.3 step ii(1)).
//!
//! Both report their operation count so callers can charge the PRAM cost
//! model, and whether an **absorbing cycle** (negative cycle under the
//! tropical semiring) was exposed on the diagonal — the paper's comment
//! (i) negative-cycle detection hooks in here.

use crate::semiring::Semiring;
use rayon::prelude::*;

/// Outcome of a dense kernel: primitive operation count and whether some
/// diagonal entry strictly improved on the empty path (an absorbing
/// cycle).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelOutcome {
    /// Inner-loop operations performed.
    pub ops: u64,
    /// `true` if an absorbing (e.g. negative) cycle was detected.
    pub absorbing_cycle: bool,
    /// `true` if any entry changed.
    pub changed: bool,
}

/// A dense `n × n` matrix of semiring weights, row-major.
#[derive(Clone, Debug)]
pub struct SemiMatrix<S: Semiring> {
    n: usize,
    data: Vec<S::W>,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Semiring> SemiMatrix<S> {
    /// Matrix of all-`0̄` (no paths), with `1̄` on the diagonal (empty
    /// paths).
    pub fn identity(n: usize) -> Self {
        let mut data = vec![S::zero(); n * n];
        for i in 0..n {
            data[i * n + i] = S::one();
        }
        SemiMatrix {
            n,
            data,
            _marker: std::marker::PhantomData,
        }
    }

    /// Matrix of all-`0̄`, including the diagonal.
    pub fn empty(n: usize) -> Self {
        SemiMatrix {
            n,
            data: vec![S::zero(); n * n],
            _marker: std::marker::PhantomData,
        }
    }

    /// Order of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S::W {
        self.data[i * self.n + j]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, w: S::W) {
        self.data[i * self.n + j] = w;
    }

    /// `combine` `w` into entry `(i, j)` (keep the better of old and new).
    #[inline]
    pub fn relax(&mut self, i: usize, j: usize, w: S::W) {
        let e = &mut self.data[i * self.n + j];
        *e = S::combine(*e, w);
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S::W] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// In-place Floyd–Warshall. Diagonal should start at `1̄` (use
    /// [`SemiMatrix::identity`] + `relax` of the edges).
    ///
    /// The `k` loop is inherently sequential; rows are processed in
    /// parallel for large matrices.
    pub fn floyd_warshall(&mut self) -> KernelOutcome {
        let n = self.n;
        for k in 0..n {
            // Split out row k so rows can be updated in parallel without
            // aliasing it.
            let row_k = self.row(k).to_vec();
            let process_row = |_i: usize, row_i: &mut [S::W]| {
                let dik = row_i[k];
                if S::is_zero(dik) {
                    return;
                }
                for j in 0..n {
                    row_i[j] = S::combine(row_i[j], S::extend(dik, row_k[j]));
                }
            };
            if n >= 128 {
                self.data
                    .par_chunks_mut(n)
                    .enumerate()
                    .for_each(|(i, row_i)| process_row(i, row_i));
            } else {
                for i in 0..n {
                    let row_i = &mut self.data[i * n..(i + 1) * n];
                    process_row(i, row_i);
                }
            }
        }
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: (n as u64).pow(3),
            absorbing_cycle: absorbing,
            changed: true,
        }
    }

    /// One path-doubling step `A ← A ⊕ (A ⊗ A)`; reports whether anything
    /// changed (Algorithm 4.3's iteration can stop early when no node
    /// changes).
    pub fn square_step(&mut self) -> KernelOutcome {
        let n = self.n;
        let old = self.data.clone();
        let changed = std::sync::atomic::AtomicBool::new(false);
        let body = |i: usize, row_i: &mut [S::W]| {
            let mut local_change = false;
            for j in 0..n {
                let mut acc = row_i[j];
                for k in 0..n {
                    let ik = old[i * n + k];
                    if S::is_zero(ik) {
                        continue;
                    }
                    acc = S::combine(acc, S::extend(ik, old[k * n + j]));
                }
                if acc != row_i[j] {
                    row_i[j] = acc;
                    local_change = true;
                }
            }
            if local_change {
                changed.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        };
        if n >= 64 {
            self.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row_i)| body(i, row_i));
        } else {
            let mut data = std::mem::take(&mut self.data);
            for i in 0..n {
                body(i, &mut data[i * n..(i + 1) * n]);
            }
            self.data = data;
        }
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: (n as u64).pow(3),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// All-pairs path weights by repeated squaring: `⌈log₂ n⌉` doubling
    /// steps (the classic `Õ(n³)` "transitive-closure bottleneck"
    /// algorithm the paper's introduction contrasts against).
    pub fn repeated_squaring(&mut self) -> KernelOutcome {
        let mut total = KernelOutcome::default();
        let mut span = 1usize;
        while span < self.n.max(1) {
            let out = self.square_step();
            total.ops += out.ops;
            total.absorbing_cycle |= out.absorbing_cycle;
            total.changed |= out.changed;
            span *= 2;
            if !out.changed {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Boolean, Tropical};

    fn sample() -> SemiMatrix<Tropical> {
        // 0 →(1) 1 →(2) 2, 0 →(10) 2, 2 →(1) 3.
        let mut m = SemiMatrix::<Tropical>::identity(4);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, 2.0);
        m.relax(0, 2, 10.0);
        m.relax(2, 3, 1.0);
        m
    }

    #[test]
    fn floyd_warshall_shortest_paths() {
        let mut m = sample();
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(0, 3), 4.0);
        assert_eq!(m.get(3, 0), f64::INFINITY);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(out.ops, 64);
    }

    #[test]
    fn repeated_squaring_matches_floyd_warshall() {
        let mut a = sample();
        let mut b = sample();
        a.floyd_warshall();
        b.repeated_squaring();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), b.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn negative_cycle_detected() {
        let mut m = SemiMatrix::<Tropical>::identity(3);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, -3.0);
        m.relax(2, 0, 1.0);
        let out = m.floyd_warshall();
        assert!(out.absorbing_cycle);
        let mut m = SemiMatrix::<Tropical>::identity(3);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, -3.0);
        m.relax(2, 0, 1.0);
        let out = m.repeated_squaring();
        assert!(out.absorbing_cycle);
    }

    #[test]
    fn zero_weight_cycle_is_not_absorbing() {
        let mut m = SemiMatrix::<Tropical>::identity(2);
        m.relax(0, 1, 2.0);
        m.relax(1, 0, -2.0);
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn boolean_closure_via_squaring() {
        let mut m = SemiMatrix::<Boolean>::identity(5);
        for i in 0..4 {
            m.relax(i, i + 1, true);
        }
        m.repeated_squaring();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), j >= i);
            }
        }
    }

    #[test]
    fn parallel_paths_take_better() {
        let mut m = SemiMatrix::<Tropical>::identity(2);
        m.relax(0, 1, 5.0);
        m.relax(0, 1, 3.0);
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn large_matrix_parallel_path() {
        // Exercise the rayon branch (n ≥ 128): a directed ring.
        let n = 130;
        let mut m = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            m.relax(i, (i + 1) % n, 1.0);
        }
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, n - 1), (n - 1) as f64);
        assert_eq!(m.get(5, 4), (n - 1) as f64);
    }
}
