//! Dense square matrices over a [`Semiring`] with the two kernels the
//! paper's node-processing steps need:
//!
//! * [`SemiMatrix::floyd_warshall`] — all-pairs path weights (Algorithm
//!   4.1 step ii runs this on `H_S`; the paper cites Floyd–Warshall with
//!   `O(|S|³ log |S|)` PRAM work / `O(|S|³)` sequential operations);
//! * [`SemiMatrix::square_step`] — one min-plus "path doubling" step
//!   `A ← A ⊕ A⊗A` (Algorithm 4.3 step ii(1)).
//!
//! Both are **cache-blocked** (see DESIGN.md §8): `floyd_warshall` runs an
//! order-preserving k-tiled schedule (full-matrix sweeps drop from `n` to
//! `n / TILE`), and `square_step` multiplies against a packed transpose of
//! `A` so the inner loop is two contiguous streams, double-buffered into a
//! persistent scratch owned by the matrix (no per-call `clone()`).
//!
//! The blocking is *not* the textbook three-phase blocked FW: that variant
//! closes panels before outer tiles, which re-associates path-weight sums
//! and under `f64` min-plus can change result bits. Instead every cell here
//! sees exactly the naive kernel's candidate sequence (`k` ascending, same
//! operands, same `0̄` skip, `combine(old, cand)` with `old` first), so
//! blocked and naive outputs are **bit-identical at every thread count** —
//! the retained [`SemiMatrix::floyd_warshall_naive`] /
//! [`SemiMatrix::square_step_naive`] reference kernels and the testkit
//! differential suite enforce this.
//!
//! Both kernels report an honest [`KernelOutcome`]: `ops` counts the
//! combine/extend pairs actually executed (the `0̄`-row skip is real work
//! saved, not hidden), and `changed` reflects whether any entry improved.
//! Callers charge the PRAM cost model from `ops`. The diagonal check for an
//! **absorbing cycle** (negative cycle under the tropical semiring) hooks
//! into the paper's comment (i) negative-cycle detection.
//!
//! On top of the scalar kernels sits a third implementation tier: the
//! [`simd`] submodule vectorizes the shared relax primitive with runtime-
//! detected AVX2/AVX-512F for the `f64` semirings that advertise a
//! [`LaneAlgebra`], and [`select_kernel`] / the [`MinPlusKernel`] trait
//! let callers (alg4.1/4.3/4.4 via `NodeWorkspace`) bind the dispatch
//! decision once per preprocess instead of once per call. The SIMD tier is
//! bit-identical to the scalar tiers by construction — see DESIGN.md §13.

pub mod simd;

use crate::semiring::{LaneAlgebra, Semiring};
use crate::slab::AlignedVec;
use rayon::prelude::*;
use simd::SimdLevel;
use std::any::TypeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Edge length of the `k`-tile used by the blocked Floyd–Warshall (default
/// for `SPSEP_TILE`) and the row-tile granularity of `square_step` change
/// flags.
pub const TILE: usize = 32;
/// Largest accepted `SPSEP_TILE`: bounds the stack-allocated pivot latch
/// of the FW outer phase.
pub const MAX_TILE: usize = 128;
/// Rows per parallel task in the blocked FW outer phase: coarse enough to
/// amortize scheduling, fine enough to load-balance.
const FW_ROWCHUNK: usize = 8;
/// Column-block width of the FW outer phase (default for
/// `SPSEP_FW_JBLOCK`): with pivots outermost, one `FW_ROWCHUNK × FW_JBLOCK`
/// row block (8 KiB of `f64`) plus one panel segment (1 KiB) stay
/// L1-resident across all of a tile's pivots.
const FW_JBLOCK: usize = 128;
/// Largest accepted `SPSEP_FW_JBLOCK`.
const MAX_JBLOCK: usize = 4096;
/// Minimum order before `floyd_warshall` fans rows out to the pool.
const PAR_FW_MIN_N: usize = 128;
/// Minimum order before `square_step` fans row-tiles out to the pool.
const PAR_SQ_MIN_N: usize = 64;

/// Parse a tile-size environment value: accepted iff it is an integer in
/// `1..=max` (pure, so the validation is unit-testable).
pub(crate) fn parse_tile_spec(raw: &str, max: usize) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(v) if (1..=max).contains(&v) => Some(v),
        _ => None,
    }
}

/// Read a validated tile size from the environment, falling back to the
/// compiled-in default on absent or out-of-range values (a library must
/// not panic on untrusted environment; E16 documents the tunables).
fn env_tile(name: &str, default: usize, max: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| parse_tile_spec(&v, max))
        .unwrap_or(default)
}

/// `SPSEP_TILE` (validated `1..=128`, default [`TILE`]), read once.
fn fw_tile() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_tile("SPSEP_TILE", TILE, MAX_TILE))
}

/// `SPSEP_FW_JBLOCK` (validated `1..=4096`, default 128), read once.
fn fw_jblock() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_tile("SPSEP_FW_JBLOCK", FW_JBLOCK, MAX_JBLOCK))
}

/// Which relax implementation a kernel invocation uses. Resolved once at
/// kernel entry ([`auto_sel`]), then threaded through the inner loops so
/// the per-call cost is a two-way branch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum RelaxSel {
    /// The shared scalar `relax_block` (always available, every semiring).
    Scalar,
    /// Vector relax from [`simd`] — only selected when the semiring
    /// advertises a [`LaneAlgebra`], its weights are `f64`, and the CPU
    /// supports the level.
    Simd(LaneAlgebra, SimdLevel),
}

/// The relax tier [`SemiMatrix::floyd_warshall`] / [`SemiMatrix::square_step`]
/// will auto-select for semiring `S` on this host (environment overrides
/// included).
fn auto_sel<S: Semiring>() -> RelaxSel {
    if TypeId::of::<S::W>() == TypeId::of::<f64>() {
        if let (Some(alg), Some(level)) = (S::lane_algebra(), simd::detect()) {
            return RelaxSel::Simd(alg, level);
        }
    }
    RelaxSel::Scalar
}

/// True when the auto-dispatched kernels will run vectorized for `S` —
/// the E21 bench uses this to report honest speedups (a scalar-fallback
/// host measures 1.0×, not a fake win).
pub fn simd_active<S: Semiring>() -> bool {
    matches!(auto_sel::<S>(), RelaxSel::Simd(..))
}

#[inline]
fn dispatch_relax<S: Semiring>(sel: RelaxSel, dst: &mut [S::W], dik: S::W, src: &[S::W]) -> bool {
    match sel {
        RelaxSel::Scalar => relax_block::<S>(dst, dik, src),
        RelaxSel::Simd(alg, level) => simd::relax_slice::<S>(alg, level, dst, dik, src),
    }
}

/// Outcome of a dense kernel: primitive operation count and whether some
/// diagonal entry strictly improved on the empty path (an absorbing
/// cycle).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelOutcome {
    /// Inner-loop combine/extend pairs actually executed (skipped `0̄`
    /// rows are not counted).
    pub ops: u64,
    /// `true` if an absorbing (e.g. negative) cycle was detected.
    pub absorbing_cycle: bool,
    /// `true` if any entry changed relative to the input matrix.
    pub changed: bool,
}

/// A dense `n × n` matrix of semiring weights, row-major.
///
/// Owns persistent scratch buffers (double-buffer target, packed
/// transpose, per-row-tile change flags) so repeated kernel calls on the
/// same matrix allocate nothing in steady state. `Clone` copies only the
/// payload; the clone starts with empty scratch.
///
/// Payload and scratch live in 64-byte-aligned [`AlignedVec`] storage
/// (the `graph::slab` cache-line constant), so whole rows start on cache
/// lines and — when the stride cooperates — SIMD row sweeps run on
/// aligned addresses. Correctness never depends on alignment (the vector
/// relax uses unaligned loads); this is purely a locality measure.
#[derive(Debug)]
pub struct SemiMatrix<S: Semiring> {
    n: usize,
    data: AlignedVec<S::W>,
    /// Double-buffer target for `square_step` / panel snapshots for
    /// `floyd_warshall`. Contents are meaningless between calls.
    scratch: AlignedVec<S::W>,
    /// Packed transpose of `data` built by `square_step`.
    transpose: AlignedVec<S::W>,
    /// Per-row-tile change flags from the *last* `square_step` (empty =
    /// unknown). Lets the next `square_step` of a doubling sequence skip
    /// candidate `k` ranges that provably cannot improve anything.
    tile_changed: Vec<bool>,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Semiring> Clone for SemiMatrix<S> {
    fn clone(&self) -> Self {
        SemiMatrix {
            n: self.n,
            data: self.data.clone(),
            scratch: AlignedVec::new(),
            transpose: AlignedVec::new(),
            tile_changed: self.tile_changed.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// `dst[j] ← combine(dst[j], extend(dik, src[j]))` over a block; returns
/// whether any entry changed. Shared by the naive and blocked kernels so
/// their per-cell operation is literally the same code.
#[inline]
fn relax_block<S: Semiring>(dst: &mut [S::W], dik: S::W, src: &[S::W]) -> bool {
    let mut any = false;
    for (c, &s) in dst.iter_mut().zip(src) {
        let cur = *c;
        let merged = S::combine(cur, S::extend(dik, s));
        any |= merged != cur;
        *c = merged;
    }
    any
}

impl<S: Semiring> SemiMatrix<S> {
    /// Matrix of all-`0̄` (no paths), with `1̄` on the diagonal (empty
    /// paths).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::empty(n);
        for i in 0..n {
            m.data[i * n + i] = S::one();
        }
        m
    }

    /// Adopt an existing row-major payload (length `n²`). The payload is
    /// copied once into cache-line-aligned storage.
    pub fn from_flat(n: usize, data: Vec<S::W>) -> Self {
        assert_eq!(data.len(), n * n, "payload must be n×n");
        SemiMatrix {
            n,
            data: AlignedVec::from_slice(&data),
            scratch: AlignedVec::new(),
            transpose: AlignedVec::new(),
            tile_changed: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Matrix of all-`0̄`, including the diagonal.
    pub fn empty(n: usize) -> Self {
        let mut data = AlignedVec::new();
        data.resize(n * n, S::zero());
        SemiMatrix {
            n,
            data,
            scratch: AlignedVec::new(),
            transpose: AlignedVec::new(),
            tile_changed: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reshape to an `n × n` identity, reusing the existing allocations.
    pub fn reset_identity(&mut self, n: usize) {
        self.reset_empty(n);
        for i in 0..n {
            self.data[i * n + i] = S::one();
        }
    }

    /// Reshape to an `n × n` all-`0̄` matrix, reusing the existing
    /// allocations.
    pub fn reset_empty(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, S::zero());
        self.tile_changed.clear();
    }

    /// Order of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S::W {
        self.data[i * self.n + j]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, w: S::W) {
        self.data[i * self.n + j] = w;
        self.tile_changed.clear();
    }

    /// `combine` `w` into entry `(i, j)` (keep the better of old and new).
    #[inline]
    pub fn relax(&mut self, i: usize, j: usize, w: S::W) {
        let e = &mut self.data[i * self.n + j];
        *e = S::combine(*e, w);
        self.tile_changed.clear();
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S::W] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole payload, row-major (tests compare kernel outputs bit for
    /// bit through this).
    pub fn data(&self) -> &[S::W] {
        &self.data
    }

    /// Bytes held by the payload and scratch buffers (capacity, not len) —
    /// feeds the workspace peak-memory accounting.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<S::W>()
            * (self.data.capacity() + self.scratch.capacity() + self.transpose.capacity())
            + self.tile_changed.capacity()
    }

    /// In-place Floyd–Warshall. Diagonal should start at `1̄` (use
    /// [`SemiMatrix::identity`] + `relax` of the edges).
    ///
    /// Cache-blocked over `k`-tiles of [`TILE`] (tunable via `SPSEP_TILE` /
    /// `SPSEP_FW_JBLOCK`): for each tile the tile's own rows are closed
    /// sequentially (snapshotting each row `k` at its pre-step state into a
    /// panel), then all other rows apply the whole tile in one parallel
    /// sweep, reading their `d(i,k)` pivots in `k` order exactly as the
    /// naive kernel would. Per-cell candidate order is identical to
    /// [`SemiMatrix::floyd_warshall_naive`], so the result is bit-identical
    /// at every thread count; the win is `n/TILE` full-matrix sweeps
    /// instead of `n`, plus an L1-blocked inner loop.
    ///
    /// The relax primitive auto-dispatches to the [`simd`] tier when the
    /// semiring and CPU allow it (see [`simd_active`]); use
    /// [`SemiMatrix::floyd_warshall_blocked`] to force the scalar tier.
    pub fn floyd_warshall(&mut self) -> KernelOutcome {
        self.floyd_warshall_impl(auto_sel::<S>(), fw_tile(), fw_jblock())
    }

    /// [`SemiMatrix::floyd_warshall`] with the relax primitive pinned to
    /// the blocked *scalar* tier — the E21 bench baseline, and the
    /// guaranteed-portable path.
    pub fn floyd_warshall_blocked(&mut self) -> KernelOutcome {
        self.floyd_warshall_impl(RelaxSel::Scalar, fw_tile(), fw_jblock())
    }

    fn floyd_warshall_impl(&mut self, sel: RelaxSel, tile_w: usize, jblock: usize) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        self.tile_changed.clear();
        let tile = tile_w.clamp(1, MAX_TILE).min(n);
        let mut panel = std::mem::take(&mut self.scratch);
        panel.clear();
        panel.resize(tile * n, S::zero());
        let ops = AtomicU64::new(0);
        let changed = AtomicBool::new(false);

        let mut t0 = 0usize;
        while t0 < n {
            let t1 = (t0 + tile).min(n);
            let tb = t1 - t0;

            // Phase 1 — tile rows, sequential, naive order. Row `k` is
            // snapshotted at its pre-step-`k` state, which is exactly what
            // the naive kernel's per-`k` row copy holds (step `k` may
            // change row `k` itself when the diagonal is absorbing, so the
            // snapshot, not the live row, is the operand both schedules
            // must read).
            for k in t0..t1 {
                let pk = k - t0;
                panel[pk * n..pk * n + n].copy_from_slice(&self.data[k * n..k * n + n]);
                let mut ops1 = 0u64;
                let mut ch1 = false;
                for r in t0..t1 {
                    let row = &mut self.data[r * n..r * n + n];
                    let drk = row[k];
                    if S::is_zero(drk) {
                        continue;
                    }
                    ops1 += n as u64;
                    ch1 |= dispatch_relax::<S>(sel, row, drk, &panel[pk * n..pk * n + n]);
                }
                ops.fetch_add(ops1, Ordering::Relaxed);
                if ch1 {
                    changed.store(true, Ordering::Relaxed);
                }
            }

            // Phase 2 — all rows outside the tile apply pivots
            // k = t0..t1 in ascending order. Pass A sweeps the tile's own
            // columns first, reading each `d(i,k)` *after* pivots < k have
            // been applied to it (naive order) and latching it; pass B
            // replays the latched pivots over the remaining columns in
            // L1-sized blocks.
            let outer_chunk = |ci: usize, chunk: &mut [S::W]| -> (u64, bool) {
                let base_row = ci * FW_ROWCHUNK;
                let mut diks = [[S::zero(); MAX_TILE]; FW_ROWCHUNK];
                let mut o = 0u64;
                let mut ch = false;
                for (ri, row) in chunk.chunks_mut(n).enumerate() {
                    let i = base_row + ri;
                    if i >= t0 && i < t1 {
                        continue;
                    }
                    for k in t0..t1 {
                        let pk = k - t0;
                        let dik = row[k];
                        diks[ri][pk] = dik;
                        if S::is_zero(dik) {
                            continue;
                        }
                        o += tb as u64;
                        ch |= dispatch_relax::<S>(
                            sel,
                            &mut row[t0..t1],
                            dik,
                            &panel[pk * n + t0..pk * n + t1],
                        );
                    }
                }
                let mut jb0 = 0usize;
                while jb0 < n {
                    let jb1 = (jb0 + jblock).min(n);
                    // Split the block around the tile's columns (already
                    // done in pass A). Pivots run *outside* the row loop
                    // so each panel segment is read once per chunk rather
                    // than once per row; per cell the pivots still arrive
                    // in ascending `k` order, so the candidate sequence —
                    // and hence every bit — matches the naive schedule.
                    for (s0, s1) in [(jb0, jb1.min(t0)), (jb0.max(t1), jb1)] {
                        if s0 >= s1 {
                            continue;
                        }
                        for pk in 0..tb {
                            let prow = &panel[pk * n + s0..pk * n + s1];
                            for (ri, row) in chunk.chunks_mut(n).enumerate() {
                                let i = base_row + ri;
                                if i >= t0 && i < t1 {
                                    continue;
                                }
                                let dik = diks[ri][pk];
                                if S::is_zero(dik) {
                                    continue;
                                }
                                o += (s1 - s0) as u64;
                                ch |= dispatch_relax::<S>(sel, &mut row[s0..s1], dik, prow);
                            }
                        }
                    }
                    jb0 = jb1;
                }
                (o, ch)
            };

            if n >= PAR_FW_MIN_N {
                self.data
                    .par_chunks_mut(n * FW_ROWCHUNK)
                    .enumerate()
                    .for_each(|(ci, chunk)| {
                        let (o, c) = outer_chunk(ci, chunk);
                        ops.fetch_add(o, Ordering::Relaxed);
                        if c {
                            changed.store(true, Ordering::Relaxed);
                        }
                    });
            } else {
                for (ci, chunk) in self.data.chunks_mut(n * FW_ROWCHUNK).enumerate() {
                    let (o, c) = outer_chunk(ci, chunk);
                    ops.fetch_add(o, Ordering::Relaxed);
                    if c {
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            }
            t0 = t1;
        }

        self.scratch = panel;
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// The pre-blocking Floyd–Warshall, retained as the bit-identity
    /// reference and the bench baseline (it keeps the seed's per-`k`
    /// `row_k` copy so the measured speedup is against the real former
    /// kernel, with accounting made honest).
    pub fn floyd_warshall_naive(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        self.tile_changed.clear();
        let ops = AtomicU64::new(0);
        let changed = AtomicBool::new(false);
        for k in 0..n {
            // Split out row k so rows can be updated in parallel without
            // aliasing it.
            let row_k = self.row(k).to_vec();
            let process_row = |row_i: &mut [S::W]| {
                let dik = row_i[k];
                if S::is_zero(dik) {
                    return;
                }
                ops.fetch_add(n as u64, Ordering::Relaxed);
                if relax_block::<S>(row_i, dik, &row_k) {
                    changed.store(true, Ordering::Relaxed);
                }
            };
            if n >= PAR_FW_MIN_N {
                self.data
                    .par_chunks_mut(n)
                    .for_each(process_row);
            } else {
                for i in 0..n {
                    process_row(&mut self.data[i * n..(i + 1) * n]);
                }
            }
        }
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// One path-doubling step `A ← A ⊕ (A ⊗ A)`; reports whether anything
    /// changed (Algorithm 4.3's iteration can stop early when no node
    /// changes).
    ///
    /// The product reads a packed transpose of `A` so both inner streams
    /// are contiguous, and writes into the persistent double-buffer
    /// scratch (no full-matrix `clone`). Change is tracked per row-tile of
    /// [`TILE`] rows; inside a doubling sequence, rows whose tile did not
    /// change last step only need to rescan candidate `k` ranges from
    /// tiles that *did* change — for a selective semiring every skipped
    /// candidate was already folded into the current entry with identical
    /// bits, so the pruned step stays bit-identical to the naive one (see
    /// DESIGN.md §8 for the argument).
    ///
    /// Auto-dispatches between the blocked scalar implementation and the
    /// [`simd`] relax-form implementation (see [`simd_active`]); both are
    /// bit-identical to [`SemiMatrix::square_step_naive`], including the
    /// `ops` count and the per-tile change flags.
    pub fn square_step(&mut self) -> KernelOutcome {
        match auto_sel::<S>() {
            RelaxSel::Scalar => self.square_step_blocked(),
            sel => self.square_step_relax(sel),
        }
    }

    /// [`SemiMatrix::square_step`] pinned to the blocked *scalar* tier
    /// (packed-transpose dot-product form) — the E21 bench baseline, and
    /// the guaranteed-portable path.
    pub fn square_step_blocked(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        let n_tiles = n.div_ceil(TILE);

        let mut tbuf = std::mem::take(&mut self.transpose);
        tbuf.clear();
        tbuf.resize(n * n, S::zero());
        pack_transpose::<S>(&self.data, &mut tbuf, n);

        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        out.resize(n * n, S::zero());

        let hint: Option<&[bool]> = if S::is_selective() && self.tile_changed.len() == n_tiles {
            Some(&self.tile_changed)
        } else {
            None
        };
        let new_flags: Vec<AtomicBool> = (0..n_tiles).map(|_| AtomicBool::new(false)).collect();
        let ops = AtomicU64::new(0);
        let data = &self.data;
        let tb = &tbuf;

        let process_tile = |ti: usize, rows: &mut [S::W]| {
            let full = hint.is_none_or(|h| h[ti]);
            let mut o = 0u64;
            let mut ch = false;
            for (ri, out_row) in rows.chunks_mut(n).enumerate() {
                let i = ti * TILE + ri;
                let a = &data[i * n..(i + 1) * n];
                for (j, slot) in out_row.iter_mut().enumerate() {
                    let tj = &tb[j * n..(j + 1) * n];
                    let mut acc = a[j];
                    if full {
                        for (&ik, &tk) in a.iter().zip(tj) {
                            if S::is_zero(ik) {
                                continue;
                            }
                            o += 1;
                            acc = S::combine(acc, S::extend(ik, tk));
                        }
                    } else if let Some(h) = hint {
                        // Only `k` in row-tiles that changed last step can
                        // contribute a candidate not already folded in.
                        for (kt, &chg) in h.iter().enumerate() {
                            if !chg {
                                continue;
                            }
                            let k0 = kt * TILE;
                            let k1 = (k0 + TILE).min(n);
                            for (&ik, &tk) in a[k0..k1].iter().zip(&tj[k0..k1]) {
                                if S::is_zero(ik) {
                                    continue;
                                }
                                o += 1;
                                acc = S::combine(acc, S::extend(ik, tk));
                            }
                        }
                    }
                    // Write-if-changed, like the naive kernel: when the
                    // fold lands numerically equal to the input (`!=` is
                    // false — e.g. `-0.0` folded through a NaN back to
                    // `+0.0`), the *input* bits survive.
                    if acc != a[j] {
                        ch = true;
                        *slot = acc;
                    } else {
                        *slot = a[j];
                    }
                }
            }
            ops.fetch_add(o, Ordering::Relaxed);
            if ch {
                new_flags[ti].store(true, Ordering::Relaxed);
            }
        };

        if n >= PAR_SQ_MIN_N {
            out.par_chunks_mut(n * TILE)
                .enumerate()
                .for_each(|(ti, rows)| process_tile(ti, rows));
        } else {
            for (ti, rows) in out.chunks_mut(n * TILE).enumerate() {
                process_tile(ti, rows);
            }
        }

        let old = std::mem::replace(&mut self.data, out);
        self.scratch = old;
        self.transpose = tbuf;
        self.tile_changed.clear();
        self.tile_changed
            .extend(new_flags.iter().map(|f| f.load(Ordering::Relaxed)));
        let changed = self.tile_changed.iter().any(|&c| c);

        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed,
        }
    }

    /// The vectorized `square_step`: relax form (`ikj`) instead of
    /// dot-product form (`ijk`), so the inner loop is one [`simd`] row
    /// sweep `out[i, ·] ← combine(out[i, ·], extend(a[i,k], a[k, ·]))`.
    ///
    /// Bit-identity argument: `out[i, ·]` starts as a copy of `a[i, ·]`,
    /// and candidates arrive per cell in exactly the naive order (`k`
    /// ascending, same `0̄` skips, current value first in `combine`) — the
    /// loop interchange only changes *which cells sit between* two
    /// consecutive candidates of a cell, never a cell's own sequence. The
    /// per-row change flag is computed as a final-vs-initial `!=` sweep —
    /// the same comparison the naive kernel does — rather than accumulated
    /// per relax, because a cell can leave and re-enter its original bits
    /// (e.g. `5 → NaN → 5` via an `∞ + (−∞)` candidate) and the naive
    /// kernel reports that as unchanged. `ops` accounting is `n` per
    /// scanned non-`0̄` pivot, which is exactly the naive/blocked total.
    /// The tile-hint pruning applies unchanged: it restricts the scanned
    /// `k` set identically in both loop orders.
    ///
    /// No packed transpose is needed (the relax form reads `a[k, ·]` rows
    /// directly), which removes the `O(n²)` pack from the critical path.
    fn square_step_relax(&mut self, sel: RelaxSel) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        let n_tiles = n.div_ceil(TILE);

        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        out.resize(n * n, S::zero());

        let hint: Option<&[bool]> = if S::is_selective() && self.tile_changed.len() == n_tiles {
            Some(&self.tile_changed)
        } else {
            None
        };
        let new_flags: Vec<AtomicBool> = (0..n_tiles).map(|_| AtomicBool::new(false)).collect();
        let ops = AtomicU64::new(0);
        let data = &self.data;

        let process_tile = |ti: usize, rows: &mut [S::W]| {
            let full = hint.is_none_or(|h| h[ti]);
            let mut o = 0u64;
            let mut ch = false;
            for (ri, out_row) in rows.chunks_mut(n).enumerate() {
                let i = ti * TILE + ri;
                let a = &data[i * n..(i + 1) * n];
                out_row.copy_from_slice(a);
                let scan = |out_row: &mut [S::W], k0: usize, k1: usize| -> u64 {
                    let mut o = 0u64;
                    for k in k0..k1 {
                        let dik = a[k];
                        if S::is_zero(dik) {
                            continue;
                        }
                        o += n as u64;
                        dispatch_relax::<S>(sel, out_row, dik, &data[k * n..(k + 1) * n]);
                    }
                    o
                };
                if full {
                    o += scan(out_row, 0, n);
                } else if let Some(h) = hint {
                    // Only `k` in row-tiles that changed last step can
                    // contribute a candidate not already folded in.
                    for (kt, &chg) in h.iter().enumerate() {
                        if !chg {
                            continue;
                        }
                        o += scan(out_row, kt * TILE, ((kt + 1) * TILE).min(n));
                    }
                }
                // Final-vs-initial sweep with write-back: where the fold
                // ended `!=`-distinguishable from the input the row
                // changed; where it ended numerically equal (which
                // includes `-0.0` vs `+0.0` after a NaN round trip) the
                // *input* bits are restored, exactly as the naive
                // kernel's write-if-changed does.
                for (x, y) in out_row.iter_mut().zip(a) {
                    if *x != *y {
                        ch = true;
                    } else {
                        *x = *y;
                    }
                }
            }
            ops.fetch_add(o, Ordering::Relaxed);
            if ch {
                new_flags[ti].store(true, Ordering::Relaxed);
            }
        };

        if n >= PAR_SQ_MIN_N {
            out.par_chunks_mut(n * TILE)
                .enumerate()
                .for_each(|(ti, rows)| process_tile(ti, rows));
        } else {
            for (ti, rows) in out.chunks_mut(n * TILE).enumerate() {
                process_tile(ti, rows);
            }
        }

        let old = std::mem::replace(&mut self.data, out);
        self.scratch = old;
        self.tile_changed.clear();
        self.tile_changed
            .extend(new_flags.iter().map(|f| f.load(Ordering::Relaxed)));
        let changed = self.tile_changed.iter().any(|&c| c);

        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed,
        }
    }

    /// The pre-blocking `square_step`, retained as the bit-identity
    /// reference and bench baseline: full-matrix `clone`, strided
    /// `old[k*n + j]` reads, no change-flag pruning; accounting made
    /// honest.
    pub fn square_step_naive(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        self.tile_changed.clear();
        let old = self.data.clone();
        let ops = AtomicU64::new(0);
        let changed = AtomicBool::new(false);
        let body = |i: usize, row_i: &mut [S::W]| {
            let mut local_change = false;
            let mut o = 0u64;
            for j in 0..n {
                let mut acc = row_i[j];
                for k in 0..n {
                    let ik = old[i * n + k];
                    if S::is_zero(ik) {
                        continue;
                    }
                    o += 1;
                    acc = S::combine(acc, S::extend(ik, old[k * n + j]));
                }
                if acc != row_i[j] {
                    row_i[j] = acc;
                    local_change = true;
                }
            }
            ops.fetch_add(o, Ordering::Relaxed);
            if local_change {
                changed.store(true, Ordering::Relaxed);
            }
        };
        if n >= PAR_SQ_MIN_N {
            self.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row_i)| body(i, row_i));
        } else {
            let mut data = std::mem::take(&mut self.data);
            for i in 0..n {
                body(i, &mut data[i * n..(i + 1) * n]);
            }
            self.data = data;
        }
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// All-pairs path weights by repeated squaring: `⌈log₂ n⌉` doubling
    /// steps (the classic `Õ(n³)` "transitive-closure bottleneck"
    /// algorithm the paper's introduction contrasts against). Later steps
    /// are pruned by the per-tile change flags of earlier ones.
    pub fn repeated_squaring(&mut self) -> KernelOutcome {
        let mut total = KernelOutcome::default();
        let mut span = 1usize;
        while span < self.n.max(1) {
            let out = self.square_step();
            total.ops += out.ops;
            total.absorbing_cycle |= out.absorbing_cycle;
            total.changed |= out.changed;
            span *= 2;
            if !out.changed {
                break;
            }
        }
        total
    }
}

/// A bound pair of dense kernels (`floyd_warshall` + `square_step`).
///
/// The node-processing algorithms (alg4.1/4.3/4.4) resolve the kernel
/// tier **once per preprocess** through [`select_kernel`] and then call
/// through this trait, instead of re-running feature detection and
/// semiring dispatch on every matrix call. All implementations are
/// bit-identical (the differential suites enforce it); they differ only
/// in speed.
pub trait MinPlusKernel<S: Semiring>: Send + Sync + std::fmt::Debug {
    /// Stable identifier for logs, traces and bench records.
    fn name(&self) -> &'static str;
    /// Run all-pairs closure on `m` (see [`SemiMatrix::floyd_warshall`]).
    fn floyd_warshall(&self, m: &mut SemiMatrix<S>) -> KernelOutcome;
    /// Run one doubling step on `m` (see [`SemiMatrix::square_step`]).
    fn square_step(&self, m: &mut SemiMatrix<S>) -> KernelOutcome;
}

/// The pre-blocking reference kernels ([`SemiMatrix::floyd_warshall_naive`]
/// / [`SemiMatrix::square_step_naive`]) — the bit-identity oracle.
#[derive(Copy, Clone, Debug, Default)]
pub struct NaiveKernel;

/// The cache-blocked scalar kernels — the portable production tier and
/// the E21 baseline.
#[derive(Copy, Clone, Debug, Default)]
pub struct BlockedKernel;

/// The auto-dispatching kernels: vectorized relax when the semiring and
/// CPU allow it, otherwise identical to [`BlockedKernel`].
#[derive(Copy, Clone, Debug, Default)]
pub struct SimdKernel;

impl<S: Semiring> MinPlusKernel<S> for NaiveKernel {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn floyd_warshall(&self, m: &mut SemiMatrix<S>) -> KernelOutcome {
        m.floyd_warshall_naive()
    }
    fn square_step(&self, m: &mut SemiMatrix<S>) -> KernelOutcome {
        m.square_step_naive()
    }
}

impl<S: Semiring> MinPlusKernel<S> for BlockedKernel {
    fn name(&self) -> &'static str {
        "blocked"
    }
    fn floyd_warshall(&self, m: &mut SemiMatrix<S>) -> KernelOutcome {
        m.floyd_warshall_blocked()
    }
    fn square_step(&self, m: &mut SemiMatrix<S>) -> KernelOutcome {
        m.square_step_blocked()
    }
}

impl<S: Semiring> MinPlusKernel<S> for SimdKernel {
    fn name(&self) -> &'static str {
        match simd::detect() {
            Some(SimdLevel::Avx512) => "simd-avx512",
            Some(SimdLevel::Avx2) => "simd-avx2",
            None => "simd-fallback-blocked",
        }
    }
    fn floyd_warshall(&self, m: &mut SemiMatrix<S>) -> KernelOutcome {
        m.floyd_warshall()
    }
    fn square_step(&self, m: &mut SemiMatrix<S>) -> KernelOutcome {
        m.square_step()
    }
}

/// The kernel tier the current host/semiring combination should use:
/// [`SimdKernel`] when [`simd_active`] holds, else [`BlockedKernel`].
/// Kernels are ZSTs, so the returned reference is `'static` for free and
/// can be stowed in long-lived workspaces.
pub fn select_kernel<S: Semiring>() -> &'static dyn MinPlusKernel<S> {
    if simd_active::<S>() {
        &SimdKernel
    } else {
        &BlockedKernel
    }
}

/// Pack `dst[j*n + i] = src[i*n + j]` with square blocking so both sides
/// stay cache-resident.
fn pack_transpose<S: Semiring>(src: &[S::W], dst: &mut [S::W], n: usize) {
    for i0 in (0..n).step_by(TILE) {
        let i1 = (i0 + TILE).min(n);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let row = &src[i * n..(i + 1) * n];
                for j in j0..j1 {
                    dst[j * n + i] = row[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Boolean, Tropical};

    fn sample() -> SemiMatrix<Tropical> {
        // 0 →(1) 1 →(2) 2, 0 →(10) 2, 2 →(1) 3.
        let mut m = SemiMatrix::<Tropical>::identity(4);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, 2.0);
        m.relax(0, 2, 10.0);
        m.relax(2, 3, 1.0);
        m
    }

    /// Deterministic pseudo-random matrix with `0̄` holes and negative
    /// weights, order `n`.
    fn random_matrix(n: usize, seed: u64) -> SemiMatrix<Tropical> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut m = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let r = next();
                if r % 4 == 0 {
                    continue; // leave a 0̄ hole
                }
                // Weights in [0.5, 8.5); keep them positive so random
                // instances stay free of absorbing cycles (signed weights
                // are covered by the dedicated cycle tests).
                let w = 0.5 + (r % 1024) as f64 / 128.0;
                m.set(i, j, w);
            }
        }
        m
    }

    fn assert_bits_equal(a: &SemiMatrix<Tropical>, b: &SemiMatrix<Tropical>, context: &str) {
        assert_eq!(a.n(), b.n(), "{context}: order");
        for (idx, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: cell {} ({x} vs {y})",
                idx
            );
        }
    }

    #[test]
    fn floyd_warshall_shortest_paths() {
        let mut m = sample();
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert!(out.changed);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(0, 3), 4.0);
        assert_eq!(m.get(3, 0), f64::INFINITY);
        assert_eq!(m.get(1, 1), 0.0);
        // Honest accounting: ops must equal the naive reference's count
        // (same pivots executed, same `0̄` skips), not n³.
        let naive = sample().floyd_warshall_naive();
        assert_eq!(out.ops, naive.ops);
        assert!(out.ops > 0);
        assert!(out.ops < 64, "the 0̄ skip must be visible in the count");
    }

    #[test]
    fn kernels_report_no_change_on_fixpoint() {
        let mut m = sample();
        m.floyd_warshall();
        let again = m.floyd_warshall();
        assert!(!again.changed, "closure is a fixpoint");
        let sq = m.square_step();
        assert!(!sq.changed);
        let sq_naive = m.square_step_naive();
        assert!(!sq_naive.changed);
    }

    #[test]
    fn blocked_fw_bit_identical_to_naive_across_tile_boundaries() {
        for n in [1, TILE - 1, TILE, TILE + 1, 3 * TILE + 5] {
            let base = random_matrix(n, 42 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            let ob = blocked.floyd_warshall();
            let on = naive.floyd_warshall_naive();
            assert_bits_equal(&blocked, &naive, &format!("fw n={n}"));
            assert_eq!(ob.ops, on.ops, "fw ops n={n}");
            assert_eq!(ob.changed, on.changed, "fw changed n={n}");
            assert_eq!(ob.absorbing_cycle, on.absorbing_cycle, "fw cycle n={n}");
        }
    }

    #[test]
    fn blocked_square_bit_identical_to_naive_across_tile_boundaries() {
        for n in [1, TILE - 1, TILE, TILE + 1, 3 * TILE + 5] {
            let base = random_matrix(n, 7 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            let ob = blocked.square_step();
            let on = naive.square_step_naive();
            assert_bits_equal(&blocked, &naive, &format!("square n={n}"));
            assert_eq!(ob.ops, on.ops, "square ops n={n}");
            assert_eq!(ob.changed, on.changed, "square changed n={n}");
        }
    }

    #[test]
    fn pruned_doubling_sequence_matches_naive_sequence() {
        // Drive both kernels to the closure fixpoint; the blocked side
        // prunes later steps with per-tile change flags, which must not
        // change a single bit.
        for n in [TILE + 3, 2 * TILE, 3 * TILE + 5] {
            let base = random_matrix(n, 1000 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            loop {
                let ob = blocked.square_step();
                let on = naive.square_step_naive();
                assert_eq!(ob.changed, on.changed, "changed diverged at n={n}");
                if !on.changed {
                    break;
                }
            }
            assert_bits_equal(&blocked, &naive, &format!("doubling sequence n={n}"));
        }
    }

    #[test]
    fn blocked_kernels_bit_identical_across_thread_counts() {
        // Past PAR_FW_MIN_N so the pool actually fans out.
        let n = 5 * TILE;
        let base = random_matrix(n, 99);
        let reference = {
            let mut m = base.clone();
            rayon::with_max_threads(1, || m.floyd_warshall());
            m
        };
        for threads in [1usize, 2, 4, 8] {
            let mut m = base.clone();
            rayon::with_max_threads(threads, || m.floyd_warshall());
            assert_bits_equal(&reference, &m, &format!("fw at {threads} threads"));
            let mut sq = base.clone();
            let mut sq_ref = base.clone();
            rayon::with_max_threads(threads, || sq.repeated_squaring());
            rayon::with_max_threads(1, || sq_ref.repeated_squaring());
            assert_bits_equal(&sq_ref, &sq, &format!("squaring at {threads} threads"));
        }
    }

    #[test]
    fn reset_reuses_buffers_without_state_leaks() {
        let mut m = random_matrix(3 * TILE + 5, 5);
        m.floyd_warshall();
        m.square_step();
        let cap_before = m.data.capacity();
        m.reset_identity(TILE + 1);
        let mut fresh = SemiMatrix::<Tropical>::identity(TILE + 1);
        assert_bits_equal(&fresh, &m, "reset_identity");
        assert!(m.data.capacity() >= cap_before.min((TILE + 1) * (TILE + 1)));
        // A dirtied-then-reset matrix must behave exactly like a fresh one.
        for (i, j, w) in [(0, 1, 2.0), (1, 2, 0.5), (2, 0, 4.0)] {
            m.relax(i, j, w);
            fresh.relax(i, j, w);
        }
        let om = m.floyd_warshall();
        let of = fresh.floyd_warshall();
        assert_bits_equal(&fresh, &m, "post-reset closure");
        assert_eq!(om, of);
    }

    #[test]
    fn repeated_squaring_matches_floyd_warshall() {
        let mut a = sample();
        let mut b = sample();
        a.floyd_warshall();
        b.repeated_squaring();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), b.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn negative_cycle_detected() {
        let mut m = SemiMatrix::<Tropical>::identity(3);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, -3.0);
        m.relax(2, 0, 1.0);
        let out = m.floyd_warshall();
        assert!(out.absorbing_cycle);
        let mut m = SemiMatrix::<Tropical>::identity(3);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, -3.0);
        m.relax(2, 0, 1.0);
        let out = m.repeated_squaring();
        assert!(out.absorbing_cycle);
    }

    #[test]
    fn zero_weight_cycle_is_not_absorbing() {
        let mut m = SemiMatrix::<Tropical>::identity(2);
        m.relax(0, 1, 2.0);
        m.relax(1, 0, -2.0);
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn boolean_closure_via_squaring() {
        let mut m = SemiMatrix::<Boolean>::identity(5);
        for i in 0..4 {
            m.relax(i, i + 1, true);
        }
        m.repeated_squaring();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), j >= i);
            }
        }
    }

    #[test]
    fn parallel_paths_take_better() {
        let mut m = SemiMatrix::<Tropical>::identity(2);
        m.relax(0, 1, 5.0);
        m.relax(0, 1, 3.0);
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn parse_tile_spec_validates_range() {
        assert_eq!(parse_tile_spec("32", MAX_TILE), Some(32));
        assert_eq!(parse_tile_spec(" 1 ", MAX_TILE), Some(1));
        assert_eq!(parse_tile_spec("128", MAX_TILE), Some(128));
        assert_eq!(parse_tile_spec("0", MAX_TILE), None);
        assert_eq!(parse_tile_spec("129", MAX_TILE), None);
        assert_eq!(parse_tile_spec("-4", MAX_TILE), None);
        assert_eq!(parse_tile_spec("fast", MAX_TILE), None);
        assert_eq!(parse_tile_spec("", MAX_TILE), None);
        assert_eq!(parse_tile_spec("4096", MAX_JBLOCK), Some(4096));
        assert_eq!(parse_tile_spec("4097", MAX_JBLOCK), None);
    }

    /// The auto-dispatching kernels (SIMD on this host, if available) and
    /// the forced-scalar blocked kernels must both match naive bits, ops,
    /// and flags — the scalar tier no longer gets implicit coverage from
    /// `floyd_warshall()`/`square_step()` now that those auto-dispatch.
    #[test]
    fn forced_scalar_tier_still_bit_identical_to_naive() {
        for n in [1, TILE - 1, TILE, TILE + 1, 3 * TILE + 5] {
            let base = random_matrix(n, 300 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            let ob = blocked.floyd_warshall_blocked();
            let on = naive.floyd_warshall_naive();
            assert_bits_equal(&blocked, &naive, &format!("scalar fw n={n}"));
            assert_eq!(ob, on, "scalar fw outcome n={n}");
            let mut blocked = base.clone();
            let mut naive = base.clone();
            let ob = blocked.square_step_blocked();
            let on = naive.square_step_naive();
            assert_bits_equal(&blocked, &naive, &format!("scalar square n={n}"));
            assert_eq!(ob.ops, on.ops, "scalar square ops n={n}");
            assert_eq!(ob.changed, on.changed, "scalar square changed n={n}");
        }
    }

    /// Every legal `SPSEP_TILE`/`SPSEP_FW_JBLOCK` combination is just a
    /// different schedule of the same per-cell candidate sequence, so the
    /// output bits and op counts must not move. (Driven through the
    /// internal entry point: the env vars themselves are read once per
    /// process, which makes in-process env tests racy by design.)
    #[test]
    fn fw_bit_identical_across_tile_and_jblock_settings() {
        let n = 3 * TILE + 5;
        let base = random_matrix(n, 77);
        let mut reference = base.clone();
        let or = reference.floyd_warshall_naive();
        for (tile, jblock) in [(1, 1), (5, 17), (32, 128), (MAX_TILE, 16), (MAX_TILE, MAX_JBLOCK)]
        {
            for sel in [RelaxSel::Scalar, auto_sel::<Tropical>()] {
                let mut m = base.clone();
                let om = m.floyd_warshall_impl(sel, tile, jblock);
                assert_bits_equal(
                    &reference,
                    &m,
                    &format!("fw tile={tile} jblock={jblock} sel={sel:?}"),
                );
                assert_eq!(om.ops, or.ops, "ops tile={tile} jblock={jblock} sel={sel:?}");
                assert_eq!(om.changed, or.changed);
            }
        }
    }

    #[test]
    fn select_kernel_routes_by_semiring_and_host() {
        use crate::semiring::{Boolean as B, TropicalInt};
        // f64 + lane algebra: SIMD when the host has it, blocked otherwise.
        let k = select_kernel::<Tropical>();
        if simd_active::<Tropical>() {
            assert!(k.name().starts_with("simd-avx"), "got {}", k.name());
        } else {
            assert_eq!(k.name(), "blocked");
        }
        // Non-f64 / no lane algebra: never SIMD.
        assert!(!simd_active::<TropicalInt>());
        assert!(!simd_active::<B>());
        assert_eq!(select_kernel::<TropicalInt>().name(), "blocked");

        // All three kernel tiers agree bit for bit through the trait.
        let base = random_matrix(2 * TILE + 3, 4242);
        let kernels: [&dyn MinPlusKernel<Tropical>; 3] =
            [&NaiveKernel, &BlockedKernel, &SimdKernel];
        let mut closed: Vec<SemiMatrix<Tropical>> = Vec::new();
        let mut squared: Vec<SemiMatrix<Tropical>> = Vec::new();
        for k in kernels {
            let mut m = base.clone();
            k.floyd_warshall(&mut m);
            closed.push(m);
            let mut m = base.clone();
            k.square_step(&mut m);
            squared.push(m);
        }
        for i in 1..3 {
            assert_bits_equal(&closed[0], &closed[i], &format!("trait fw kernel {i}"));
            assert_bits_equal(&squared[0], &squared[i], &format!("trait square kernel {i}"));
        }
    }

    /// Adversarial weights (±∞ so `extend` can manufacture NaN, signed
    /// zeros, denormals, negatives) across every f64 semiring: the
    /// auto-dispatched kernels must match naive bit for bit.
    #[test]
    fn auto_kernels_bit_identical_on_hostile_weights_all_f64_semirings() {
        use crate::semiring::{Bottleneck, MaxPlus, Reliability};
        fn check<S: Semiring<W = f64>>(tag: &str) {
            let pool = [
                0.0,
                -0.0,
                1.5,
                -2.25,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE / 4.0,
                -4.0e-310,
                0.75,
                -3.5,
            ];
            for n in [TILE - 1, TILE + 1, 2 * TILE + 3] {
                let mut state = (n as u64 * 31 + 7).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut flat = Vec::with_capacity(n * n);
                for _ in 0..n * n {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    flat.push(pool[(state % pool.len() as u64) as usize]);
                }
                let base = SemiMatrix::<S>::from_flat(n, flat);
                let mut auto_fw = base.clone();
                let mut naive_fw = base.clone();
                let oa = auto_fw.floyd_warshall();
                let on = naive_fw.floyd_warshall_naive();
                assert_eq!(oa.ops, on.ops, "{tag} fw ops n={n}");
                assert_eq!(oa.changed, on.changed, "{tag} fw changed n={n}");
                for (idx, (x, y)) in auto_fw.data().iter().zip(naive_fw.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{tag} fw n={n} cell {idx}: {x} vs {y}"
                    );
                }
                let mut auto_sq = base.clone();
                let mut naive_sq = base.clone();
                let oa = auto_sq.square_step();
                let on = naive_sq.square_step_naive();
                assert_eq!(oa.ops, on.ops, "{tag} square ops n={n}");
                assert_eq!(oa.changed, on.changed, "{tag} square changed n={n}");
                for (idx, (x, y)) in auto_sq.data().iter().zip(naive_sq.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{tag} square n={n} cell {idx}: {x} vs {y}"
                    );
                }
            }
        }
        check::<Tropical>("tropical");
        check::<MaxPlus>("maxplus");
        check::<Bottleneck>("bottleneck");
        check::<Reliability>("reliability");
    }

    #[test]
    fn large_matrix_parallel_path() {
        // Exercise the rayon branch (n ≥ 128): a directed ring.
        let n = 130;
        let mut m = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            m.relax(i, (i + 1) % n, 1.0);
        }
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, n - 1), (n - 1) as f64);
        assert_eq!(m.get(5, 4), (n - 1) as f64);
        let mut naive = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            naive.relax(i, (i + 1) % n, 1.0);
        }
        naive.floyd_warshall_naive();
        assert_bits_equal(&naive, &m, "ring fw");
    }
}
